//! Quickstart: build the paper's testbed, ping-pong between host 1 and
//! host 2 under both firmware flavours, and print the latency table.
//!
//! Run with: `cargo run --release --example quickstart`

use itb_myrinet::core::{ClusterSpec, McpFlavor, RoutingPolicy};

fn main() {
    let sizes = [32u32, 128, 512, 2048];

    println!("Figure 6 testbed: half-round-trip latency, host1 <-> host2");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "bytes", "original (us)", "ITB MCP (us)", "delta (ns)"
    );

    let run = |flavor: McpFlavor| {
        let spec = ClusterSpec::fig6_testbed()
            .with_mcp(flavor)
            .with_routing(RoutingPolicy::UpDown);
        spec.ping_pong(0, 2, &sizes, 20)
    };
    let orig = run(McpFlavor::Original);
    let itb = run(McpFlavor::Itb);

    for (o, m) in orig.points.iter().zip(&itb.points) {
        let (ou, mu) = (o.half_rtt_ns.mean() / 1000.0, m.half_rtt_ns.mean() / 1000.0);
        println!(
            "{:>8} {:>16.3} {:>16.3} {:>12.0}",
            o.size,
            ou,
            mu,
            (mu - ou) * 1000.0
        );
    }
    println!();
    println!(
        "The delta column is the paper's Figure 7 quantity: the cost of ITB \
         support code on every received packet (paper: ~125 ns, <= 300 ns)."
    );
}

//! Loaded-network comparison: up*/down* versus ITB routing under uniform
//! Poisson traffic on an irregular network — a small interactive version of
//! the motivation experiments (the full sweep lives in the bench harness).
//!
//! Run with: `cargo run --release --example loaded_network [switches] [seed]`

use itb_myrinet::core::experiments::{load_sweep, LoadSweep};
use itb_myrinet::core::{ClusterSpec, RoutingPolicy};
use itb_myrinet::sim::SimDuration;

fn main() {
    let mut args = std::env::args().skip(1);
    let switches: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let sweep = LoadSweep {
        size: 512,
        offered_mb_s: vec![2.0, 8.0, 16.0, 28.0, 40.0],
        warmup: SimDuration::from_ms(1),
        window: SimDuration::from_ms(4),
        drain: SimDuration::from_ms(2),
    };

    println!(
        "uniform Poisson traffic, 512 B messages, {switches}-switch irregular network (seed {seed})"
    );
    println!(
        "{:>14} | {:>14} {:>14} | {:>14} {:>14}",
        "offered MB/s", "UD acc MB/s", "UD lat us", "ITB acc MB/s", "ITB lat us"
    );

    let run = |policy: RoutingPolicy| {
        let spec = ClusterSpec::irregular(switches, seed).with_routing(policy);
        load_sweep(&spec, &sweep)
    };
    let ud = run(RoutingPolicy::UpDown);
    let itb = run(RoutingPolicy::Itb);

    for (u, i) in ud.iter().zip(&itb) {
        println!(
            "{:>14.1} | {:>14.1} {:>14.1} | {:>14.1} {:>14.1}",
            u.offered_mb_s, u.accepted_mb_s, u.avg_latency_us, i.accepted_mb_s, i.avg_latency_us
        );
    }
    println!();
    println!(
        "Past the up*/down* saturation point the ITB rows keep accepting more \
         traffic at lower latency — the paper's motivation (its references \
         report up to 2-3x throughput on larger networks)."
    );
}

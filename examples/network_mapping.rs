//! Network mapping demo: discover an unknown fabric with probe packets
//! (the GM mapper), reconstruct the topology, and compute ITB routes from
//! the reconstructed map that work on the real network.
//!
//! Run with: `cargo run --release --example network_mapping [switches] [seed]`

use itb_myrinet::gm::mapper::{map_fabric, PortTarget};
use itb_myrinet::routing::RoutingPolicy;
use itb_myrinet::topo::builders::{random_irregular, IrregularSpec};
use itb_myrinet::topo::HostId;

fn main() {
    let mut args = std::env::args().skip(1);
    let switches: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let real = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
    println!(
        "physical fabric: {} switches, {} hosts, {} cables (hidden from the mapper)",
        real.num_switches(),
        real.num_hosts(),
        real.num_links()
    );

    let map = map_fabric(&real, HostId(0));
    println!(
        "mapper at host0 discovered {} switches and {} hosts using {} probe packets",
        map.switches.len(),
        map.hosts.len(),
        map.probes_used
    );

    for (serial, sw) in map.switches.iter().take(3) {
        let hosts = sw
            .ports
            .iter()
            .filter(|t| matches!(t, PortTarget::Host(_)))
            .count();
        let cables = sw
            .ports
            .iter()
            .filter(|t| matches!(t, PortTarget::Switch(_)))
            .count();
        println!(
            "  switch serial {serial}: {hosts} hosts, {cables} switch cables (route prefix len {})",
            sw.route.len()
        );
    }
    if map.switches.len() > 3 {
        println!("  ... and {} more", map.switches.len() - 3);
    }

    let rec = map.to_topology();
    println!(
        "reconstructed map: {} switches, {} hosts, {} cables — matches physical counts: {}",
        rec.num_switches(),
        rec.num_hosts(),
        rec.num_links(),
        rec.num_links() == real.num_links()
    );

    // The paper's modified mapper: compute ITB routes from the map and
    // verify every one is physically wired on the real network.
    let table = map.compute_routes(RoutingPolicy::Itb);
    let total = table.iter().count();
    let wired = table.iter().filter(|r| r.is_well_formed(&real)).count();
    let with_itbs = table.iter().filter(|r| r.itb_count() > 0).count();
    println!(
        "computed {total} ITB routes from the reconstructed map; {wired} valid on the real fabric; {with_itbs} use in-transit buffers"
    );
}

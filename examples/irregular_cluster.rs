//! Route-level analysis of an irregular network: why up*/down* loses and
//! how the ITB planner fixes it (the paper's motivation, quantified).
//!
//! Run with: `cargo run --release --example irregular_cluster [switches] [seed]`

use itb_myrinet::routing::metrics::{analyze, route_links};
use itb_myrinet::routing::{RouteTable, RoutingPolicy};
use itb_myrinet::topo::builders::{random_irregular, IrregularSpec};
use itb_myrinet::topo::UpDown;

fn main() {
    let mut args = std::env::args().skip(1);
    let switches: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let topo = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
    println!(
        "irregular network: {} switches, {} hosts, {} links (seed {seed})",
        topo.num_switches(),
        topo.num_hosts(),
        topo.num_links()
    );
    let ud = UpDown::compute_default(&topo);
    println!("spanning-tree root: {}", ud.tree().root());
    println!();

    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "policy", "mean links", "max", "minimal%", "root-cross%", "imbalance", "mean ITBs"
    );
    for policy in [RoutingPolicy::UpDown, RoutingPolicy::Itb] {
        let table = RouteTable::compute(&topo, &ud, policy).expect("connected");
        let m = analyze(&topo, &ud, &table);
        println!(
            "{:>10} {:>12.3} {:>10} {:>9.1}% {:>11.1}% {:>12.2} {:>10.3}",
            format!("{policy:?}"),
            m.mean_links,
            m.max_links,
            m.minimal_fraction * 100.0,
            m.root_crossing_fraction * 100.0,
            m.channel_imbalance,
            m.mean_itbs
        );
    }

    // Show one concrete route pair for intuition.
    let table_ud = RouteTable::compute(&topo, &ud, RoutingPolicy::UpDown).unwrap();
    let table_itb = RouteTable::compute(&topo, &ud, RoutingPolicy::Itb).unwrap();
    let worst = table_ud
        .iter()
        .max_by_key(|r| {
            let min = itb_myrinet::routing::updown::min_crossings(&topo, r.src, r.dst).unwrap() - 1;
            route_links(r) - min
        })
        .unwrap();
    let itb_alt = table_itb.route(worst.src, worst.dst).unwrap();
    println!();
    println!(
        "most-detoured pair {} -> {}: up*/down* takes {} links; the ITB planner \
         takes {} links using {} in-transit buffer(s)",
        worst.src,
        worst.dst,
        route_links(worst),
        route_links(itb_alt),
        itb_alt.itb_count()
    );
}

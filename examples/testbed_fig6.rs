//! Reproduce the paper's two evaluation figures on the Figure 6 testbed and
//! print the curves as tables.
//!
//! Run with: `cargo run --release --example testbed_fig6`

use itb_myrinet::core::experiments::{fig7, fig8};

fn main() {
    let iters = 30;

    // ------------------------------------------------------------------
    // Figure 7: overhead of the ITB support code on normal packets.
    // ------------------------------------------------------------------
    let f7 = fig7(iters);
    println!("== Figure 7: latency overhead of the new GM/MCP code ==");
    println!(
        "{:>8} {:>18} {:>18} {:>14}",
        "bytes", "original (us)", "modified (us)", "overhead (ns)"
    );
    let over7 = f7.overhead_ns();
    for ((o, m), (_, d)) in f7
        .original
        .points
        .iter()
        .zip(&f7.modified.points)
        .zip(&over7.points)
    {
        println!(
            "{:>8} {:>18.3} {:>18.3} {:>14.0}",
            o.size,
            o.half_rtt_ns.mean() / 1000.0,
            m.half_rtt_ns.mean() / 1000.0,
            d
        );
    }
    let (avg, max) = f7.summary();
    println!(
        "average overhead: {avg:.0} ns (paper: ~125 ns); max: {max:.0} ns (paper: <= 300 ns)\n"
    );

    // ------------------------------------------------------------------
    // Figure 8: per-ITB latency on the matched 5-crossing paths.
    // ------------------------------------------------------------------
    let f8 = fig8(iters);
    println!("== Figure 8: latency overhead of one in-transit buffer ==");
    println!(
        "{:>8} {:>14} {:>14} {:>18}",
        "bytes", "UD (us)", "UD-ITB (us)", "per-ITB (us)"
    );
    let over8 = f8.overhead_us();
    for ((u, i), (_, d)) in f8.ud.points.iter().zip(&f8.itb.points).zip(&over8.points) {
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>18.3}",
            u.size,
            u.half_rtt_ns.mean() / 1000.0,
            i.half_rtt_ns.mean() / 1000.0,
            d
        );
    }
    let s = f8.summary();
    println!(
        "mean per-ITB overhead: {:.2} us (paper: ~1.3 us); relative: {:.1}% small -> {:.1}% large (paper: 10% -> 3%)",
        s.mean_overhead_us, s.relative_small_pct, s.relative_large_pct
    );
}

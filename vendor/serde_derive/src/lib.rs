//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` facade without `syn`/`quote` (unavailable offline): the
//! item's token stream is walked by hand, and the generated impl is built as
//! a string and re-parsed. Supports the shapes this workspace derives on —
//! non-generic structs (named, tuple/newtype, unit) and enums (unit, tuple,
//! struct variants). Generic items are rejected with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// `struct Name { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(A, B);` — arity recorded.
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize` (the vendored facade's value-tree trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            (name, format!("::serde::Value::Object(vec![{entries}])"))
        }
        Item::TupleStruct { name, arity: 1 } => {
            // Newtype transparency, like real serde.
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let entries = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            (name, format!("::serde::Value::Array(vec![{entries}])"))
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| serialize_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            (name, format!("match self {{\n{arms}\n}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive the no-op `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
        }
        VariantShape::Tuple(1) => format!(
            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
             ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds = (0..*n)
                .map(|i| format!("__f{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let vals = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                 ::serde::Value::Array(vec![{vals}]))]),"
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                 ::serde::Value::Object(vec![{entries}]))]),"
            )
        }
    }
}

// ---------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`, doc comments included).
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    // Skip visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic items (deriving `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: enum_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive for item kind `{other}`"),
    }
}

/// Split a token stream on top-level commas (angle-bracket aware).
fn split_top_level(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in ts {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Leading attrs + optional visibility stripped from one field/variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i + 1 < chunk.len() {
        match (&chunk[i], &chunk[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    if matches!(chunk.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(
            chunk.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            i += 1;
        }
    }
    &chunk[i..]
}

fn named_fields(ts: TokenStream) -> Vec<String> {
    split_top_level(ts)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_and_vis(chunk);
            match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn tuple_arity(ts: TokenStream) -> usize {
    split_top_level(ts).len()
}

fn enum_variants(ts: TokenStream) -> Vec<Variant> {
    split_top_level(ts)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_and_vis(chunk);
            let name = match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let shape = match rest.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(tuple_arity(g.stream()))
                }
                // `None` or `= disc` — both serialize as the bare name.
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

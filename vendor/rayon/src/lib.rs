//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! small `par_iter().map(..).collect()` surface the experiment harness uses.
//! It is genuinely parallel: work items are distributed over
//! `std::thread::scope` workers via an atomic cursor, and results are
//! returned in input order.

#![warn(missing_docs)]
// Vendored stand-in, outside the first-party lint scope: the strict CI
// clippy pass reaches it as a dependency of the library crates it checks.
#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The usual glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// An owning parallel iterator over already-materialized items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`] by value (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Materialize the source into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a [`ParIter`] by shared reference (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference into the source).
    type Item: Send + 'a;
    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` (runs when the chain is collected).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; terminal [`ParMap::collect`] runs the work.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Run the map across worker threads and gather results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        par_map(self.items, &self.f).into_iter().collect()
    }
}

/// Worker-count ceiling from the `ITB_THREADS` environment variable, if set
/// to a positive integer. Lets batch jobs (CI, shared perf boxes) cap the
/// harness's parallelism without a code change.
fn env_thread_cap() -> Option<usize> {
    let raw = std::env::var("ITB_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

fn par_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let mut threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if let Some(cap) = env_thread_cap() {
        threads = threads.min(cap);
    }
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item claimed once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_preserves_order() {
        let v: Vec<u64> = (0..500u64).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 500);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let src = vec![1.0f64, 2.0, 3.0];
        let out: Vec<f64> = src.par_iter().map(|&x| x + 0.5).collect();
        assert_eq!(out, vec![1.5, 2.5, 3.5]);
        assert_eq!(src.len(), 3); // still usable
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn itb_threads_env_caps_workers() {
        // Results must be correct and ordered whatever the cap; with a cap
        // of 1 the whole map runs on the calling thread, so at most one
        // distinct worker id may appear. (Env vars are process-global; other
        // tests in this crate don't set ITB_THREADS.)
        std::env::set_var("ITB_THREADS", "1");
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        let out: Vec<u64> = (0..64u64)
            .into_par_iter()
            .map(|i| {
                ids.lock().unwrap().insert(std::thread::current().id());
                i + 1
            })
            .collect();
        std::env::remove_var("ITB_THREADS");
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
        assert_eq!(ids.lock().unwrap().len(), 1, "cap of 1 means one worker");
        // Garbage values are ignored, not fatal.
        assert_eq!(super::env_thread_cap(), None);
        std::env::set_var("ITB_THREADS", "nope");
        assert_eq!(super::env_thread_cap(), None);
        std::env::set_var("ITB_THREADS", "0");
        assert_eq!(super::env_thread_cap(), None);
        std::env::set_var("ITB_THREADS", " 3 ");
        assert_eq!(super::env_thread_cap(), Some(3));
        std::env::remove_var("ITB_THREADS");
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework under serde's names: a [`Serialize`]
//! trait that lowers values into a JSON-like [`Value`] tree, a no-op
//! [`Deserialize`] marker (nothing in the workspace deserializes), and
//! `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive` stub.
//! The vendored `serde_json` renders [`Value`] trees to JSON text.
//!
//! The derive follows real serde's data model where it matters for the
//! artifacts: structs → objects, newtype structs → their inner value, unit
//! enum variants → strings, data-carrying variants → externally tagged
//! objects.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the target of [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object key this value renders as (JSON object keys are strings).
    pub fn as_key(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Float(f) => f.to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait: the workspace never deserializes, but derives and bounds
/// referencing `serde::Deserialize` must compile.
pub trait Deserialize: Sized {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for f32 {}
impl Deserialize for f64 {}
impl Deserialize for bool {}
impl Deserialize for char {}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! ser_tuples {
    ($(($($t:ident . $ix:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}

ser_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_lower_structurally() {
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u8, 2.0f64).to_value(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.0)])
        );
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        // HashMap output is key-sorted for determinism.
        assert_eq!(
            m.to_value(),
            Value::Object(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::UInt(2)),
            ])
        );
    }
}

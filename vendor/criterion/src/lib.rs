//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use —
//! groups, `bench_function`, `sample_size`, `throughput`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — measuring wall-clock time
//! with `std::time::Instant` and printing mean/min per benchmark. No
//! statistical analysis, no HTML reports; enough to compare hot paths
//! offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _c: self,
            samples: 10,
        }
    }
}

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `family/param` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    family: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier under `family` for one `param` value.
    pub fn new(family: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            family: family.to_string(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.family, self.param)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Record the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  (throughput: {n} elements/iter)"),
            Throughput::Bytes(n) => println!("  (throughput: {n} bytes/iter)"),
        }
        self
    }

    /// Time `f` and print mean/min wall-clock per iteration.
    pub fn bench_function<D: Display, F>(&mut self, id: D, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.samples),
        };
        // One warmup pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.samples {
            f(&mut b);
        }
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len().max(1) as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "  {id}: mean {mean:?}  min {min:?}  ({} samples)",
            b.samples.len()
        );
        self
    }

    /// Time `f` against a borrowed input (criterion's `bench_with_input`).
    pub fn bench_with_input<D: Display, I: ?Sized, F>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; its `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `f` (criterion runs batches; one call per
    /// sample is accurate enough for these multi-millisecond simulations).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        std::hint::black_box(out);
    }
}

/// Bundle benchmark functions into one named runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::new("spin", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}

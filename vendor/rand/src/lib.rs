//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact trait surface it uses* — nothing more. The simulator
//! implements its own xoshiro256** generator (`itb_sim::SimRng`) and only
//! needs [`RngCore`] so external distribution adapters could be layered on
//! top later without changing call sites.

#![warn(missing_docs)]

/// The core random-number-generator trait (API-compatible subset of
/// `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    #[allow(clippy::needless_borrow)] // the point is that &mut R implements Rng
    fn trait_object_and_ref_impls_work() {
        let mut c = Counter(0);
        assert_eq!((&mut c).next_u64(), 1);
        let mut buf = [0u8; 3];
        c.fill_bytes(&mut buf);
        assert_eq!(buf, [2, 3, 4]);
    }
}

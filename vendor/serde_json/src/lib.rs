//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`Value`](serde::Value) tree to JSON
//! text. Only the output half of serde_json's API is provided ([`to_string`],
//! [`to_string_pretty`]) — nothing in this workspace parses JSON back.

#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Serialization error. The vendored encoder is total over [`Value`], so this
/// is never produced today, but callers match serde_json's `Result` API.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// serde_json-compatible result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Render `value` as pretty JSON (2-space indent, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Recursive renderer; `indent = None` means compact output.
fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Inf; serde_json errors, we emit null
                // (lenient: artifacts stay loadable even if a stat degenerates).
                out.push_str("null");
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_scalars() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n\"there\"").unwrap(), r#""hi\n\"there\"""#);
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn compact_containers() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Vec::<u8>::new()).unwrap(), "[]");
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let pretty = {
            let mut out = String::new();
            render(&v, Some(2), 0, &mut out);
            out
        };
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }
}

//! Offline stand-in for `proptest`.
//!
//! A deterministic mini property-testing harness covering the surface this
//! workspace's property tests use: the [`proptest!`] macro with per-block
//! `#![proptest_config(..)]`, integer-range and [`any`] strategies, tuple
//! composition, and the `prop_assert*` / [`prop_assume!`] macros. No
//! shrinking and no persistence — failures print the generated inputs, which
//! reproduce exactly because the RNG seed derives from the test name.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        OneOf, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Per-block configuration (`cases` = generated inputs per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input out; not a failure.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Deterministic splitmix64 generator; seeded from the test name so each
/// property sees a stable but distinct stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. `Value` matches proptest's associated-type name so
/// `impl Strategy<Value = ..>` signatures compile unchanged.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, usize);

/// Types with a canonical "anything goes" generator.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of its value (`Just(x)`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One boxed alternative of a [`OneOf`] strategy.
pub type OneOfAlt<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct OneOf<T> {
    alts: Vec<OneOfAlt<T>>,
}

impl<T> OneOf<T> {
    /// A strategy drawing uniformly from `alts` (must be non-empty).
    pub fn new(alts: Vec<OneOfAlt<T>>) -> Self {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { alts }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.alts.len() as u64) as usize;
        (self.alts[ix])(rng)
    }
}

/// Choose uniformly among alternative strategies of a common value type
/// (the unweighted subset of proptest's `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::OneOf::new(vec![$({
            let s = $s;
            ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                $crate::Strategy::generate(&s, rng)
            }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
        }),+])
    }};
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy generating a `Vec` with length drawn from a range (built by
    /// [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: length uniform in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $ix:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Declare property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] (one test fn per munch step).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            let mut rejected = 0u32;
            for case in 0..cfg.cases {
                let inputs = ($( $crate::Strategy::generate(&($strat), &mut rng), )+);
                let ($($pat,)+) = inputs.clone();
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property {} failed at case {case} with inputs {inputs:?}: {msg}",
                        stringify!($name),
                    ),
                }
            }
            assert!(
                rejected < cfg.cases,
                "property {} rejected every generated case",
                stringify!($name),
            );
        }
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
}

/// Assert within a property body (reports the generated inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{} != {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Discard the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(n in 4usize..=14, m in 0u16..12) {
            prop_assert!((4..=14).contains(&n));
            prop_assert!(m < 12);
        }

        #[test]
        fn tuples_and_any((a, b) in (1usize..5, any::<u64>())) {
            prop_assert!((1..5).contains(&a));
            let _ = b;
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u16..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn inner(x in 0u16..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}

//! # itb-myrinet
//!
//! Umbrella crate for the reproduction of *"A First Implementation of
//! In-Transit Buffers on Myrinet GM Software"* (S. Coll, J. Flich,
//! M. P. Malumbres, P. López, J. Duato, F. J. Mora — IPPS 2001).
//!
//! The workspace models, from scratch, every layer the paper's firmware
//! implementation touched:
//!
//! * [`sim`] — deterministic discrete-event engine,
//! * [`topo`] — Myrinet cluster topologies, spanning trees, up*/down* link
//!   orientation,
//! * [`routing`] — up*/down* source routes, the **In-Transit Buffer planner**,
//!   Myrinet header encoding and deadlock analysis,
//! * [`net`] — byte-accurate wormhole links, Stop&Go flow control, cut-through
//!   crossbar switches,
//! * [`nic`] — the LANai network interface and the Myrinet Control Program
//!   (MCP) state machines, original and ITB-extended,
//! * [`gm`] — the GM host software model (ports, tokens, mapper, reliable
//!   delivery, `allsize`-style drivers),
//! * [`core`](mod@core) — high-level cluster builder, calibrated timing
//!   presets and experiment runners,
//! * [`obs`] — observability: metrics snapshots, packet tracing, the
//!   sim-time timeline sampler and the runtime health monitors.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure.
//!
//! ## Quickstart
//!
//! ```
//! use itb_myrinet::core::{ClusterSpec, McpFlavor, RoutingPolicy};
//!
//! // Build the paper's Figure 6 testbed and measure a ping-pong.
//! let spec = ClusterSpec::fig6_testbed()
//!     .with_mcp(McpFlavor::Itb)
//!     .with_routing(RoutingPolicy::UpDown);
//! let report = spec.ping_pong(0, 1, &[64, 1024], 10);
//! assert_eq!(report.points.len(), 2);
//! assert!(report.points[0].half_rtt_ns.mean() > 0.0);
//! ```

pub use itb_core as core;
pub use itb_gm as gm;
pub use itb_net as net;
pub use itb_nic as nic;
pub use itb_obs as obs;
pub use itb_routing as routing;
pub use itb_sim as sim;
pub use itb_topo as topo;

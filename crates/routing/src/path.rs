//! Path and route types.

use itb_topo::{HostId, LinkId, PortIx, SwitchId, Topology};
use serde::{Deserialize, Serialize};

/// One switch crossing: the packet is inside `switch` and leaves through
/// `out_port`. The link it leaves on is `topology.link_at(switch, out_port)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// Switch being crossed.
    pub switch: SwitchId,
    /// Output port taken (this is the byte stamped in the header).
    pub out_port: PortIx,
}

impl Hop {
    /// Shorthand constructor.
    pub fn new(switch: SwitchId, out_port: u8) -> Self {
        Hop {
            switch,
            out_port: PortIx(out_port),
        }
    }
}

/// One up\*/down\*-legal piece of a route: from a host, across `hops`
/// switches, to another host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Host injecting this segment (the source or an in-transit host).
    pub from: HostId,
    /// Host ejecting this segment (an in-transit host or the destination).
    pub to: HostId,
    /// Switch crossings in order. The last hop's `out_port` leads to `to`'s
    /// host link.
    pub hops: Vec<Hop>,
}

impl Segment {
    /// Number of switch crossings.
    pub fn crossings(&self) -> usize {
        self.hops.len()
    }

    /// The links this segment traverses, in order, *excluding* the host
    /// links at either end.
    pub fn inter_switch_links<'t>(
        &'t self,
        topo: &'t Topology,
    ) -> impl Iterator<Item = LinkId> + 't {
        // The link leaving the final hop goes to the host, so skip it.
        self.hops[..self.hops.len().saturating_sub(1)]
            .iter()
            .map(move |h| {
                topo.link_at(h.switch, h.out_port)
                    // detlint::allow(S001, routes are validated against the cabling when built)
                    .expect("route uses a cabled port")
            })
    }

    /// Check that consecutive hops are physically wired: each `out_port`
    /// leads to the next hop's switch (or, for the last hop, to `to`).
    pub fn is_wired(&self, topo: &Topology) -> bool {
        if self.hops.is_empty() {
            return false;
        }
        // First switch must be the one `from` hangs off.
        if topo.host_attachment(self.from).0 != self.hops[0].switch {
            return false;
        }
        for w in self.hops.windows(2) {
            let Some(link) = topo.link_at(w[0].switch, w[0].out_port) else {
                return false;
            };
            let l = topo.link(link);
            // Next switch must be the endpoint that is not this (node, port).
            let next =
                if l.a.node == itb_topo::Node::Switch(w[0].switch) && l.a.port == w[0].out_port {
                    l.b
                } else {
                    l.a
                };
            if next.node != itb_topo::Node::Switch(w[1].switch) {
                return false;
            }
        }
        let last = self.hops[self.hops.len() - 1];
        let Some(link) = topo.link_at(last.switch, last.out_port) else {
            return false;
        };
        topo.link(link).touches(itb_topo::Node::Host(self.to))
    }
}

/// A complete source route: one segment for plain up\*/down\*, several when
/// in-transit buffers are used. Segment *k* ends at the host that re-injects
/// segment *k+1*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceRoute {
    /// Originating host.
    pub src: HostId,
    /// Final destination host.
    pub dst: HostId,
    /// At least one segment; `segments[0].from == src`,
    /// `segments.last().to == dst`.
    pub segments: Vec<Segment>,
}

impl SourceRoute {
    /// A single-segment route (no ITBs).
    pub fn direct(src: HostId, dst: HostId, hops: Vec<Hop>) -> Self {
        SourceRoute {
            src,
            dst,
            segments: vec![Segment {
                from: src,
                to: dst,
                hops,
            }],
        }
    }

    /// Number of in-transit buffers used (segments − 1).
    pub fn itb_count(&self) -> usize {
        self.segments.len() - 1
    }

    /// The in-transit hosts, in order.
    pub fn itb_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.segments[..self.segments.len() - 1]
            .iter()
            .map(|s| s.to)
    }

    /// Total switch crossings over all segments.
    pub fn total_crossings(&self) -> usize {
        self.segments.iter().map(Segment::crossings).sum()
    }

    /// Human-readable rendering: `host0 - sw0[p1] - sw1[p2] -> host1(ITB) -
    /// sw1[p1] - sw2[p2] -> host2` — in-transit hosts marked `(ITB)`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let last = self.segments.len() - 1;
        for (i, seg) in self.segments.iter().enumerate() {
            if i == 0 {
                out.push_str(&seg.from.to_string());
            }
            for hop in &seg.hops {
                out.push_str(&format!(" - {}[{}]", hop.switch, hop.out_port));
            }
            if i == last {
                out.push_str(&format!(" -> {}", seg.to));
            } else {
                out.push_str(&format!(" -> {}(ITB)", seg.to));
            }
        }
        out
    }

    /// Structural sanity: endpoints chain correctly and every segment is
    /// physically wired.
    pub fn is_well_formed(&self, topo: &Topology) -> bool {
        if self.segments.is_empty() {
            return false;
        }
        if self.segments[0].from != self.src {
            return false;
        }
        if self.segments[self.segments.len() - 1].to != self.dst {
            return false;
        }
        for w in self.segments.windows(2) {
            if w[0].to != w[1].from {
                return false;
            }
        }
        self.segments.iter().all(|s| s.is_wired(topo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_topo::builders::{chain, fig6_testbed};
    use itb_topo::HostId;

    #[test]
    fn direct_route_shape() {
        let r = SourceRoute::direct(
            HostId(0),
            HostId(1),
            vec![Hop::new(SwitchId(0), 0), Hop::new(SwitchId(1), 2)],
        );
        assert_eq!(r.itb_count(), 0);
        assert_eq!(r.total_crossings(), 2);
        assert_eq!(r.itb_hosts().count(), 0);
    }

    #[test]
    fn wired_route_on_chain() {
        // chain(3,1): sw0-sw1 via ports (1,0), sw1-sw2 via ports (1,0);
        // host h_i on switch i at port 2.
        let t = chain(3, 1);
        let r = SourceRoute::direct(
            HostId(0),
            HostId(2),
            vec![
                Hop::new(SwitchId(0), 1),
                Hop::new(SwitchId(1), 1),
                Hop::new(SwitchId(2), 2),
            ],
        );
        assert!(r.is_well_formed(&t));
    }

    #[test]
    fn miswired_route_detected() {
        let t = chain(3, 1);
        // Wrong middle port: exits switch 1 back toward switch 0.
        let r = SourceRoute::direct(
            HostId(0),
            HostId(2),
            vec![
                Hop::new(SwitchId(0), 1),
                Hop::new(SwitchId(1), 0),
                Hop::new(SwitchId(2), 2),
            ],
        );
        assert!(!r.is_well_formed(&t));
    }

    #[test]
    fn wrong_first_switch_detected() {
        let t = chain(3, 1);
        let r = SourceRoute::direct(
            HostId(0),
            HostId(1),
            vec![Hop::new(SwitchId(1), 2)], // host0 hangs off switch 0
        );
        assert!(!r.is_well_formed(&t));
    }

    #[test]
    fn segment_chaining_enforced() {
        let t = chain(3, 1);
        let seg1 = Segment {
            from: HostId(0),
            to: HostId(1),
            hops: vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
        };
        let seg2 = Segment {
            from: HostId(1),
            to: HostId(2),
            hops: vec![Hop::new(SwitchId(1), 1), Hop::new(SwitchId(2), 2)],
        };
        let good = SourceRoute {
            src: HostId(0),
            dst: HostId(2),
            segments: vec![seg1.clone(), seg2.clone()],
        };
        assert!(good.is_well_formed(&t));
        assert_eq!(good.itb_count(), 1);
        assert_eq!(good.itb_hosts().collect::<Vec<_>>(), vec![HostId(1)]);
        assert_eq!(good.total_crossings(), 4);

        let broken = SourceRoute {
            src: HostId(0),
            dst: HostId(2),
            segments: vec![seg2, seg1], // endpoints do not chain
        };
        assert!(!broken.is_well_formed(&t));
    }

    #[test]
    fn describe_renders_segments() {
        let t = chain(3, 1);
        let seg1 = Segment {
            from: HostId(0),
            to: HostId(1),
            hops: vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
        };
        let seg2 = Segment {
            from: HostId(1),
            to: HostId(2),
            hops: vec![Hop::new(SwitchId(1), 1), Hop::new(SwitchId(2), 2)],
        };
        let r = SourceRoute {
            src: HostId(0),
            dst: HostId(2),
            segments: vec![seg1, seg2],
        };
        assert!(r.is_well_formed(&t));
        let s = r.describe();
        assert_eq!(
            s,
            "host0 - sw0[p1] - sw1[p2] -> host1(ITB) - sw1[p1] - sw2[p2] -> host2"
        );
    }

    #[test]
    fn empty_segment_is_malformed() {
        let t = chain(2, 1);
        let r = SourceRoute {
            src: HostId(0),
            dst: HostId(1),
            segments: vec![Segment {
                from: HostId(0),
                to: HostId(1),
                hops: vec![],
            }],
        };
        assert!(!r.is_well_formed(&t));
    }

    #[test]
    fn fig6_loop_hop_is_wired() {
        let tb = fig6_testbed();
        // host1 -> sw0(p0:A) -> sw1(p4: loop) -> sw1(p2: host2).
        let r = SourceRoute::direct(
            tb.host1,
            tb.host2,
            vec![
                Hop::new(tb.sw0, 0),
                Hop::new(tb.sw1, 4),
                Hop::new(tb.sw1, 2),
            ],
        );
        assert!(r.is_well_formed(&tb.topo));
        assert_eq!(r.total_crossings(), 3);
    }

    #[test]
    fn inter_switch_links_excludes_host_tail() {
        let t = chain(3, 1);
        let r = SourceRoute::direct(
            HostId(0),
            HostId(2),
            vec![
                Hop::new(SwitchId(0), 1),
                Hop::new(SwitchId(1), 1),
                Hop::new(SwitchId(2), 2),
            ],
        );
        let links: Vec<_> = r.segments[0].inter_switch_links(&t).collect();
        assert_eq!(links.len(), 2);
    }
}

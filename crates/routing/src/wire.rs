//! Packet header encoding — the paper's Figure 3.
//!
//! An original Myrinet packet is `Path | Type | Payload | CRC`: one route
//! byte per switch (consumed by the switch that routes on it), a two-byte
//! packet type, the payload, and a trailing CRC-8. The ITB format interposes
//! `ITB | Length` groups: after the first segment's route bytes comes the
//! **ITB tag** (a two-byte packet type assigned for in-transit packets) and
//! one byte giving the length of the remaining header, then the next
//! segment's route bytes, and so on, ending with the real packet type.
//!
//! When a packet reaches a NIC its leading two bytes are a type. A normal
//! NIC sees `TYPE_GM`; an in-transit NIC sees [`TYPE_ITB`], strips the
//! three-byte `ITB | Length` group, and re-injects the rest unchanged —
//! which again starts with route bytes, exactly what the next switch needs.

use crate::path::SourceRoute;
use itb_sim::narrow;
use itb_topo::PortIx;

/// Two-byte packet type of an ordinary GM message.
pub const TYPE_GM: u16 = 0x000D;
/// Two-byte packet type marking an in-transit packet (in reality assigned by
/// Myricom on request; any value distinct from the stock types works).
pub const TYPE_ITB: u16 = 0x00E7;
/// Two-byte packet type of mapper/probe packets (modelled for completeness).
pub const TYPE_MAP: u16 = 0x0003;

/// A route byte names a switch output port. The top bits tag it as a routing
/// byte (real Myrinet encodes crossbar deltas; the tag keeps route bytes
/// disjoint from type bytes so decoding is unambiguous in tests).
const ROUTE_TAG: u8 = 0xC0;

/// Encode one output port as a route byte.
#[inline]
pub fn route_byte(port: PortIx) -> u8 {
    debug_assert!(port.0 < 0x40, "port fits in 6 bits");
    ROUTE_TAG | port.0
}

/// Decode a route byte back to a port.
#[inline]
pub fn decode_route_byte(b: u8) -> Option<PortIx> {
    if b & ROUTE_TAG == ROUTE_TAG {
        Some(PortIx(b & 0x3F))
    } else {
        None
    }
}

/// CRC-8 (polynomial 0x07, init 0) over a byte slice — stands in for the
/// 8-bit CRC Myrinet appends to every packet.
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Inline capacity of a [`Header`]. Real headers are tiny — a 5-switch
/// ITB path is under 24 bytes (route bytes + 3 per in-transit stop + the
/// 2-byte type) — so virtually every packet fits inline and header
/// encode/clone/strip never touch the heap. Longer headers (deep synthetic
/// fabrics) spill to a `Vec` transparently.
const INLINE_CAP: usize = 30;

/// Storage behind a [`Header`]: inline array for the common case, heap
/// spill for pathological route lengths. `start` is the consumption cursor
/// — switches and in-transit NICs strip leading bytes, which is a cursor
/// bump here, not a memmove.
#[derive(Clone)]
enum Repr {
    Inline {
        start: u8,
        len: u8,
        buf: [u8; INLINE_CAP],
    },
    Heap {
        start: usize,
        bytes: Vec<u8>,
    },
}

/// Header built from a [`SourceRoute`]: everything before the payload.
///
/// Representation note: stored with a small-buffer optimization and a
/// front cursor, so the per-packet hot operations (clone at injection,
/// route-byte consumption at every switch, ITB-group strip at every
/// in-transit NIC) are allocation-free and O(1). Equality and hashing are
/// over the *remaining* logical bytes, as before.
#[derive(Clone)]
pub struct Header {
    repr: Repr,
}

impl std::fmt::Debug for Header {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Header")
            .field("bytes", &self.as_bytes())
            .finish()
    }
}

impl PartialEq for Header {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl Eq for Header {}

impl Header {
    /// Wrap already-encoded header bytes (tests, captured wire data).
    pub fn from_bytes(bytes: &[u8]) -> Header {
        let repr = if bytes.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..bytes.len()].copy_from_slice(bytes);
            Repr::Inline {
                start: 0,
                len: narrow(bytes.len()),
                buf,
            }
        } else {
            Repr::Heap {
                start: 0,
                bytes: bytes.to_vec(),
            }
        };
        Header { repr }
    }

    /// Advance the consumption cursor by `n` bytes (the front bytes are
    /// gone from the wire's perspective).
    #[inline]
    fn advance(&mut self, n: usize) {
        debug_assert!(n <= self.len());
        match &mut self.repr {
            Repr::Inline { start, .. } => *start += narrow::<u8, _>(n),
            Repr::Heap { start, .. } => *start += n,
        }
    }
    /// Encode the header for `route` (paper Figure 3b). With a single
    /// segment this degenerates to the original format of Figure 3a.
    ///
    /// ```
    /// use itb_routing::path::{Hop, SourceRoute};
    /// use itb_routing::wire::Header;
    /// use itb_topo::{HostId, SwitchId};
    ///
    /// let route = SourceRoute::direct(
    ///     HostId(0),
    ///     HostId(1),
    ///     vec![Hop::new(SwitchId(0), 3), Hop::new(SwitchId(1), 1)],
    /// );
    /// let header = Header::encode(&route);
    /// // Two route bytes + the two-byte GM type.
    /// assert_eq!(header.len(), 4);
    /// ```
    pub fn encode(route: &SourceRoute) -> Header {
        let mut bytes = Vec::new();
        let last = route.segments.len() - 1;
        // Work out each trailing group's length first (the Length byte counts
        // the header bytes that follow it, so build back-to-front).
        let mut tail: Vec<u8> = Vec::new();
        // Final type comes last before payload.
        for (i, seg) in route.segments.iter().enumerate().rev() {
            let mut group: Vec<u8> = seg.hops.iter().map(|h| route_byte(h.out_port)).collect();
            if i == last {
                group.extend_from_slice(&TYPE_GM.to_be_bytes());
            }
            if i > 0 {
                // Prefix the ITB tag + remaining-length for this segment.
                let remaining: u8 = narrow(group.len() + tail.len());
                let mut pre = TYPE_ITB.to_be_bytes().to_vec();
                pre.push(remaining);
                pre.extend(group);
                group = pre;
            }
            let mut combined = group;
            combined.extend(std::mem::take(&mut tail));
            tail = combined;
        }
        bytes.extend(tail);
        Header::from_bytes(&bytes)
    }

    /// The raw header bytes (those not yet consumed by switches / ITB NICs).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { start, len, buf } => &buf[*start as usize..*len as usize],
            Repr::Heap { start, bytes } => &bytes[*start..],
        }
    }

    /// Header length in bytes (this rides on the wire, so it contributes to
    /// transfer time).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { start, len, .. } => (*len - *start) as usize,
            Repr::Heap { start, bytes } => bytes.len() - *start,
        }
    }

    /// Whether the header is empty (never true for a valid route).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Strip the leading route byte — what a switch does when it routes the
    /// packet. Returns the output port.
    ///
    /// # Panics
    /// Panics if the leading byte is not a route byte (routing a packet that
    /// has already arrived is a model bug).
    pub fn consume_route_byte(&mut self) -> PortIx {
        let b = self.as_bytes()[0];
        // detlint::allow(S001, encode_route writes only route bytes; checked by round-trip tests)
        let port = decode_route_byte(b).expect("leading byte must be a route byte");
        self.advance(1);
        port
    }

    /// Peek the packet type in the leading two bytes, if the header
    /// currently starts with a type (i.e. the packet is at a NIC).
    pub fn packet_type(&self) -> Option<u16> {
        let b = self.as_bytes();
        if b.len() < 2 {
            return None;
        }
        if decode_route_byte(b[0]).is_some() {
            return None;
        }
        Some(u16::from_be_bytes([b[0], b[1]]))
    }

    /// At an in-transit NIC: strip the `ITB | Length` group, leaving the
    /// next segment's route bytes at the front. Returns the remaining header
    /// length announced by the Length byte.
    ///
    /// # Panics
    /// Panics if the header does not start with [`TYPE_ITB`].
    pub fn strip_itb_group(&mut self) -> u8 {
        assert_eq!(self.packet_type(), Some(TYPE_ITB), "not an ITB packet");
        let len = self.as_bytes()[2];
        self.advance(3);
        debug_assert_eq!(self.len(), len as usize);
        len
    }
}

/// Decoded view of a full header: the per-segment port lists. Used by tests
/// and by the mapper's route-table verifier.
pub fn decode_segments(header: &Header) -> Option<Vec<Vec<PortIx>>> {
    let mut segs = Vec::new();
    let mut cur = Vec::new();
    let mut i = 0;
    let b = header.as_bytes();
    while i < b.len() {
        if let Some(p) = decode_route_byte(b[i]) {
            cur.push(p);
            i += 1;
            continue;
        }
        if i + 1 >= b.len() {
            return None;
        }
        let ty = u16::from_be_bytes([b[i], b[i + 1]]);
        match ty {
            TYPE_ITB => {
                if i + 2 >= b.len() {
                    return None;
                }
                segs.push(std::mem::take(&mut cur));
                i += 3; // tag + length byte
            }
            TYPE_GM | TYPE_MAP => {
                segs.push(std::mem::take(&mut cur));
                return if i + 2 == b.len() { Some(segs) } else { None };
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{Hop, Segment, SourceRoute};
    use itb_topo::{HostId, SwitchId};

    fn hops(ps: &[u8]) -> Vec<Hop> {
        ps.iter()
            .enumerate()
            .map(|(i, &p)| Hop::new(SwitchId(i as u16), p))
            .collect()
    }

    #[test]
    fn single_segment_layout() {
        let r = SourceRoute::direct(HostId(0), HostId(1), hops(&[3, 1, 2]));
        let h = Header::encode(&r);
        assert_eq!(
            h.as_bytes(),
            &[
                ROUTE_TAG | 3,
                ROUTE_TAG | 1,
                ROUTE_TAG | 2,
                0x00,
                0x0D // TYPE_GM
            ]
        );
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn two_segment_layout_matches_fig3b() {
        let r = SourceRoute {
            src: HostId(0),
            dst: HostId(2),
            segments: vec![
                Segment {
                    from: HostId(0),
                    to: HostId(1),
                    hops: hops(&[4, 5]),
                },
                Segment {
                    from: HostId(1),
                    to: HostId(2),
                    hops: hops(&[6]),
                },
            ],
        };
        let h = Header::encode(&r);
        // Path1(2) | ITB(2) | Len(1) | Path2(1) | Type(2)
        assert_eq!(h.len(), 8);
        let b = h.as_bytes();
        assert_eq!(b[0], ROUTE_TAG | 4);
        assert_eq!(b[1], ROUTE_TAG | 5);
        assert_eq!(u16::from_be_bytes([b[2], b[3]]), TYPE_ITB);
        assert_eq!(b[4], 3); // remaining: 1 route byte + 2 type bytes
        assert_eq!(b[5], ROUTE_TAG | 6);
        assert_eq!(u16::from_be_bytes([b[6], b[7]]), TYPE_GM);
    }

    #[test]
    fn switch_and_nic_consumption_walk() {
        let r = SourceRoute {
            src: HostId(0),
            dst: HostId(2),
            segments: vec![
                Segment {
                    from: HostId(0),
                    to: HostId(1),
                    hops: hops(&[4, 5]),
                },
                Segment {
                    from: HostId(1),
                    to: HostId(2),
                    hops: hops(&[6]),
                },
            ],
        };
        let mut h = Header::encode(&r);
        // Two switches strip their route bytes.
        assert_eq!(h.consume_route_byte(), PortIx(4));
        assert_eq!(h.packet_type(), None, "still route bytes in front");
        assert_eq!(h.consume_route_byte(), PortIx(5));
        // At the in-transit NIC the type reads ITB.
        assert_eq!(h.packet_type(), Some(TYPE_ITB));
        let remaining = h.strip_itb_group();
        assert_eq!(remaining, 3);
        // Re-injected: next switch routes on port 6.
        assert_eq!(h.consume_route_byte(), PortIx(6));
        // Destination NIC sees a normal GM packet.
        assert_eq!(h.packet_type(), Some(TYPE_GM));
    }

    #[test]
    fn decode_roundtrip_multi_itb() {
        let r = SourceRoute {
            src: HostId(0),
            dst: HostId(3),
            segments: vec![
                Segment {
                    from: HostId(0),
                    to: HostId(1),
                    hops: hops(&[1]),
                },
                Segment {
                    from: HostId(1),
                    to: HostId(2),
                    hops: hops(&[2, 3]),
                },
                Segment {
                    from: HostId(2),
                    to: HostId(3),
                    hops: hops(&[4, 5, 6]),
                },
            ],
        };
        let h = Header::encode(&r);
        let segs = decode_segments(&h).expect("valid header decodes");
        assert_eq!(
            segs,
            vec![
                vec![PortIx(1)],
                vec![PortIx(2), PortIx(3)],
                vec![PortIx(4), PortIx(5), PortIx(6)],
            ]
        );
    }

    #[test]
    fn truncated_header_fails_decode() {
        let r = SourceRoute::direct(HostId(0), HostId(1), hops(&[1, 2]));
        let h = Header::encode(&r);
        let cut = Header::from_bytes(&h.as_bytes()[..h.len() - 1]);
        assert!(decode_segments(&cut).is_none());
    }

    #[test]
    fn long_header_spills_to_heap_and_consumes_identically() {
        // A route long enough to exceed INLINE_CAP must behave exactly like
        // the inline representation under the same consumption walk.
        let ports: Vec<u8> = (0..40).map(|i| i % 16).collect();
        let r = SourceRoute::direct(HostId(0), HostId(1), hops(&ports));
        let mut h = Header::encode(&r);
        assert!(h.len() > INLINE_CAP, "test must exercise the heap repr");
        let full = h.as_bytes().to_vec();
        assert_eq!(Header::from_bytes(&full), h);
        for &p in &ports {
            assert_eq!(h.consume_route_byte(), PortIx(p));
        }
        assert_eq!(h.packet_type(), Some(TYPE_GM));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn clone_is_independent_of_cursor() {
        let r = SourceRoute::direct(HostId(0), HostId(1), hops(&[1, 2, 3]));
        let mut h = Header::encode(&r);
        let snapshot = h.clone();
        h.consume_route_byte();
        assert_eq!(snapshot.len(), 5, "clone keeps its own cursor");
        assert_ne!(snapshot, h);
        assert_eq!(snapshot.as_bytes()[0], ROUTE_TAG | 1);
    }

    #[test]
    fn route_byte_roundtrip() {
        for p in 0..16u8 {
            assert_eq!(decode_route_byte(route_byte(PortIx(p))), Some(PortIx(p)));
        }
        assert_eq!(decode_route_byte(0x00), None);
        assert_eq!(decode_route_byte(0x0D), None);
    }

    #[test]
    fn crc8_known_values() {
        assert_eq!(crc8(&[]), 0);
        assert_eq!(crc8(&[0x00]), 0);
        // CRC-8/SMBus check value for "123456789" is 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
        // Single-bit corruption changes the CRC.
        let a = crc8(&[1, 2, 3, 4]);
        let b = crc8(&[1, 2, 3, 5]);
        assert_ne!(a, b);
    }

    #[test]
    fn type_constants_are_distinct_and_not_route_bytes() {
        for ty in [TYPE_GM, TYPE_ITB, TYPE_MAP] {
            let hi = (ty >> 8) as u8;
            assert!(
                decode_route_byte(hi).is_none(),
                "type {ty:#06x} high byte collides with route bytes"
            );
        }
        assert_ne!(TYPE_GM, TYPE_ITB);
        assert_ne!(TYPE_GM, TYPE_MAP);
        assert_ne!(TYPE_ITB, TYPE_MAP);
    }
}

//! Route tables — what the GM mapper computes and installs in each NIC.

use crate::path::SourceRoute;
use crate::planner::{ItbHostSelection, ItbPlanner, PlannerError};
use crate::updown::shortest_updown;
use itb_sim::narrow;
use itb_topo::{HostId, Topology, UpDown};
use serde::{Deserialize, Serialize};

/// Which route computation the mapper runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Stock Myrinet: shortest up\*/down\*-legal paths.
    UpDown,
    /// The paper's mechanism: minimal paths legalized with in-transit
    /// buffers.
    Itb,
}

/// All-pairs route table, indexed `[src][dst]`. `None` on the diagonal.
#[derive(Debug, Clone)]
pub struct RouteTable {
    policy: RoutingPolicy,
    routes: Vec<Vec<Option<SourceRoute>>>,
}

impl RouteTable {
    /// Compute routes for every ordered host pair under `policy`.
    ///
    /// The ITB planner uses round-robin in-transit host selection, matching
    /// the load-balancing recommendation of the follow-up papers; use
    /// [`RouteTable::compute_with_selection`] to override.
    pub fn compute(
        topo: &Topology,
        ud: &UpDown,
        policy: RoutingPolicy,
    ) -> Result<RouteTable, PlannerError> {
        Self::compute_with_selection(topo, ud, policy, ItbHostSelection::RoundRobin)
    }

    /// Compute routes with an explicit in-transit host selection policy.
    pub fn compute_with_selection(
        topo: &Topology,
        ud: &UpDown,
        policy: RoutingPolicy,
        selection: ItbHostSelection,
    ) -> Result<RouteTable, PlannerError> {
        let n = topo.num_hosts();
        let mut planner = ItbPlanner::new(selection);
        let mut routes = Vec::with_capacity(n);
        for s in 0..narrow::<u16, _>(n) {
            let mut row = Vec::with_capacity(n);
            for d in 0..narrow::<u16, _>(n) {
                if s == d {
                    row.push(None);
                    continue;
                }
                let r = match policy {
                    RoutingPolicy::UpDown => shortest_updown(topo, ud, HostId(s), HostId(d))
                        .ok_or(PlannerError::Unreachable {
                            src: HostId(s),
                            dst: HostId(d),
                        })?,
                    RoutingPolicy::Itb => planner.route(topo, ud, HostId(s), HostId(d))?,
                };
                row.push(Some(r));
            }
            routes.push(row);
        }
        Ok(RouteTable { policy, routes })
    }

    /// The policy this table was computed under.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Route from `src` to `dst` (`None` when equal).
    pub fn route(&self, src: HostId, dst: HostId) -> Option<&SourceRoute> {
        self.routes[src.idx()][dst.idx()].as_ref()
    }

    /// Number of hosts covered.
    pub fn num_hosts(&self) -> usize {
        self.routes.len()
    }

    /// Iterate all routes (src ≠ dst).
    pub fn iter(&self) -> impl Iterator<Item = &SourceRoute> {
        self.routes.iter().flatten().filter_map(|r| r.as_ref())
    }

    /// Replace the route for `(route.src, route.dst)` — used to install the
    /// hand-built evaluation paths of the paper's Figure 6 testbed.
    pub fn set_route(&mut self, route: SourceRoute) {
        assert_ne!(route.src, route.dst);
        let (s, d) = (route.src.idx(), route.dst.idx());
        self.routes[s][d] = Some(route);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_topo::builders::{random_irregular, ring, IrregularSpec};

    #[test]
    fn table_covers_all_pairs() {
        let t = ring(5, 1);
        let ud = UpDown::compute_default(&t);
        for policy in [RoutingPolicy::UpDown, RoutingPolicy::Itb] {
            let tbl = RouteTable::compute(&t, &ud, policy).unwrap();
            assert_eq!(tbl.num_hosts(), 5);
            assert_eq!(tbl.iter().count(), 5 * 4);
            assert_eq!(tbl.policy(), policy);
            for s in 0..5u16 {
                assert!(tbl.route(HostId(s), HostId(s)).is_none());
                for d in 0..5u16 {
                    if s != d {
                        let r = tbl.route(HostId(s), HostId(d)).unwrap();
                        assert_eq!(r.src, HostId(s));
                        assert_eq!(r.dst, HostId(d));
                        assert!(r.is_well_formed(&t));
                    }
                }
            }
        }
    }

    #[test]
    fn updown_table_has_no_itbs() {
        let t = ring(6, 1);
        let ud = UpDown::compute_default(&t);
        let tbl = RouteTable::compute(&t, &ud, RoutingPolicy::UpDown).unwrap();
        assert!(tbl.iter().all(|r| r.itb_count() == 0));
    }

    #[test]
    fn itb_table_uses_itbs_on_irregular_networks() {
        let t = random_irregular(&IrregularSpec::evaluation_default(16, 3));
        let ud = UpDown::compute_default(&t);
        let tbl = RouteTable::compute(&t, &ud, RoutingPolicy::Itb).unwrap();
        let with_itb = tbl.iter().filter(|r| r.itb_count() > 0).count();
        assert!(
            with_itb > 0,
            "a 16-switch irregular network should need ITBs somewhere"
        );
    }

    #[test]
    fn itb_routes_never_longer_in_links() {
        let t = random_irregular(&IrregularSpec::evaluation_default(10, 5));
        let ud = UpDown::compute_default(&t);
        let udt = RouteTable::compute(&t, &ud, RoutingPolicy::UpDown).unwrap();
        let itbt = RouteTable::compute(&t, &ud, RoutingPolicy::Itb).unwrap();
        for s in t.host_ids() {
            for d in t.host_ids() {
                if s == d {
                    continue;
                }
                let udr = udt.route(s, d).unwrap();
                let itbr = itbt.route(s, d).unwrap();
                let ud_links = udr.total_crossings() - 1;
                let itb_links = itbr.total_crossings() - 1 - itbr.itb_count();
                assert!(itb_links <= ud_links);
            }
        }
    }
}

//! The In-Transit Buffer route planner.
//!
//! The ITB mechanism legalizes minimal paths under up\*/down\*: wherever a
//! minimal path needs a forbidden down→up turn at a switch, the packet is
//! ejected to a host on that switch (the *in-transit host*) and re-injected,
//! splitting the path into up\*/down\*-legal segments (paper §1, Figure 1).
//!
//! The planner searches the switch graph with a lexicographic cost
//! *(inter-switch links, ITBs)*: it returns a route of minimal length that
//! uses as few in-transit buffers as possible, inserting one only where a
//! forbidden turn actually occurs and only at switches that have a host to
//! eject through. When no minimal path can be legalized (no host at any
//! violating switch of any minimal path), the search transparently falls
//! back to longer paths — in the worst case the pure up\*/down\* route, so
//! the planned route is never longer than the up\*/down\* one.

use crate::path::{Hop, Segment, SourceRoute};
use itb_sim::narrow;
use itb_topo::updown::Direction;
use itb_topo::{HostId, PortIx, SwitchId, Topology, UpDown};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the planner picks the in-transit host when a switch has several.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItbHostSelection {
    /// Always the lowest-numbered host (fully deterministic, used in tests).
    #[default]
    First,
    /// Rotate across the switch's hosts route by route, spreading the
    /// ejection/re-injection load — the balance-aware choice the follow-up
    /// papers recommend.
    RoundRobin,
}

/// Errors from [`ItbPlanner::route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannerError {
    /// Source and destination are the same host.
    SameHost(HostId),
    /// No path exists (cannot happen on a validated, connected topology).
    Unreachable {
        /// Requested source.
        src: HostId,
        /// Requested destination.
        dst: HostId,
    },
}

impl std::fmt::Display for PlannerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerError::SameHost(h) => write!(f, "source and destination are both {h}"),
            PlannerError::Unreachable { src, dst } => {
                write!(f, "no path from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for PlannerError {}

/// Direction component of the search state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    Start,
    Up,
    Down,
}

impl Dir {
    fn after(d: Direction) -> Dir {
        match d {
            Direction::Up => Dir::Up,
            Direction::Down => Dir::Down,
        }
    }
    fn code(self) -> usize {
        match self {
            Dir::Start => 0,
            Dir::Up => 1,
            Dir::Down => 2,
        }
    }
}

/// The ITB route planner. Holds round-robin state, so reuse one instance
/// while computing a whole route table.
#[derive(Debug)]
pub struct ItbPlanner {
    selection: ItbHostSelection,
    /// Per-switch rotation cursor for [`ItbHostSelection::RoundRobin`].
    rr_cursor: Vec<usize>,
}

impl ItbPlanner {
    /// Planner with the given host-selection policy.
    pub fn new(selection: ItbHostSelection) -> Self {
        ItbPlanner {
            selection,
            rr_cursor: Vec::new(),
        }
    }

    /// Compute the minimal-with-ITBs route from `src` to `dst`.
    ///
    /// ```
    /// use itb_routing::planner::{ItbHostSelection, ItbPlanner};
    /// use itb_topo::{builders::ring, HostId, UpDown};
    ///
    /// let topo = ring(8, 1);
    /// let ud = UpDown::compute_default(&topo);
    /// let mut planner = ItbPlanner::new(ItbHostSelection::First);
    /// let route = planner.route(&topo, &ud, HostId(0), HostId(4)).unwrap();
    /// // Minimal half-way path on an 8-ring: 4 links; up*/down* would detour.
    /// assert!(route.is_well_formed(&topo));
    /// assert_eq!(route.total_crossings(), 5 + route.itb_count());
    /// ```
    pub fn route(
        &mut self,
        topo: &Topology,
        ud: &UpDown,
        src: HostId,
        dst: HostId,
    ) -> Result<SourceRoute, PlannerError> {
        if src == dst {
            return Err(PlannerError::SameHost(src));
        }
        if self.rr_cursor.len() < topo.num_switches() {
            self.rr_cursor.resize(topo.num_switches(), 0);
        }
        let (src_sw, _) = topo.host_attachment(src);
        let (dst_sw, dst_port) = topo.host_attachment(dst);

        // Dijkstra over (switch, dir) with cost (links, itbs).
        let n = topo.num_switches();
        let idx = |s: SwitchId, d: Dir| s.idx() * 3 + d.code();
        const INF: (u32, u32) = (u32::MAX, u32::MAX);
        let mut best = vec![INF; n * 3];
        // prev[state] = (prev_state, hop, itb_inserted_before_hop)
        let mut prev: Vec<Option<(usize, Hop, bool)>> = vec![None; n * 3];
        // (cost=(links, itbs), fifo tie-break, state index)
        type HeapEntry = Reverse<((u32, u32), u64, usize)>;
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut seq = 0u64;
        let unpack = |state: usize| {
            let s = SwitchId(narrow(state / 3));
            let d = match state % 3 {
                0 => Dir::Start,
                1 => Dir::Up,
                _ => Dir::Down,
            };
            (s, d)
        };

        let start = idx(src_sw, Dir::Start);
        best[start] = (0, 0);
        heap.push(Reverse(((0, 0), seq, start)));

        let mut goal: Option<usize> = None;
        while let Some(Reverse((cost, _, state))) = heap.pop() {
            let (s, d) = unpack(state);
            if cost > best[state] {
                continue;
            }
            if s == dst_sw {
                goal = Some(state);
                break;
            }
            for (port, link, nbr) in topo.switch_neighbors(s) {
                let dir = ud.direction_from(topo, link, s, port);
                let (needs_itb, ok) = match (d, dir) {
                    (Dir::Down, Direction::Up) => (true, !topo.hosts_at(s).is_empty()),
                    _ => (false, true),
                };
                if !ok {
                    continue;
                }
                let ncost = (cost.0 + 1, cost.1 + u32::from(needs_itb));
                let nstate = idx(nbr, Dir::after(dir));
                if ncost < best[nstate] {
                    best[nstate] = ncost;
                    prev[nstate] = Some((
                        state,
                        Hop {
                            switch: s,
                            out_port: port,
                        },
                        needs_itb,
                    ));
                    seq += 1;
                    heap.push(Reverse((ncost, seq, nstate)));
                }
            }
        }

        let goal = goal.ok_or(PlannerError::Unreachable { src, dst })?;

        // Reconstruct the hop list with ITB markers.
        let mut rev: Vec<(Hop, bool)> = Vec::new();
        let mut cur = goal;
        while let Some((p, hop, itb)) = prev[cur] {
            rev.push((hop, itb));
            cur = p;
        }
        rev.reverse();

        // Assemble segments, breaking at ITB markers.
        let mut segments = Vec::new();
        let mut cur_from = src;
        let mut cur_hops: Vec<Hop> = Vec::new();
        for (hop, itb_here) in rev {
            if itb_here {
                let host = self.select_itb_host(topo, hop.switch);
                let host_port = self.switch_port_of_host(topo, host);
                cur_hops.push(Hop {
                    switch: hop.switch,
                    out_port: host_port,
                });
                segments.push(Segment {
                    from: cur_from,
                    to: host,
                    hops: std::mem::take(&mut cur_hops),
                });
                cur_from = host;
            }
            cur_hops.push(hop);
        }
        cur_hops.push(Hop {
            switch: dst_sw,
            out_port: dst_port,
        });
        segments.push(Segment {
            from: cur_from,
            to: dst,
            hops: cur_hops,
        });

        Ok(SourceRoute { src, dst, segments })
    }

    /// Pick the in-transit host at `s` per the selection policy.
    fn select_itb_host(&mut self, topo: &Topology, s: SwitchId) -> HostId {
        let hosts = topo.hosts_at(s);
        debug_assert!(!hosts.is_empty(), "planner only breaks at hosted switches");
        match self.selection {
            ItbHostSelection::First => hosts[0],
            ItbHostSelection::RoundRobin => {
                let cur = &mut self.rr_cursor[s.idx()];
                let h = hosts[*cur % hosts.len()];
                *cur = (*cur + 1) % hosts.len();
                h
            }
        }
    }

    /// The switch port a host's cable plugs into.
    fn switch_port_of_host(&self, topo: &Topology, h: HostId) -> PortIx {
        topo.host_attachment(h).1
    }
}

impl Default for ItbPlanner {
    fn default() -> Self {
        Self::new(ItbHostSelection::First)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown::{min_crossings, shortest_any, shortest_updown};
    use itb_topo::builders::{chain, random_irregular, ring, IrregularSpec};
    use itb_topo::SpanningTree;

    fn assert_segments_legal(topo: &Topology, ud: &UpDown, r: &SourceRoute) {
        for seg in &r.segments {
            let mut last: Option<Direction> = None;
            for hop in &seg.hops[..seg.hops.len() - 1] {
                let link = topo.link_at(hop.switch, hop.out_port).unwrap();
                let dir = ud.direction_from(topo, link, hop.switch, hop.out_port);
                if let Some(Direction::Down) = last {
                    assert_ne!(dir, Direction::Up, "segment violates up*/down*: {r:?}");
                }
                last = Some(dir);
            }
        }
    }

    #[test]
    fn tree_topology_needs_no_itbs() {
        let t = chain(5, 1);
        let ud = UpDown::compute_default(&t);
        let mut p = ItbPlanner::default();
        let r = p.route(&t, &ud, HostId(0), HostId(4)).unwrap();
        assert_eq!(r.itb_count(), 0);
        assert_eq!(r.total_crossings(), 5);
        assert!(r.is_well_formed(&t));
    }

    #[test]
    fn ring_gets_minimal_routes_with_itbs() {
        let t = ring(8, 1);
        let tree = SpanningTree::compute(&t, SwitchId(0));
        let ud = UpDown::compute(&t, tree);
        let mut p = ItbPlanner::default();
        let mut used_itb = false;
        for a in 0..8u16 {
            for b in 0..8u16 {
                if a == b {
                    continue;
                }
                let r = p.route(&t, &ud, HostId(a), HostId(b)).unwrap();
                assert!(r.is_well_formed(&t));
                assert_segments_legal(&t, &ud, &r);
                // Minimal link count: inter-switch links = min distance.
                let min_links = shortest_any(&t, HostId(a), HostId(b))
                    .unwrap()
                    .total_crossings()
                    - 1;
                let links: usize =
                    r.segments.iter().map(|s| s.hops.len()).sum::<usize>() - 1 - r.itb_count(); // each ITB adds one extra crossing, not a link
                assert_eq!(links, min_links, "route {a}->{b} not minimal: {r:?}");
                used_itb |= r.itb_count() > 0;
            }
        }
        assert!(used_itb, "an 8-ring must require ITBs somewhere");
    }

    #[test]
    fn never_longer_than_updown() {
        for seed in 0..8 {
            let t = random_irregular(&IrregularSpec::evaluation_default(16, seed));
            let ud = UpDown::compute_default(&t);
            let mut p = ItbPlanner::default();
            let hosts: Vec<_> = t.host_ids().collect();
            for &a in hosts.iter().step_by(9) {
                for &b in hosts.iter().step_by(11) {
                    if a == b {
                        continue;
                    }
                    let itb = p.route(&t, &ud, a, b).unwrap();
                    let udr = shortest_updown(&t, &ud, a, b).unwrap();
                    let itb_links: usize = itb.segments.iter().map(|s| s.hops.len()).sum::<usize>()
                        - 1
                        - itb.itb_count();
                    let ud_links = udr.total_crossings() - 1;
                    assert!(
                        itb_links <= ud_links,
                        "ITB route longer than UD for {a:?}->{b:?} (seed {seed})"
                    );
                    assert_segments_legal(&t, &ud, &itb);
                    assert!(itb.is_well_formed(&t));
                }
            }
        }
    }

    #[test]
    fn hosted_switches_make_all_routes_minimal() {
        // Every switch has hosts, so every minimal path is legalizable.
        for seed in 0..8 {
            let t = random_irregular(&IrregularSpec::evaluation_default(12, seed));
            let ud = UpDown::compute_default(&t);
            let mut p = ItbPlanner::default();
            let hosts: Vec<_> = t.host_ids().collect();
            for &a in hosts.iter().step_by(7) {
                for &b in hosts.iter().step_by(5) {
                    if a == b {
                        continue;
                    }
                    let r = p.route(&t, &ud, a, b).unwrap();
                    let min_links = min_crossings(&t, a, b).unwrap() - 1;
                    let links: usize =
                        r.segments.iter().map(|s| s.hops.len()).sum::<usize>() - 1 - r.itb_count();
                    assert_eq!(links, min_links);
                }
            }
        }
    }

    #[test]
    fn same_host_rejected() {
        let t = chain(2, 1);
        let ud = UpDown::compute_default(&t);
        let mut p = ItbPlanner::default();
        assert_eq!(
            p.route(&t, &ud, HostId(0), HostId(0)).unwrap_err(),
            PlannerError::SameHost(HostId(0))
        );
    }

    #[test]
    fn round_robin_rotates_itb_hosts() {
        // Ring with 2 hosts per switch: repeated routes over the same
        // violating switch must alternate in-transit hosts.
        let t = ring(8, 2);
        let tree = SpanningTree::compute(&t, SwitchId(0));
        let ud = UpDown::compute(&t, tree);
        let mut p = ItbPlanner::new(ItbHostSelection::RoundRobin);
        // Find a pair that needs an ITB.
        let mut found = None;
        'outer: for a in 0..16u16 {
            for b in 0..16u16 {
                if a == b {
                    continue;
                }
                let r = p.route(&t, &ud, HostId(a), HostId(b)).unwrap();
                if r.itb_count() > 0 {
                    found = Some((a, b, r.itb_hosts().next().unwrap()));
                    break 'outer;
                }
            }
        }
        let (a, b, first_host) = found.expect("ring needs ITBs");
        let second = p.route(&t, &ud, HostId(a), HostId(b)).unwrap();
        let second_host = second.itb_hosts().next().unwrap();
        assert_ne!(first_host, second_host, "round robin should rotate");
        let third = p.route(&t, &ud, HostId(a), HostId(b)).unwrap();
        assert_eq!(third.itb_hosts().next().unwrap(), first_host);
    }

    #[test]
    fn first_policy_is_stable() {
        let t = ring(8, 2);
        let ud = UpDown::compute_default(&t);
        let mut p = ItbPlanner::new(ItbHostSelection::First);
        for a in [0u16, 3, 9] {
            for b in [5u16, 12] {
                if a == b {
                    continue;
                }
                let r1 = p.route(&t, &ud, HostId(a), HostId(b)).unwrap();
                let r2 = p.route(&t, &ud, HostId(a), HostId(b)).unwrap();
                assert_eq!(r1, r2);
            }
        }
    }

    #[test]
    fn itb_adds_exactly_one_crossing_each() {
        let t = ring(8, 1);
        let ud = UpDown::compute_default(&t);
        let mut p = ItbPlanner::default();
        for a in 0..8u16 {
            for b in 0..8u16 {
                if a == b {
                    continue;
                }
                let r = p.route(&t, &ud, HostId(a), HostId(b)).unwrap();
                let min = min_crossings(&t, HostId(a), HostId(b)).unwrap();
                assert_eq!(r.total_crossings(), min + r.itb_count(), "{a}->{b}: {r:?}");
            }
        }
    }
}

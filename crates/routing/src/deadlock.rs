//! Channel-dependency-graph deadlock analysis.
//!
//! Wormhole routing is deadlock-free iff the channel dependency graph (CDG)
//! induced by the route set is acyclic (Dally & Seitz). Vertices are
//! directed channels — one per link direction — and a route contributes an
//! edge between every pair of channels it holds consecutively. Ejecting a
//! packet into an in-transit buffer *breaks* the chain: segment boundaries
//! contribute no dependency, which is exactly the paper's argument for why
//! ITB segmentation keeps minimal routing deadlock-free.

use crate::path::SourceRoute;
use itb_topo::{LinkId, Node, Topology};

/// A directed channel: `link` traversed leaving `from_a`-end (`true`) or
/// leaving the `b` end (`false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// The physical cable.
    pub link: LinkId,
    /// Direction flag: `true` = a→b, `false` = b→a.
    pub a_to_b: bool,
}

impl Channel {
    fn index(self) -> usize {
        self.link.idx() * 2 + usize::from(!self.a_to_b)
    }
}

/// The channel dependency graph of a route set.
#[derive(Debug)]
pub struct ChannelDepGraph {
    /// adjacency: edges[c] = channels depended on by c (c held while
    /// requesting them).
    edges: Vec<Vec<usize>>,
}

impl ChannelDepGraph {
    /// Build the CDG from every route in `routes`.
    pub fn build<'a>(
        topo: &Topology,
        routes: impl IntoIterator<Item = &'a SourceRoute>,
    ) -> ChannelDepGraph {
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); topo.num_links() * 2];
        for route in routes {
            for seg in &route.segments {
                // Channel sequence of this segment: host uplink, inter-switch
                // links, host downlink.
                let mut chain: Vec<Channel> = Vec::with_capacity(seg.hops.len() + 1);
                chain.push(directed(
                    topo,
                    topo.host_link(seg.from),
                    Node::Host(seg.from),
                ));
                for hop in &seg.hops {
                    let link = topo
                        .link_at(hop.switch, hop.out_port)
                        // detlint::allow(S001, routes produced by the planner use cabled ports)
                        .expect("route uses cabled ports");
                    chain.push(directed_from_port(
                        topo,
                        link,
                        Node::Switch(hop.switch),
                        hop.out_port,
                    ));
                }
                for w in chain.windows(2) {
                    let (from, to) = (w[0].index(), w[1].index());
                    if !edges[from].contains(&to) {
                        edges[from].push(to);
                    }
                }
            }
        }
        ChannelDepGraph { edges }
    }

    /// `true` when the CDG contains no cycle (deadlock-free route set).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Find one cycle if any exists (channel indices, for diagnostics).
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n = self.edges.len();
        let mut mark = vec![Mark::White; n];
        // Iterative DFS with an explicit stack to survive big graphs.
        for start in 0..n {
            if mark[start] != Mark::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            mark[start] = Mark::Grey;
            let mut path = vec![start];
            while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
                if *ei < self.edges[v].len() {
                    let w = self.edges[v][*ei];
                    *ei += 1;
                    match mark[w] {
                        Mark::White => {
                            mark[w] = Mark::Grey;
                            stack.push((w, 0));
                            path.push(w);
                        }
                        Mark::Grey => {
                            // Cycle: slice of path from w onward.
                            let pos = path
                                .iter()
                                .position(|&x| x == w)
                                // detlint::allow(S001, w was drawn from path so position finds it)
                                .expect("w drawn from path");
                            return Some(path[pos..].to_vec());
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark[v] = Mark::Black;
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// Number of dependency edges (diagnostic).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Directed channel leaving `from` on `link`.
fn directed(topo: &Topology, link: LinkId, from: Node) -> Channel {
    let l = topo.link(link);
    Channel {
        link,
        a_to_b: l.a.node == from,
    }
}

/// Directed channel leaving a specific switch port (needed for self-loops,
/// where both ends share the node).
fn directed_from_port(
    topo: &Topology,
    link: LinkId,
    from: Node,
    port: itb_topo::PortIx,
) -> Channel {
    let l = topo.link(link);
    Channel {
        link,
        a_to_b: l.a.node == from && l.a.port == port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{Hop, SourceRoute};
    use crate::table::{RouteTable, RoutingPolicy};
    use itb_topo::builders::{random_irregular, ring, IrregularSpec};
    use itb_topo::{HostId, SwitchId, UpDown};

    #[test]
    fn updown_tables_are_deadlock_free() {
        for seed in 0..6 {
            let t = random_irregular(&IrregularSpec::evaluation_default(12, seed));
            let ud = UpDown::compute_default(&t);
            let tbl = RouteTable::compute(&t, &ud, RoutingPolicy::UpDown).unwrap();
            let cdg = ChannelDepGraph::build(&t, tbl.iter());
            assert!(cdg.is_acyclic(), "seed {seed}: UD CDG has a cycle");
        }
    }

    #[test]
    fn itb_tables_are_deadlock_free() {
        for seed in 0..6 {
            let t = random_irregular(&IrregularSpec::evaluation_default(12, seed));
            let ud = UpDown::compute_default(&t);
            let tbl = RouteTable::compute(&t, &ud, RoutingPolicy::Itb).unwrap();
            let cdg = ChannelDepGraph::build(&t, tbl.iter());
            assert!(cdg.is_acyclic(), "seed {seed}: ITB CDG has a cycle");
        }
    }

    #[test]
    fn minimal_routing_without_itbs_can_deadlock() {
        // On a ring, minimal routing with no ITB segmentation creates the
        // classic cyclic dependency.
        let t = ring(4, 1);
        // Hand-build the 4 "go clockwise one hop then exit" + "go clockwise
        // two hops" routes that close the cycle around the ring.
        // Host i attaches to switch i at port 2; clockwise exit is port 1.
        let mk = |a: u16, b: u16| {
            let mut hops = Vec::new();
            let mut s = a;
            while s != b {
                hops.push(Hop::new(SwitchId(s), 1));
                s = (s + 1) % 4;
            }
            hops.push(Hop::new(SwitchId(b), 2));
            SourceRoute::direct(HostId(a), HostId(b), hops)
        };
        let routes = vec![mk(0, 2), mk(1, 3), mk(2, 0), mk(3, 1)];
        for r in &routes {
            assert!(r.is_well_formed(&t));
        }
        let cdg = ChannelDepGraph::build(&t, routes.iter());
        assert!(
            !cdg.is_acyclic(),
            "all-clockwise minimal ring routes must form a CDG cycle"
        );
        assert!(cdg.find_cycle().unwrap().len() >= 3);
    }

    #[test]
    fn itb_segmentation_breaks_the_ring_cycle() {
        // Same clockwise routes, but split each at its midpoint host: the
        // dependency chain is cut and the CDG becomes acyclic.
        let t = ring(4, 1);
        let mk_split = |a: u16, mid: u16, b: u16| {
            let seg = |from: u16, to: u16| {
                let mut hops = Vec::new();
                let mut s = from;
                while s != to {
                    hops.push(Hop::new(SwitchId(s), 1));
                    s = (s + 1) % 4;
                }
                hops.push(Hop::new(SwitchId(to), 2));
                hops
            };
            SourceRoute {
                src: HostId(a),
                dst: HostId(b),
                segments: vec![
                    crate::path::Segment {
                        from: HostId(a),
                        to: HostId(mid),
                        hops: seg(a, mid),
                    },
                    crate::path::Segment {
                        from: HostId(mid),
                        to: HostId(b),
                        hops: seg(mid, b),
                    },
                ],
            }
        };
        let routes = vec![
            mk_split(0, 1, 2),
            mk_split(1, 2, 3),
            mk_split(2, 3, 0),
            mk_split(3, 0, 1),
        ];
        for r in &routes {
            assert!(r.is_well_formed(&t));
        }
        let cdg = ChannelDepGraph::build(&t, routes.iter());
        assert!(cdg.is_acyclic(), "ITB segmentation must break the cycle");
    }

    #[test]
    fn empty_route_set_is_acyclic() {
        let t = ring(3, 1);
        let cdg = ChannelDepGraph::build(&t, std::iter::empty());
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.edge_count(), 0);
    }
}

//! Route-set metrics behind the paper's motivation section: non-minimal
//! routing, unbalanced traffic near the spanning-tree root, and per-channel
//! load spread.

use crate::path::SourceRoute;
use crate::table::RouteTable;
use itb_topo::{Node, SwitchId, Topology, UpDown};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate statistics over an all-pairs route set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteSetMetrics {
    /// Mean inter-switch links per route.
    pub mean_links: f64,
    /// Longest route in links.
    pub max_links: usize,
    /// Mean ITBs per route.
    pub mean_itbs: f64,
    /// Fraction of routes whose path visits the spanning-tree root switch.
    pub root_crossing_fraction: f64,
    /// Ratio max/mean of per-channel route counts (1.0 = perfectly even).
    pub channel_imbalance: f64,
    /// Fraction of routes that are minimal (link count equals shortest
    /// possible).
    pub minimal_fraction: f64,
}

/// Inter-switch link count of a route (ITB detours do not add links).
pub fn route_links(route: &SourceRoute) -> usize {
    route.total_crossings() - 1 - route.itb_count()
}

/// Compute the metrics for `table` on `topo` with orientation `ud`.
pub fn analyze(topo: &Topology, ud: &UpDown, table: &RouteTable) -> RouteSetMetrics {
    let root = ud.tree().root();
    let mut total_links = 0usize;
    let mut max_links = 0usize;
    let mut total_itbs = 0usize;
    let mut root_crossing = 0usize;
    let mut minimal = 0usize;
    let mut n = 0usize;
    // Channel load: (link, direction) -> count. Ordered map: aggregation
    // below is order-independent today, but a BTreeMap keeps any future
    // per-channel reporting deterministic by construction (detlint D001).
    let mut load: BTreeMap<(u32, bool), u64> = BTreeMap::new();

    // Cache of min distances per (src switch, dst switch) is overkill here;
    // recompute per route via BFS once per source host instead.
    for route in table.iter() {
        n += 1;
        let links = route_links(route);
        total_links += links;
        max_links = max_links.max(links);
        total_itbs += route.itb_count();
        if visits_switch(route, root) {
            root_crossing += 1;
        }
        let min =
            // detlint::allow(S001, figure routes connect distinct hosts)
            crate::updown::min_crossings(topo, route.src, route.dst).expect("distinct hosts") - 1;
        if links == min {
            minimal += 1;
        }
        for seg in &route.segments {
            for hop in &seg.hops[..seg.hops.len() - 1] {
                let link = topo
                    .link_at(hop.switch, hop.out_port)
                    // detlint::allow(S001, route hops only traverse cabled ports)
                    .expect("hop uses a cabled port");
                let l = topo.link(link);
                let a_to_b = l.a.node == Node::Switch(hop.switch) && l.a.port == hop.out_port;
                *load.entry((link.0, a_to_b)).or_default() += 1;
            }
        }
    }

    let mean_load = if load.is_empty() {
        0.0
    } else {
        load.values().sum::<u64>() as f64 / load.len() as f64
    };
    let max_load = load.values().copied().max().unwrap_or(0) as f64;

    RouteSetMetrics {
        mean_links: total_links as f64 / n.max(1) as f64,
        max_links,
        mean_itbs: total_itbs as f64 / n.max(1) as f64,
        root_crossing_fraction: root_crossing as f64 / n.max(1) as f64,
        channel_imbalance: if mean_load > 0.0 {
            max_load / mean_load
        } else {
            0.0
        },
        minimal_fraction: minimal as f64 / n.max(1) as f64,
    }
}

/// Whether the route's switch sequence includes `s`.
pub fn visits_switch(route: &SourceRoute, s: SwitchId) -> bool {
    route
        .segments
        .iter()
        .any(|seg| seg.hops.iter().any(|h| h.switch == s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RoutingPolicy;
    use itb_topo::builders::{random_irregular, IrregularSpec};

    #[test]
    fn itb_routing_is_fully_minimal_and_less_root_heavy() {
        let t = random_irregular(&IrregularSpec::evaluation_default(16, 11));
        let ud = UpDown::compute_default(&t);
        let udt = RouteTable::compute(&t, &ud, RoutingPolicy::UpDown).unwrap();
        let itbt = RouteTable::compute(&t, &ud, RoutingPolicy::Itb).unwrap();
        let mu = analyze(&t, &ud, &udt);
        let mi = analyze(&t, &ud, &itbt);
        // The paper's motivation, quantified:
        assert_eq!(mi.minimal_fraction, 1.0, "every switch has hosts → minimal");
        assert!(
            mu.minimal_fraction < 1.0,
            "UD must lose minimality somewhere"
        );
        assert!(mi.mean_links <= mu.mean_links);
        assert!(
            mi.root_crossing_fraction <= mu.root_crossing_fraction,
            "ITB routes should cross the root no more often (UD {} vs ITB {})",
            mu.root_crossing_fraction,
            mi.root_crossing_fraction
        );
        assert!(mu.mean_itbs == 0.0);
        assert!(mi.mean_itbs > 0.0);
    }

    #[test]
    fn imbalance_at_least_one() {
        let t = random_irregular(&IrregularSpec::evaluation_default(8, 2));
        let ud = UpDown::compute_default(&t);
        let tbl = RouteTable::compute(&t, &ud, RoutingPolicy::UpDown).unwrap();
        let m = analyze(&t, &ud, &tbl);
        assert!(m.channel_imbalance >= 1.0);
        assert!(m.max_links >= m.mean_links.ceil() as usize);
    }

    #[test]
    fn visits_switch_detects_membership() {
        let t = itb_topo::builders::chain(3, 1);
        let ud = UpDown::compute_default(&t);
        let tbl = RouteTable::compute(&t, &ud, RoutingPolicy::UpDown).unwrap();
        let r = tbl.route(itb_topo::HostId(0), itb_topo::HostId(2)).unwrap();
        assert!(visits_switch(r, SwitchId(1)));
        assert!(visits_switch(r, SwitchId(0)));
    }
}

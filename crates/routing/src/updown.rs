//! Shortest-path computation: plain minimal and up\*/down\*-legal.

use crate::path::{Hop, SourceRoute};
use itb_topo::updown::Direction;
use itb_topo::{HostId, SwitchId, Topology, UpDown};
use std::collections::VecDeque;

/// Direction state carried along a path search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DirState {
    /// No inter-switch link traversed yet (just left the source host).
    Start,
    /// Last traversal was toward an up end.
    Up,
    /// Last traversal was away from an up end.
    Down,
}

impl DirState {
    fn step_allowed(self, next: Direction) -> bool {
        !matches!((self, next), (DirState::Down, Direction::Up))
    }
    fn after(next: Direction) -> DirState {
        match next {
            Direction::Up => DirState::Up,
            Direction::Down => DirState::Down,
        }
    }
}

/// Shortest up\*/down\*-legal route between two hosts, or `None` when the
/// hosts coincide. Up\*/down\* is connected (every pair is reachable via the
/// spanning tree), so a route always exists for distinct hosts.
///
/// Exploration follows ascending port order, so the result is a
/// deterministic function of the wiring — mirroring the deterministic route
/// choice of the GM mapper.
pub fn shortest_updown(
    topo: &Topology,
    ud: &UpDown,
    src: HostId,
    dst: HostId,
) -> Option<SourceRoute> {
    if src == dst {
        return None;
    }
    let (src_sw, _) = topo.host_attachment(src);
    let hops = switch_path(topo, Some(ud), src_sw, dst)?;
    Some(SourceRoute::direct(src, dst, hops))
}

/// Shortest route ignoring up\*/down\* legality (minimal routing).
pub fn shortest_any(topo: &Topology, src: HostId, dst: HostId) -> Option<SourceRoute> {
    if src == dst {
        return None;
    }
    let (src_sw, _) = topo.host_attachment(src);
    let hops = switch_path(topo, None, src_sw, dst)?;
    Some(SourceRoute::direct(src, dst, hops))
}

/// Minimal number of switch crossings between two hosts, ignoring legality.
pub fn min_crossings(topo: &Topology, src: HostId, dst: HostId) -> Option<usize> {
    shortest_any(topo, src, dst).map(|r| r.total_crossings())
}

/// BFS from `start_sw` to `dst`'s switch; when `ud` is given, forbids
/// down→up transitions. Returns the hop list including the final hop out to
/// the destination host.
fn switch_path(
    topo: &Topology,
    ud: Option<&UpDown>,
    start_sw: SwitchId,
    dst: HostId,
) -> Option<Vec<Hop>> {
    let (dst_sw, dst_port) = topo.host_attachment(dst);
    // State space: (switch, dir). 3 dir states per switch.
    let n = topo.num_switches();
    let idx = |s: SwitchId, d: DirState| {
        s.idx() * 3
            + match d {
                DirState::Start => 0,
                DirState::Up => 1,
                DirState::Down => 2,
            }
    };
    // prev[state] = (prev_state, hop taken to get here)
    let mut prev: Vec<Option<(usize, Hop)>> = vec![None; n * 3];
    let mut visited = vec![false; n * 3];
    let start = idx(start_sw, DirState::Start);
    visited[start] = true;
    let mut queue = VecDeque::new();
    queue.push_back((start_sw, DirState::Start));

    while let Some((s, d)) = queue.pop_front() {
        if s == dst_sw {
            // Exit to the host: allowed from any direction state (host links
            // carry no up/down orientation).
            let mut hops = vec![Hop {
                switch: s,
                out_port: dst_port,
            }];
            let mut cur = idx(s, d);
            while let Some((p, hop)) = prev[cur] {
                hops.push(hop);
                cur = p;
            }
            hops.reverse();
            return Some(hops);
        }
        for (port, link, nbr) in topo.switch_neighbors(s) {
            let next_d = match ud {
                Some(ud) => {
                    let dir = ud.direction_from(topo, link, s, port);
                    if !d.step_allowed(dir) {
                        continue;
                    }
                    DirState::after(dir)
                }
                None => DirState::Start, // single state when unconstrained
            };
            let ni = idx(nbr, next_d);
            if !visited[ni] {
                visited[ni] = true;
                prev[ni] = Some((
                    idx(s, d),
                    Hop {
                        switch: s,
                        out_port: port,
                    },
                ));
                queue.push_back((nbr, next_d));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_topo::builders::{chain, fig6_testbed, random_irregular, ring, IrregularSpec};
    use itb_topo::{HostId, SpanningTree};

    #[test]
    fn chain_routes_are_minimal_and_legal() {
        let t = chain(4, 1);
        let ud = UpDown::compute_default(&t);
        // Trees have no forbidden turns: UD route == minimal route.
        let r = shortest_updown(&t, &ud, HostId(0), HostId(3)).unwrap();
        assert_eq!(r.total_crossings(), 4);
        assert!(r.is_well_formed(&t));
        let m = shortest_any(&t, HostId(0), HostId(3)).unwrap();
        assert_eq!(m.total_crossings(), 4);
    }

    #[test]
    fn same_host_has_no_route() {
        let t = chain(2, 1);
        let ud = UpDown::compute_default(&t);
        assert!(shortest_updown(&t, &ud, HostId(0), HostId(0)).is_none());
        assert!(shortest_any(&t, HostId(0), HostId(0)).is_none());
    }

    #[test]
    fn same_switch_pair_is_one_crossing() {
        let t = chain(2, 2); // two hosts per switch
        let ud = UpDown::compute_default(&t);
        // hosts 0 and 1 share switch 0.
        let (s0, _) = t.host_attachment(HostId(0));
        let (s1, _) = t.host_attachment(HostId(1));
        assert_eq!(s0, s1);
        let r = shortest_updown(&t, &ud, HostId(0), HostId(1)).unwrap();
        assert_eq!(r.total_crossings(), 1);
        assert!(r.is_well_formed(&t));
    }

    #[test]
    fn ring_updown_takes_detour() {
        // In a 6-ring rooted anywhere, the two "bottom" switches opposite
        // the root cannot use their direct link for some pairs: the minimal
        // route is forbidden and up*/down* detours.
        let t = ring(6, 1);
        let tree = SpanningTree::compute(&t, SwitchId(0));
        let ud = UpDown::compute(&t, tree);
        let mut detours = 0;
        for a in 0..6u16 {
            for b in 0..6u16 {
                if a == b {
                    continue;
                }
                let udr = shortest_updown(&t, &ud, HostId(a), HostId(b)).unwrap();
                let min = shortest_any(&t, HostId(a), HostId(b)).unwrap();
                assert!(udr.is_well_formed(&t));
                assert!(udr.total_crossings() >= min.total_crossings());
                if udr.total_crossings() > min.total_crossings() {
                    detours += 1;
                }
            }
        }
        assert!(
            detours > 0,
            "a 6-ring must force some non-minimal UD routes"
        );
    }

    #[test]
    fn updown_routes_obey_rule_on_random_networks() {
        for seed in 0..5 {
            let t = random_irregular(&IrregularSpec::evaluation_default(12, seed));
            let ud = UpDown::compute_default(&t);
            let hosts: Vec<_> = t.host_ids().collect();
            for &a in hosts.iter().step_by(5) {
                for &b in hosts.iter().step_by(7) {
                    if a == b {
                        continue;
                    }
                    let r = shortest_updown(&t, &ud, a, b).expect("up*/down* is connected");
                    assert!(r.is_well_formed(&t), "{a:?}->{b:?} seed {seed}");
                    assert_updown_legal(&t, &ud, &r);
                }
            }
        }
    }

    /// Asserts every segment of `r` obeys the up*/down* rule.
    pub(crate) fn assert_updown_legal(t: &Topology, ud: &UpDown, r: &SourceRoute) {
        for seg in &r.segments {
            let mut state = DirState::Start;
            for hop in &seg.hops[..seg.hops.len() - 1] {
                let link = t.link_at(hop.switch, hop.out_port).unwrap();
                let dir = ud.direction_from(t, link, hop.switch, hop.out_port);
                assert!(
                    state.step_allowed(dir),
                    "down->up violation at {} in {r:?}",
                    hop.switch
                );
                state = DirState::after(dir);
            }
        }
    }

    #[test]
    fn fig6_direct_route() {
        let tb = fig6_testbed();
        let ud = UpDown::compute_default(&tb.topo);
        let r = shortest_updown(&tb.topo, &ud, tb.host1, tb.host2).unwrap();
        // host1 -> sw0 -> sw1 -> host2: 2 crossings.
        assert_eq!(r.total_crossings(), 2);
    }

    #[test]
    fn min_crossings_matches_shortest_any() {
        let t = ring(5, 1);
        assert_eq!(
            min_crossings(&t, HostId(0), HostId(2)),
            Some(
                shortest_any(&t, HostId(0), HostId(2))
                    .unwrap()
                    .total_crossings()
            )
        );
    }
}

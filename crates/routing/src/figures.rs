//! The hand-built evaluation routes of the paper's Figure 6 testbed.
//!
//! The paper measures two paths between host 1 and host 2 that each cross
//! **five** switches and the same multiset of port kinds, so the only timing
//! difference between them is the ejection/re-injection at the in-transit
//! host:
//!
//! * the **UD path** uses a loop cable at the far switch to burn the extra
//!   crossings: `h1 → sw0 →A→ sw1 →loop→ sw1 →A'→ sw0 →B→ sw1 → h2`;
//! * the **ITB path** detours through the in-transit host on `sw0`:
//!   `h1 → sw0 →A→ sw1 →A'→ sw0 → itb_host ⟲ sw0 →B→ sw1 → h2`.
//!
//! Figure 7's baseline path is the plain two-crossing up\*/down\* route.

use crate::path::{Hop, Segment, SourceRoute};
use itb_topo::builders::Fig6Testbed;
use itb_topo::{PortKind, Topology};

/// The plain route used for Figure 7: `h1 → sw0 → sw1 → h2` (2 crossings).
pub fn fig7_route(tb: &Fig6Testbed) -> SourceRoute {
    let t = &tb.topo;
    let (_, h2_port) = t.host_attachment(tb.host2);
    SourceRoute::direct(
        tb.host1,
        tb.host2,
        vec![
            Hop {
                switch: tb.sw0,
                out_port: t.out_port(tb.sw0, tb.cable_a),
            },
            Hop {
                switch: tb.sw1,
                out_port: h2_port,
            },
        ],
    )
}

/// The return route for the ping-pong (`h2 → h1`), mirroring [`fig7_route`].
pub fn fig7_return_route(tb: &Fig6Testbed) -> SourceRoute {
    let t = &tb.topo;
    let (_, h1_port) = t.host_attachment(tb.host1);
    SourceRoute::direct(
        tb.host2,
        tb.host1,
        vec![
            Hop {
                switch: tb.sw1,
                out_port: t.out_port(tb.sw1, tb.cable_a),
            },
            Hop {
                switch: tb.sw0,
                out_port: h1_port,
            },
        ],
    )
}

/// Figure 8's **UD** path: five crossings via the loop cable, no ITB.
pub fn fig8_ud_route(tb: &Fig6Testbed) -> SourceRoute {
    let t = &tb.topo;
    let loop_link = t.link(tb.loop_cable);
    let loop_p_lo = loop_link.a.port.min(loop_link.b.port);
    let (_, h2_port) = t.host_attachment(tb.host2);
    let hops = vec![
        // h1 enters sw0, leaves on cable A.
        Hop {
            switch: tb.sw0,
            out_port: t.out_port(tb.sw0, tb.cable_a),
        },
        // sw1: out the low loop port, back in through the high one.
        Hop {
            switch: tb.sw1,
            out_port: loop_p_lo,
        },
        // sw1 again: back to sw0 on cable A (reverse channel).
        Hop {
            switch: tb.sw1,
            out_port: t.out_port(tb.sw1, tb.cable_a),
        },
        // sw0: out on cable B.
        Hop {
            switch: tb.sw0,
            out_port: t.out_port(tb.sw0, tb.cable_b),
        },
        // sw1: exit to host2.
        Hop {
            switch: tb.sw1,
            out_port: h2_port,
        },
    ];
    SourceRoute::direct(tb.host1, tb.host2, hops)
}

/// Figure 8's **ITB** path: five crossings with one in-transit buffer at the
/// host on `sw0`.
pub fn fig8_itb_route(tb: &Fig6Testbed) -> SourceRoute {
    let t = &tb.topo;
    let (_, itb_port) = t.host_attachment(tb.itb_host);
    let (_, h2_port) = t.host_attachment(tb.host2);
    SourceRoute {
        src: tb.host1,
        dst: tb.host2,
        segments: vec![
            Segment {
                from: tb.host1,
                to: tb.itb_host,
                hops: vec![
                    // h1 → sw0 → A → sw1.
                    Hop {
                        switch: tb.sw0,
                        out_port: t.out_port(tb.sw0, tb.cable_a),
                    },
                    // sw1 → A' → sw0.
                    Hop {
                        switch: tb.sw1,
                        out_port: t.out_port(tb.sw1, tb.cable_a),
                    },
                    // sw0 → in-transit host.
                    Hop {
                        switch: tb.sw0,
                        out_port: itb_port,
                    },
                ],
            },
            Segment {
                from: tb.itb_host,
                to: tb.host2,
                hops: vec![
                    // itb host → sw0 → B → sw1.
                    Hop {
                        switch: tb.sw0,
                        out_port: t.out_port(tb.sw0, tb.cable_b),
                    },
                    // sw1 → host2.
                    Hop {
                        switch: tb.sw1,
                        out_port: h2_port,
                    },
                ],
            },
        ],
    }
}

/// Return route for Figure 8 ping-pongs: host2 back to host1 the plain way
/// (both configurations use the same return path, so it cancels in the
/// half-round-trip difference).
pub fn fig8_return_route(tb: &Fig6Testbed) -> SourceRoute {
    fig7_return_route(tb)
}

/// The multiset of (input kind, output kind) port pairs a route traverses —
/// the quantity the paper equalized between the two Figure 8 paths.
pub fn port_kind_profile(topo: &Topology, route: &SourceRoute) -> Vec<(PortKind, PortKind)> {
    let mut pairs = Vec::new();
    for seg in &route.segments {
        // Input to the first hop is the from-host's link.
        let mut in_port_kind = {
            let (sw, port) = topo.host_attachment(seg.from);
            debug_assert_eq!(sw, seg.hops[0].switch);
            topo.switch_port_kind(sw, port)
        };
        for hop in &seg.hops {
            let out_kind = topo.switch_port_kind(hop.switch, hop.out_port);
            pairs.push((in_port_kind, out_kind));
            // The next hop's input port is the far end of this link.
            if let Some(link) = topo.link_at(hop.switch, hop.out_port) {
                let l = topo.link(link);
                let far =
                    if l.a.node == itb_topo::Node::Switch(hop.switch) && l.a.port == hop.out_port {
                        l.b
                    } else {
                        l.a
                    };
                if let Some(far_sw) = far.node.as_switch() {
                    in_port_kind = topo.switch_port_kind(far_sw, far.port);
                }
            }
        }
    }
    let mut sorted = pairs;
    sorted.sort_by_key(|&(a, b)| (a == PortKind::Lan, b == PortKind::Lan));
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_topo::builders::fig6_testbed;

    #[test]
    fn fig7_routes_are_wired() {
        let tb = fig6_testbed();
        let f = fig7_route(&tb);
        let r = fig7_return_route(&tb);
        assert!(f.is_well_formed(&tb.topo));
        assert!(r.is_well_formed(&tb.topo));
        assert_eq!(f.total_crossings(), 2);
        assert_eq!(r.total_crossings(), 2);
        assert_eq!(f.itb_count(), 0);
    }

    #[test]
    fn fig8_paths_cross_five_switches() {
        let tb = fig6_testbed();
        let ud = fig8_ud_route(&tb);
        let itb = fig8_itb_route(&tb);
        assert!(ud.is_well_formed(&tb.topo), "{ud:?}");
        assert!(itb.is_well_formed(&tb.topo), "{itb:?}");
        assert_eq!(
            ud.total_crossings(),
            5,
            "paper: both paths cross 5 switches"
        );
        assert_eq!(itb.total_crossings(), 5);
        assert_eq!(ud.itb_count(), 0);
        assert_eq!(itb.itb_count(), 1);
        assert_eq!(itb.itb_hosts().collect::<Vec<_>>(), vec![tb.itb_host]);
    }

    #[test]
    fn fig8_paths_have_matching_port_kind_profiles() {
        let tb = fig6_testbed();
        let ud = port_kind_profile(&tb.topo, &fig8_ud_route(&tb));
        let itb = port_kind_profile(&tb.topo, &fig8_itb_route(&tb));
        assert_eq!(
            ud, itb,
            "paper: both paths must cross the same kinds of ports"
        );
    }

    #[test]
    fn fig8_ud_uses_distinct_channels() {
        // The UD worm must never hold the same directed channel twice or it
        // would block on itself.
        let tb = fig6_testbed();
        let r = fig8_ud_route(&tb);
        let mut seen = itb_sim::FxHashSet::default();
        for seg in &r.segments {
            for hop in &seg.hops {
                let link = tb.topo.link_at(hop.switch, hop.out_port).unwrap();
                let l = tb.topo.link(link);
                let a_to_b =
                    l.a.node == itb_topo::Node::Switch(hop.switch) && l.a.port == hop.out_port;
                assert!(
                    seen.insert((link, a_to_b)),
                    "channel reused: link {link:?} dir {a_to_b}"
                );
            }
        }
    }

    #[test]
    fn fig8_headers_encode() {
        let tb = fig6_testbed();
        let ud_h = crate::wire::Header::encode(&fig8_ud_route(&tb));
        let itb_h = crate::wire::Header::encode(&fig8_itb_route(&tb));
        // UD: 5 route bytes + 2 type bytes.
        assert_eq!(ud_h.len(), 7);
        // ITB: 3 + (2 tag + 1 len) + 2 + 2 = 10.
        assert_eq!(itb_h.len(), 10);
    }
}

//! # itb-routing — source routes and the In-Transit Buffer planner
//!
//! Myrinet builds the entire path into the packet header at the source (one
//! route byte per switch naming the output port). This crate computes those
//! routes three ways:
//!
//! * [`updown::shortest_updown`] — the stock up\*/down\* route: shortest path
//!   that never traverses an *up* link after a *down* link;
//! * [`updown::shortest_any`] — the true minimal path, legality ignored
//!   (the yardstick the paper measures up\*/down\* against);
//! * [`planner::ItbPlanner`] — the paper's contribution: a minimal path
//!   split into up\*/down\*-legal segments by inserting **in-transit hosts**
//!   at every forbidden down→up transition.
//!
//! Supporting machinery:
//!
//! * [`path`] — path and multi-segment route types;
//! * [`wire`] — the packet header encoding of the paper's Figure 3 (route
//!   bytes, ITB tag + remaining-length, packet type, CRC-8);
//! * [`table`] — per-host route tables as installed by the GM mapper;
//! * [`deadlock`] — channel-dependency-graph acyclicity checker (the formal
//!   argument that ITB segmentation preserves deadlock freedom);
//! * [`metrics`] — path-length / traffic-balance statistics behind the
//!   paper's motivation section;
//! * [`figures`] — the two hand-built 5-crossing testbed routes measured in
//!   Figures 7 and 8.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod deadlock;
pub mod figures;
pub mod metrics;
pub mod path;
pub mod planner;
pub mod table;
pub mod updown;
pub mod wire;

pub use path::{Hop, Segment, SourceRoute};
pub use planner::{ItbPlanner, PlannerError};
pub use table::{RouteTable, RoutingPolicy};

//! GM packet metadata, packed into the simulator's 64-bit payload tag.
//!
//! Real GM carries its protocol header inside the packet payload; our
//! network model keeps payloads virtual, so the protocol fields ride in the
//! integrity tag instead (their byte cost is folded into the GM packet
//! constants).

use itb_sim::narrow;

/// Packet kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Application data segment.
    Data,
    /// Cumulative acknowledgement.
    Ack,
}

/// Decoded GM packet metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// DATA or ACK.
    pub kind: Kind,
    /// Last segment of its message (DATA only).
    pub last_in_msg: bool,
    /// Message id (DATA only; 29 bits).
    pub msg_id: u32,
    /// Sequence number within the connection (DATA), or the cumulative
    /// acknowledged sequence (ACK).
    pub seq: u32,
}

const KIND_SHIFT: u32 = 62;
const LAST_SHIFT: u32 = 61;
const MSG_SHIFT: u32 = 32;
const MSG_MASK: u64 = (1 << 29) - 1;

impl PacketMeta {
    /// A data segment.
    pub fn data(msg_id: u32, seq: u32, last_in_msg: bool) -> Self {
        PacketMeta {
            kind: Kind::Data,
            last_in_msg,
            msg_id,
            seq,
        }
    }

    /// A cumulative ACK up to and including `seq`.
    pub fn ack(seq: u32) -> Self {
        PacketMeta {
            kind: Kind::Ack,
            last_in_msg: false,
            msg_id: 0,
            seq,
        }
    }

    /// Pack into a tag.
    pub fn encode(self) -> u64 {
        let kind = match self.kind {
            Kind::Data => 0u64,
            Kind::Ack => 1u64,
        };
        debug_assert!(u64::from(self.msg_id) <= MSG_MASK, "msg_id overflow");
        (kind << KIND_SHIFT)
            | (u64::from(self.last_in_msg) << LAST_SHIFT)
            | ((u64::from(self.msg_id) & MSG_MASK) << MSG_SHIFT)
            | u64::from(self.seq)
    }

    /// Unpack from a tag.
    pub fn decode(tag: u64) -> Self {
        let kind = if (tag >> KIND_SHIFT) & 0b11 == 1 {
            Kind::Ack
        } else {
            Kind::Data
        };
        PacketMeta {
            kind,
            last_in_msg: (tag >> LAST_SHIFT) & 1 == 1,
            msg_id: narrow((tag >> MSG_SHIFT) & MSG_MASK),
            seq: narrow(tag & u64::from(u32::MAX)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        for (msg, seq, last) in [
            (0u32, 0u32, false),
            (1, 7, true),
            ((1 << 29) - 1, u32::MAX, true),
        ] {
            let m = PacketMeta::data(msg, seq, last);
            assert_eq!(PacketMeta::decode(m.encode()), m);
        }
    }

    #[test]
    fn ack_roundtrip() {
        let m = PacketMeta::ack(12345);
        let d = PacketMeta::decode(m.encode());
        assert_eq!(d.kind, Kind::Ack);
        assert_eq!(d.seq, 12345);
    }

    #[test]
    fn kinds_are_distinguishable() {
        let d = PacketMeta::data(5, 5, false).encode();
        let a = PacketMeta::ack(5).encode();
        assert_ne!(d, a);
        assert_eq!(PacketMeta::decode(d).kind, Kind::Data);
        assert_eq!(PacketMeta::decode(a).kind, Kind::Ack);
    }
}

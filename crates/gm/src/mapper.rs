//! The GM network mapper.
//!
//! GM includes "a network mapping program": at boot, one host explores the
//! fabric with probe packets, reconstructs the topology and computes the
//! route tables every NIC gets (§3). The paper modifies exactly this
//! component — "the Myrinet mapper has to be modified to calculate paths
//! with the proposed mechanism" (§4) — which in this reproduction is the
//! choice between [`RoutingPolicy::UpDown`] and [`RoutingPolicy::Itb`] when
//! the reconstructed map is handed to the route computation.
//!
//! Discovery works breadth-first over source-route prefixes through the
//! [`ProbeTransport`] primitive. A probe routed to a host is answered with
//! the host's identity (GM mapping replies travel back over the reversed
//! route); a probe ending inside a switch yields that switch's canonical
//! identity. *Modelling note:* the real scout protocol derives canonical
//! switch identities through a marking subprotocol; we expose the identity
//! directly in [`ProbeOutcome::Switch`] — the discovery structure (what can
//! be learned from which probe) is preserved while the identification
//! subproblem, which the paper does not touch, is elided. Reconstruction
//! marks every port SAN: port kinds affect only latency calibration, never
//! route validity, and the mapper has no way to sense cable flavour.

use itb_routing::{RouteTable, RoutingPolicy};
use itb_sim::{narrow, SimDuration};
use itb_topo::{HostId, Node, PortIx, PortKind, Topology, UpDown};
use std::collections::{BTreeMap, VecDeque};

/// What a probe along a route prefix finds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The probe reached a host NIC, which answered with its identity.
    Host {
        /// The responding host.
        id: HostId,
    },
    /// The probe ended inside a switch (no more route bytes).
    Switch {
        /// Canonical switch identity (see module docs).
        serial: u64,
    },
    /// The probe died: unwired port or out-of-range port number.
    Dead,
}

/// The mapper's only window onto the fabric.
pub trait ProbeTransport {
    /// Send a probe from the mapping host along `route` (output port taken
    /// at each successive switch) and report where it ended up.
    fn probe(&mut self, route: &[PortIx]) -> ProbeOutcome;

    /// Upper bound on ports per switch the mapper should scan.
    fn max_ports(&self) -> u8;
}

/// A [`ProbeTransport`] backed by a real [`Topology`] — models the physical
/// fabric answering mapping packets. Counts probes for cost reporting.
pub struct FabricProbe<'t> {
    topo: &'t Topology,
    mapper_host: HostId,
    probes_sent: u64,
}

impl<'t> FabricProbe<'t> {
    /// Probe interface rooted at `mapper_host`.
    pub fn new(topo: &'t Topology, mapper_host: HostId) -> Self {
        FabricProbe {
            topo,
            mapper_host,
            probes_sent: 0,
        }
    }

    /// Number of probe packets sent so far.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }
}

impl ProbeTransport for FabricProbe<'_> {
    fn probe(&mut self, route: &[PortIx]) -> ProbeOutcome {
        self.probes_sent += 1;
        let (mut sw, _) = self.topo.host_attachment(self.mapper_host);
        for (i, &port) in route.iter().enumerate() {
            if port.idx() >= self.topo.switch_port_count(sw) {
                return ProbeOutcome::Dead;
            }
            let Some(link) = self.topo.link_at(sw, port) else {
                return ProbeOutcome::Dead;
            };
            let l = self.topo.link(link);
            // The far end is the endpoint that is not (sw, port).
            let far = if l.a.node == Node::Switch(sw) && l.a.port == port {
                l.b
            } else {
                l.a
            };
            match far.node {
                Node::Host(h) => {
                    return if i == route.len() - 1 {
                        ProbeOutcome::Host { id: h }
                    } else {
                        // Route bytes left over at a host: the NIC drops it.
                        ProbeOutcome::Dead
                    };
                }
                Node::Switch(s) => {
                    sw = s;
                }
            }
        }
        ProbeOutcome::Switch {
            serial: u64::from(sw.0),
        }
    }

    fn max_ports(&self) -> u8 {
        self.topo
            .switch_ids()
            .map(|s| narrow::<u8, _>(self.topo.switch_port_count(s)))
            .max()
            .unwrap_or(0)
    }
}

/// What one discovered switch port leads to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortTarget {
    /// Nothing cabled (or port does not exist).
    Unwired,
    /// A host NIC.
    Host(HostId),
    /// Another (or the same) switch, by serial.
    Switch(u64),
}

/// A discovered switch.
#[derive(Debug, Clone)]
pub struct MapSwitch {
    /// Canonical identity.
    pub serial: u64,
    /// A route prefix from the mapping host that ends inside this switch.
    pub route: Vec<PortIx>,
    /// Per-port discovery result.
    pub ports: Vec<PortTarget>,
}

/// The reconstructed network map.
#[derive(Debug, Clone)]
pub struct NetworkMap {
    /// Discovered switches in discovery (BFS) order, keyed by serial.
    pub switches: BTreeMap<u64, MapSwitch>,
    /// Hosts and their attachment: (switch serial, port).
    pub hosts: BTreeMap<HostId, (u64, PortIx)>,
    /// Probe packets spent on discovery.
    pub probes_used: u64,
}

/// Run breadth-first discovery from the mapping host.
pub fn map_network<T: ProbeTransport>(transport: &mut T) -> NetworkMap {
    let max_ports = transport.max_ports();
    let mut switches: BTreeMap<u64, MapSwitch> = BTreeMap::new();
    let mut hosts: BTreeMap<HostId, (u64, PortIx)> = BTreeMap::new();

    // The empty route ends inside the switch the mapper hangs off.
    let ProbeOutcome::Switch { serial: root } = transport.probe(&[]) else {
        // detlint::allow(S001, the mapper host is always attached to a switch port by construction)
        panic!("mapping host must be attached to a switch");
    };
    let mut queue = VecDeque::new();
    switches.insert(
        root,
        MapSwitch {
            serial: root,
            route: vec![],
            ports: vec![PortTarget::Unwired; usize::from(max_ports)],
        },
    );
    queue.push_back(root);

    while let Some(serial) = queue.pop_front() {
        let prefix = switches[&serial].route.clone();
        for p in 0..max_ports {
            let mut route = prefix.clone();
            route.push(PortIx(p));
            let outcome = transport.probe(&route);
            let target = match outcome {
                ProbeOutcome::Dead => PortTarget::Unwired,
                ProbeOutcome::Host { id } => {
                    hosts.entry(id).or_insert((serial, PortIx(p)));
                    PortTarget::Host(id)
                }
                ProbeOutcome::Switch { serial: far } => {
                    if let std::collections::btree_map::Entry::Vacant(e) = switches.entry(far) {
                        e.insert(MapSwitch {
                            serial: far,
                            route: route.clone(),
                            ports: vec![PortTarget::Unwired; usize::from(max_ports)],
                        });
                        queue.push_back(far);
                    }
                    PortTarget::Switch(far)
                }
            };
            switches
                .get_mut(&serial)
                // detlint::allow(S001, the serial was recorded when the switch was first seen)
                .expect("serial recorded at discovery")
                .ports[usize::from(p)] = target;
        }
    }

    // probes_used is only known to transports that count; FabricProbe does.
    NetworkMap {
        switches,
        hosts,
        probes_used: 0,
    }
}

/// Convenience: map via [`FabricProbe`] and record the probe count.
///
/// ```
/// use itb_gm::mapper::map_fabric;
/// use itb_topo::{builders::chain, HostId};
///
/// let fabric = chain(3, 1);
/// let map = map_fabric(&fabric, HostId(0));
/// assert_eq!(map.switches.len(), 3);
/// assert_eq!(map.hosts.len(), 3);
/// let reconstructed = map.to_topology();
/// assert_eq!(reconstructed.num_links(), fabric.num_links());
/// ```
pub fn map_fabric(topo: &Topology, mapper_host: HostId) -> NetworkMap {
    let mut t = FabricProbe::new(topo, mapper_host);
    let mut m = map_network(&mut t);
    m.probes_used = t.probes_sent();
    m
}

impl NetworkMap {
    /// Rebuild a [`Topology`] from the map.
    ///
    /// Switch indices follow serial order; host indices keep their real
    /// ids (hosts answer probes with their identity, so indices line up
    /// with the physical cluster — required for installing route tables).
    /// All ports are marked SAN (see module docs); cable propagation gets a
    /// uniform nominal value. For parallel cables between the same switch
    /// pair the port pairing is arbitrary — routing-equivalent, since a
    /// switch routes purely on the output-port byte.
    pub fn to_topology(&self) -> Topology {
        let mut t = Topology::new();
        let serial_ix: BTreeMap<u64, itb_topo::SwitchId> = self
            .switches
            .keys()
            .map(|&s| (s, itb_topo::SwitchId(0)))
            .collect();
        let mut serial_ix = serial_ix;
        for (&serial, sw) in &self.switches {
            let id = t.add_switch(vec![PortKind::San; sw.ports.len()]);
            serial_ix.insert(serial, id);
        }
        // Hosts must be created in id order so indices match reality.
        let max_host = self.hosts.keys().map(|h| h.0).max().unwrap_or(0);
        for h in 0..=max_host {
            let id = t.add_host(PortKind::San);
            debug_assert_eq!(id, HostId(h));
        }
        let prop = SimDuration::from_ns(15);
        // Host cables.
        for (&h, &(serial, port)) in &self.hosts {
            t.connect_host(h, serial_ix[&serial], port.0, prop)
                // detlint::allow(S001, discovery claims each host port exactly once)
                .expect("discovered host port is free");
        }
        // Switch cables: for each unordered pair, collect the ports on both
        // sides and pair them in ascending order.
        let mut done: itb_sim::FxHashSet<(u64, u64)> = itb_sim::FxHashSet::default();
        for (&sa, sw) in &self.switches {
            for (p, target) in sw.ports.iter().enumerate() {
                let PortTarget::Switch(sb) = *target else {
                    continue;
                };
                let key = (sa.min(sb), sa.max(sb));
                if !done.insert(key) {
                    continue;
                }
                if sa == sb {
                    // Self-loop cable: pair this switch's self-leading
                    // ports two by two.
                    let selfs: Vec<u8> = sw
                        .ports
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| **t == PortTarget::Switch(sa))
                        .map(|(i, _)| narrow(i))
                        .collect();
                    for pair in selfs.chunks(2) {
                        if let [x, y] = *pair {
                            t.connect_switches(serial_ix[&sa], x, serial_ix[&sa], y, prop)
                                // detlint::allow(S001, self-loop ports were free when probed)
                                .expect("self-loop ports free");
                        }
                    }
                    continue;
                }
                let a_ports: Vec<u8> = sw
                    .ports
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| **t == PortTarget::Switch(sb))
                    .map(|(i, _)| narrow(i))
                    .collect();
                let b_ports: Vec<u8> = self.switches[&sb]
                    .ports
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| **t == PortTarget::Switch(sa))
                    .map(|(i, _)| narrow(i))
                    .collect();
                debug_assert_eq!(a_ports.len(), b_ports.len(), "asymmetric discovery");
                for (&pa, &pb) in a_ports.iter().zip(&b_ports) {
                    t.connect_switches(serial_ix[&sa], pa, serial_ix[&sb], pb, prop)
                        // detlint::allow(S001, discovered ports are claimed exactly once)
                        .expect("discovered ports free");
                }
                let _ = p;
            }
        }
        // detlint::allow(S001, the mapper reconstructs a connected topology from a connected fabric)
        t.validate().expect("reconstructed map is connected");
        t
    }

    /// The paper's modified mapper in one call: discover, reconstruct, and
    /// compute the all-pairs route table under `policy`.
    pub fn compute_routes(&self, policy: RoutingPolicy) -> RouteTable {
        let topo = self.to_topology();
        let ud = UpDown::compute_default(&topo);
        // detlint::allow(S001, a validated reconstruction keeps the map connected)
        RouteTable::compute(&topo, &ud, policy).expect("map is connected")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_topo::builders::{chain, fig6_testbed, random_irregular, ring, IrregularSpec};

    #[test]
    fn maps_the_fig6_testbed() {
        let tb = fig6_testbed();
        let map = map_fabric(&tb.topo, tb.host1);
        assert_eq!(map.switches.len(), 2);
        assert_eq!(map.hosts.len(), 3);
        assert!(map.probes_used > 0);
        // The loop cable shows up as self-leading ports on sw1's serial.
        let sw1_serial = u64::from(tb.sw1.0);
        let self_ports = map.switches[&sw1_serial]
            .ports
            .iter()
            .filter(|t| **t == PortTarget::Switch(sw1_serial))
            .count();
        assert_eq!(self_ports, 2, "both ends of the loop cable");
    }

    #[test]
    fn reconstruction_preserves_counts() {
        let tb = fig6_testbed();
        let map = map_fabric(&tb.topo, tb.host1);
        let rec = map.to_topology();
        assert_eq!(rec.num_switches(), tb.topo.num_switches());
        assert_eq!(rec.num_hosts(), tb.topo.num_hosts());
        assert_eq!(rec.num_links(), tb.topo.num_links());
        rec.validate().unwrap();
    }

    #[test]
    fn reconstruction_matches_random_networks() {
        for seed in 0..6 {
            let topo = random_irregular(&IrregularSpec::evaluation_default(10, seed));
            let map = map_fabric(&topo, HostId(0));
            let rec = map.to_topology();
            assert_eq!(rec.num_switches(), topo.num_switches(), "seed {seed}");
            assert_eq!(rec.num_hosts(), topo.num_hosts());
            assert_eq!(rec.num_links(), topo.num_links());
            // Neighbor multiset per switch serial matches.
            for s in topo.switch_ids() {
                let mut real: Vec<u16> = topo.switch_neighbors(s).map(|(_, _, n)| n.0).collect();
                real.sort_unstable();
                let msw = &map.switches[&u64::from(s.0)];
                let mut seen: Vec<u16> = msw
                    .ports
                    .iter()
                    .filter_map(|t| match t {
                        PortTarget::Switch(x) => Some(*x as u16),
                        _ => None,
                    })
                    .collect();
                seen.sort_unstable();
                assert_eq!(real, seen, "seed {seed} switch {s}");
            }
        }
    }

    #[test]
    fn discovered_routes_work_on_the_real_network() {
        // The acid test: compute routes from the *reconstructed* map and
        // check they are physically wired on the *real* topology.
        let topo = random_irregular(&IrregularSpec::evaluation_default(8, 4));
        let map = map_fabric(&topo, HostId(0));
        for policy in [RoutingPolicy::UpDown, RoutingPolicy::Itb] {
            let table = map.compute_routes(policy);
            assert_eq!(table.num_hosts(), topo.num_hosts());
            for r in table.iter() {
                assert!(
                    r.is_well_formed(&topo),
                    "{policy:?} route {:?} not wired on the real fabric",
                    (r.src, r.dst)
                );
            }
        }
    }

    #[test]
    fn mapping_from_any_host_gives_same_counts() {
        let topo = chain(4, 2);
        let a = map_fabric(&topo, HostId(0));
        let b = map_fabric(&topo, HostId(7));
        assert_eq!(a.switches.len(), b.switches.len());
        assert_eq!(a.hosts.len(), b.hosts.len());
    }

    #[test]
    fn probe_costs_scale_with_fabric() {
        let small = map_fabric(&ring(4, 1), HostId(0));
        let large = map_fabric(&ring(10, 1), HostId(0));
        assert!(large.probes_used > small.probes_used);
    }

    #[test]
    fn probe_semantics() {
        let tb = fig6_testbed();
        let mut t = FabricProbe::new(&tb.topo, tb.host1);
        // Empty route: inside sw0.
        assert_eq!(
            t.probe(&[]),
            ProbeOutcome::Switch {
                serial: u64::from(tb.sw0.0)
            }
        );
        // Out the host1 port back to... host1's own port leads to host1.
        let (_, h1_port) = tb.topo.host_attachment(tb.host1);
        assert_eq!(t.probe(&[h1_port]), ProbeOutcome::Host { id: tb.host1 });
        // Unwired port on sw0.
        assert_eq!(t.probe(&[PortIx(6)]), ProbeOutcome::Dead);
        // Out of range.
        assert_eq!(t.probe(&[PortIx(31)]), ProbeOutcome::Dead);
        // Route bytes left at a host: dead.
        assert_eq!(t.probe(&[h1_port, PortIx(0)]), ProbeOutcome::Dead);
    }
}

//! Per-host GM state: connections, segmentation, reliability.

use crate::config::GmConfig;
use crate::meta::{Kind, PacketMeta};
use itb_routing::wire::Header;
use itb_routing::RouteTable;
use itb_sim::{SimDuration, SimTime};
use itb_topo::HostId;
use std::collections::VecDeque;
use std::sync::Arc;

/// Serial-number "less than" over the full `u32` ring (RFC 1982 style):
/// `a` precedes `b` when the forward distance from `a` to `b` is under half
/// the sequence space. Plain `<` breaks at the `u32::MAX -> 0` wrap; the
/// window bound (`send_window` packets) keeps live sequences well inside
/// half the ring, so this ordering is unambiguous.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < (1 << 31)
}

/// Serial-number "less than or equal" (see [`seq_lt`]).
#[inline]
pub fn seq_leq(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) < (1 << 31)
}

/// The retransmission timeout after `exp` consecutive fruitless rounds:
/// `base * 2^exp`, clamped to `cap` (and never below `base`).
#[inline]
pub fn effective_timeout(base: SimDuration, cap: SimDuration, exp: u32) -> SimDuration {
    let base_ps = base.as_ps();
    let scaled = base_ps.saturating_mul(1u64 << exp.min(20));
    SimDuration::from_ps(scaled.min(cap.as_ps().max(base_ps)))
}

/// A packet the sender must be able to retransmit.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPacket {
    /// Destination host.
    pub dst: HostId,
    /// Sequence number on the connection.
    pub seq: u32,
    /// Payload bytes.
    pub payload_len: u32,
    /// Encoded metadata tag.
    pub tag: u64,
    /// Time of the most recent (re)transmission.
    pub sent_at: SimTime,
}

/// A segmented packet waiting for the send window to open.
#[derive(Debug, Clone)]
pub struct QueuedPacket {
    /// Destination host.
    pub dst: HostId,
    /// Payload bytes.
    pub payload_len: u32,
    /// Encoded metadata tag.
    pub tag: u64,
}

/// Sender half of a connection to one peer.
#[derive(Debug, Default)]
pub struct ConnTx {
    /// Next sequence number to assign (wraps).
    pub next_seq: u32,
    /// Segmented packets not yet released to the NIC (window closed).
    pub send_queue: VecDeque<QueuedPacket>,
    /// Unacknowledged packets in sequence order, oldest first (only packets
    /// actually handed to the NIC — GM's send tokens bound this to the
    /// window). A deque rather than a map keyed by sequence: sequence
    /// numbers wrap, so numeric key order is not transmission order.
    pub unacked: VecDeque<StoredPacket>,
    /// Whether a retransmission check is scheduled.
    pub timer_armed: bool,
    /// Consecutive retransmission rounds without ACK progress (drives the
    /// exponential backoff; reset by any cumulative ACK that frees packets).
    pub backoff_exp: u32,
    /// The retry budget ran out: the connection is dead, pending traffic
    /// was abandoned, and no further sends are accepted.
    pub failed: bool,
    /// Retransmissions performed (diagnostic).
    pub retransmissions: u64,
}

/// Receiver half of a connection from one peer.
#[derive(Debug, Default)]
pub struct ConnRx {
    /// Next expected sequence number (wraps).
    pub expected: u32,
    /// Bytes accumulated for the in-progress message.
    pub partial_bytes: u32,
    /// Duplicates discarded (diagnostic).
    pub duplicates: u64,
}

/// What the receiver does with an incoming DATA packet.
#[derive(Debug, PartialEq, Eq)]
pub enum RxAction {
    /// In-order segment, message still incomplete. `ack` is the cumulative
    /// sequence to acknowledge.
    Accepted {
        /// Cumulative ACK value.
        ack: u32,
    },
    /// In-order segment completing a message of `len` bytes.
    Delivered {
        /// Cumulative ACK value.
        ack: u32,
        /// Reassembled message length.
        len: u32,
        /// Message id from the final segment.
        msg_id: u32,
    },
    /// Duplicate (already received): re-ACK so the sender can advance.
    Duplicate {
        /// Cumulative ACK value.
        ack: u32,
    },
    /// Out of order (a gap exists): dropped, go-back-N will resend.
    Dropped,
}

/// Outcome of a retransmission-timer check.
#[derive(Debug, PartialEq)]
pub enum RetransDecision {
    /// Nothing due (no outstanding packets, or the oldest is younger than
    /// the current backed-off timeout).
    Idle,
    /// Go-back-N: resend these packets, in order.
    Resend(Vec<StoredPacket>),
    /// The retry budget is exhausted. The connection is now failed and its
    /// pending traffic (`abandoned` packets, unacked plus queued) dropped.
    Failed {
        /// Packets abandoned when the connection died.
        abandoned: usize,
    },
}

/// GM state of one host.
pub struct Host {
    /// This host's id.
    pub id: HostId,
    /// Configuration (shared cluster-wide).
    // detlint::allow(T003, per-run GM configuration: fixed before the first event and never mutated)
    pub cfg: GmConfig,
    /// The mapper-installed route table.
    // detlint::allow(T003, per-run routing function: fixed at mapper install time; route choices land in digested packet state)
    pub routes: Arc<RouteTable>,
    /// Per-peer sender state (indexed by peer host).
    pub tx: Vec<ConnTx>,
    /// Per-peer receiver state.
    pub rx: Vec<ConnRx>,
}

impl Host {
    /// Fresh host state for a cluster of `n` hosts.
    pub fn new(id: HostId, cfg: GmConfig, routes: Arc<RouteTable>, n: usize) -> Self {
        Host {
            id,
            cfg,
            routes,
            tx: (0..n).map(|_| ConnTx::default()).collect(),
            rx: (0..n).map(|_| ConnRx::default()).collect(),
        }
    }

    /// Encode the wire header for a packet to `dst`.
    pub fn header_for(&self, dst: HostId) -> Header {
        let route = self
            .routes
            .route(self.id, dst)
            // detlint::allow(S001, RouteTable::compute covers every host pair of a connected map)
            .expect("route table covers all pairs");
        Header::encode(route)
    }

    /// Segment a message into packets and queue them on the connection's
    /// send queue. Call [`Host::pump_window`] to release packets to the NIC
    /// as the send window allows. Messages to a failed connection are
    /// silently discarded — the failure was already surfaced.
    pub fn segment_message(&mut self, dst: HostId, len: u32, msg_id: u32) {
        let n = self.cfg.packets_for(len);
        let mtu = self.cfg.mtu;
        let conn = &mut self.tx[dst.idx()];
        if conn.failed {
            return;
        }
        let mut remaining = len;
        for i in 0..n {
            let payload = if n == 1 {
                len
            } else if i == n - 1 {
                remaining
            } else {
                mtu
            };
            remaining -= payload;
            let seq = conn.next_seq;
            conn.next_seq = conn.next_seq.wrapping_add(1);
            let meta = PacketMeta::data(msg_id, seq, i == n - 1);
            conn.send_queue.push_back(QueuedPacket {
                dst,
                payload_len: payload,
                tag: meta.encode(),
            });
        }
    }

    /// Release queued packets to the NIC while the send window has room
    /// (GM's send-token flow control). Released packets are registered as
    /// unacknowledged with `sent_at = now`, so the retransmission timer
    /// measures actual network time, never queueing time. With reliability
    /// off the window is unbounded.
    pub fn pump_window(&mut self, dst: HostId, now: SimTime) -> Vec<QueuedPacket> {
        let window = if self.cfg.reliability {
            self.cfg.send_window as usize
        } else {
            usize::MAX
        };
        let reliability = self.cfg.reliability;
        let conn = &mut self.tx[dst.idx()];
        if conn.failed {
            return Vec::new();
        }
        let mut out = Vec::new();
        while conn.unacked.len() < window {
            let Some(pkt) = conn.send_queue.pop_front() else {
                break;
            };
            if reliability {
                let meta = PacketMeta::decode(pkt.tag);
                conn.unacked.push_back(StoredPacket {
                    dst: pkt.dst,
                    seq: meta.seq,
                    payload_len: pkt.payload_len,
                    tag: pkt.tag,
                    sent_at: now,
                });
            }
            out.push(pkt);
        }
        out
    }

    /// Process an incoming DATA packet from `from`.
    pub fn on_data(&mut self, from: HostId, payload_len: u32, meta: PacketMeta) -> RxAction {
        debug_assert_eq!(meta.kind, Kind::Data);
        let conn = &mut self.rx[from.idx()];
        if seq_lt(meta.seq, conn.expected) {
            conn.duplicates += 1;
            return RxAction::Duplicate {
                ack: conn.expected.wrapping_sub(1),
            };
        }
        if meta.seq != conn.expected {
            return RxAction::Dropped;
        }
        conn.expected = conn.expected.wrapping_add(1);
        conn.partial_bytes += payload_len;
        let ack = meta.seq;
        if meta.last_in_msg {
            let len = conn.partial_bytes;
            conn.partial_bytes = 0;
            RxAction::Delivered {
                ack,
                len,
                msg_id: meta.msg_id,
            }
        } else {
            RxAction::Accepted { ack }
        }
    }

    /// Process a cumulative ACK from `from`: drop all covered packets.
    /// Returns whether the ACK made progress (freed at least one packet);
    /// progress resets the retransmission backoff.
    pub fn on_ack(&mut self, from: HostId, acked_seq: u32) -> bool {
        let conn = &mut self.tx[from.idx()];
        let mut progressed = false;
        while conn
            .unacked
            .front()
            .is_some_and(|p| seq_leq(p.seq, acked_seq))
        {
            conn.unacked.pop_front();
            progressed = true;
        }
        if progressed {
            conn.backoff_exp = 0;
        }
        progressed
    }

    /// Run the retransmission timer for `peer` at `now`.
    ///
    /// If the oldest unacknowledged packet is older than the current
    /// backed-off timeout, either the whole window is due for a go-back-N
    /// resend (bumping the backoff), or — when `max_retries` consecutive
    /// rounds have already gone unanswered — the connection is declared
    /// failed and everything pending is abandoned.
    pub fn check_retransmissions(&mut self, peer: HostId, now: SimTime) -> RetransDecision {
        let cfg = self.cfg;
        let conn = &mut self.tx[peer.idx()];
        if conn.failed {
            return RetransDecision::Idle;
        }
        let timeout = effective_timeout(
            cfg.retrans_timeout,
            cfg.retrans_backoff_cap,
            conn.backoff_exp,
        );
        let oldest_due = conn
            .unacked
            .front()
            .is_some_and(|p| now.saturating_since(p.sent_at) >= timeout);
        if !oldest_due {
            return RetransDecision::Idle;
        }
        if cfg.max_retries > 0 && conn.backoff_exp >= cfg.max_retries {
            let abandoned = conn.unacked.len() + conn.send_queue.len();
            conn.unacked.clear();
            conn.send_queue.clear();
            conn.failed = true;
            return RetransDecision::Failed { abandoned };
        }
        conn.backoff_exp += 1;
        // Go-back-N: resend the whole window in order.
        conn.retransmissions += conn.unacked.len() as u64;
        RetransDecision::Resend(
            conn.unacked
                .iter_mut()
                .map(|p| {
                    p.sent_at = now;
                    p.clone()
                })
                .collect(),
        )
    }

    /// Packets to retransmit, or empty when idle or failed. Thin wrapper
    /// over [`Host::check_retransmissions`] for callers that only care
    /// about the resend list.
    pub fn due_retransmissions(&mut self, peer: HostId, now: SimTime) -> Vec<StoredPacket> {
        match self.check_retransmissions(peer, now) {
            RetransDecision::Resend(v) => v,
            RetransDecision::Idle | RetransDecision::Failed { .. } => Vec::new(),
        }
    }

    /// The current (backed-off) retransmission timeout for `peer` — how far
    /// ahead the next timer check should be scheduled.
    pub fn retrans_delay(&self, peer: HostId) -> SimDuration {
        effective_timeout(
            self.cfg.retrans_timeout,
            self.cfg.retrans_backoff_cap,
            self.tx[peer.idx()].backoff_exp,
        )
    }

    /// Whether any packet to `peer` awaits acknowledgement.
    pub fn has_unacked(&self, peer: HostId) -> bool {
        !self.tx[peer.idx()].unacked.is_empty()
    }

    /// Whether the connection to `peer` has exhausted its retries.
    pub fn conn_failed(&self, peer: HostId) -> bool {
        self.tx[peer.idx()].failed
    }

    /// Fold every behavioral field of this host's GM state — per-peer send
    /// queues, unacked windows, timers, backoff and receive reassembly
    /// cursors — into a model-checker digest. Diagnostic counters
    /// (`retransmissions`, `duplicates`) are excluded: they never influence
    /// a future transition. `sent_at` *is* behavioral (it drives timeout
    /// eligibility) and is included.
    pub fn state_digest(&self, d: &mut itb_sim::Digest) {
        d.u16(self.id.0);
        d.usize(self.tx.len());
        for conn in &self.tx {
            d.u32(conn.next_seq);
            d.usize(conn.send_queue.len());
            for p in &conn.send_queue {
                d.u16(p.dst.0);
                d.u32(p.payload_len);
                d.u64(p.tag);
            }
            d.usize(conn.unacked.len());
            for p in &conn.unacked {
                d.u16(p.dst.0);
                d.u32(p.seq);
                d.u32(p.payload_len);
                d.u64(p.tag);
                d.u64(p.sent_at.as_ps());
            }
            d.bool(conn.timer_armed);
            d.u32(conn.backoff_exp);
            d.bool(conn.failed);
        }
        for conn in &self.rx {
            d.u32(conn.expected);
            d.u32(conn.partial_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_routing::RoutingPolicy;
    use itb_topo::builders::chain;
    use itb_topo::UpDown;

    fn mk_host(id: u16) -> Host {
        mk_host_cfg(id, GmConfig::default())
    }

    fn mk_host_cfg(id: u16, cfg: GmConfig) -> Host {
        let topo = chain(2, 1);
        let ud = UpDown::compute_default(&topo);
        let routes = Arc::new(RouteTable::compute(&topo, &ud, RoutingPolicy::UpDown).unwrap());
        Host::new(HostId(id), cfg, routes, 2)
    }

    /// Segment and immediately pump everything the window allows.
    fn seg_pump(h: &mut Host, dst: HostId, len: u32, msg: u32) -> Vec<QueuedPacket> {
        h.segment_message(dst, len, msg);
        h.pump_window(dst, SimTime::ZERO)
    }

    #[test]
    fn serial_comparisons_wrap() {
        assert!(seq_lt(0, 1));
        assert!(!seq_lt(1, 0));
        assert!(!seq_lt(5, 5));
        assert!(seq_leq(5, 5));
        // Across the wrap: MAX precedes 0 precedes 1.
        assert!(seq_lt(u32::MAX, 0));
        assert!(seq_lt(u32::MAX, 1));
        assert!(!seq_lt(0, u32::MAX));
        assert!(seq_leq(u32::MAX, 3));
    }

    #[test]
    fn single_packet_message() {
        let mut h = mk_host(0);
        let pkts = seg_pump(&mut h, HostId(1), 100, 1);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload_len, 100);
        assert!(PacketMeta::decode(pkts[0].tag).last_in_msg);
        assert!(h.has_unacked(HostId(1)));
    }

    #[test]
    fn multi_packet_segmentation() {
        let mut h = mk_host(0);
        let pkts = seg_pump(&mut h, HostId(1), 4096 * 2 + 100, 2);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].payload_len, 4096);
        assert_eq!(pkts[1].payload_len, 4096);
        assert_eq!(pkts[2].payload_len, 100);
        let metas: Vec<_> = pkts.iter().map(|p| PacketMeta::decode(p.tag)).collect();
        assert!(!metas[0].last_in_msg);
        assert!(metas[2].last_in_msg);
        // Sequence numbers are consecutive.
        assert_eq!(metas[1].seq, metas[0].seq + 1);
        assert_eq!(metas[2].seq, metas[1].seq + 1);
    }

    #[test]
    fn window_limits_outstanding_packets() {
        let mut h = mk_host(0);
        // 12 packets queued; default window is 8.
        h.segment_message(HostId(1), 4096 * 12, 9);
        let first = h.pump_window(HostId(1), SimTime::ZERO);
        assert_eq!(first.len(), 8);
        assert_eq!(h.tx[1].unacked.len(), 8);
        assert_eq!(h.tx[1].send_queue.len(), 4);
        // Nothing more until acks arrive.
        assert!(h.pump_window(HostId(1), SimTime::ZERO).is_empty());
        // Ack 3 packets -> 3 more released.
        h.on_ack(HostId(1), 2);
        let more = h.pump_window(HostId(1), SimTime::from_us(50));
        assert_eq!(more.len(), 3);
        assert_eq!(h.tx[1].unacked.len(), 8);
        assert_eq!(h.tx[1].send_queue.len(), 1);
    }

    #[test]
    fn sent_at_stamped_at_release_not_segmentation() {
        let mut h = mk_host(0);
        h.segment_message(HostId(1), 4096 * 12, 1);
        h.pump_window(HostId(1), SimTime::ZERO);
        h.on_ack(HostId(1), 7); // clear the first window
        let released_at = SimTime::from_us(900);
        h.pump_window(HostId(1), released_at);
        // Packets released late are NOT due at the 1 ms mark measured from
        // segmentation time.
        assert!(h
            .due_retransmissions(HostId(1), SimTime::from_ms(1))
            .is_empty());
        assert_eq!(
            h.due_retransmissions(HostId(1), released_at + GmConfig::default().retrans_timeout)
                .len(),
            4
        );
    }

    #[test]
    fn in_order_reassembly_delivers() {
        let mut sender = mk_host(0);
        let mut receiver = mk_host(1);
        let pkts = seg_pump(&mut sender, HostId(1), 5000, 7);
        let m0 = PacketMeta::decode(pkts[0].tag);
        let m1 = PacketMeta::decode(pkts[1].tag);
        let a0 = receiver.on_data(HostId(0), pkts[0].payload_len, m0);
        assert_eq!(a0, RxAction::Accepted { ack: 0 });
        let a1 = receiver.on_data(HostId(0), pkts[1].payload_len, m1);
        assert_eq!(
            a1,
            RxAction::Delivered {
                ack: 1,
                len: 5000,
                msg_id: 7
            }
        );
    }

    #[test]
    fn out_of_order_dropped_duplicate_reacked() {
        let mut receiver = mk_host(1);
        let m0 = PacketMeta::data(1, 0, true);
        let m1 = PacketMeta::data(2, 1, true);
        let m2 = PacketMeta::data(3, 2, true);
        // Gap: seq 1 before seq 0.
        assert_eq!(receiver.on_data(HostId(0), 10, m1), RxAction::Dropped);
        assert!(matches!(
            receiver.on_data(HostId(0), 10, m0),
            RxAction::Delivered { ack: 0, .. }
        ));
        // Duplicate of seq 0.
        assert_eq!(
            receiver.on_data(HostId(0), 10, m0),
            RxAction::Duplicate { ack: 0 }
        );
        // Now in-order continues.
        assert!(matches!(
            receiver.on_data(HostId(0), 10, m1),
            RxAction::Delivered { ack: 1, .. }
        ));
        assert!(matches!(
            receiver.on_data(HostId(0), 10, m2),
            RxAction::Delivered { ack: 2, .. }
        ));
    }

    #[test]
    fn cumulative_ack_clears_window() {
        let mut h = mk_host(0);
        seg_pump(&mut h, HostId(1), 4096 * 3, 1); // seqs 0,1,2
        assert_eq!(h.tx[1].unacked.len(), 3);
        assert!(h.on_ack(HostId(1), 1));
        assert_eq!(h.tx[1].unacked.len(), 1);
        assert!(h.on_ack(HostId(1), 2));
        assert!(!h.has_unacked(HostId(1)));
        // Stale re-ACK makes no progress.
        assert!(!h.on_ack(HostId(1), 2));
    }

    #[test]
    fn ack_at_u32_max_does_not_overflow() {
        let mut h = mk_host(0);
        // Start the connection just below the wrap point.
        h.tx[1].next_seq = u32::MAX - 1;
        h.segment_message(HostId(1), 4096 * 4, 1); // seqs MAX-1, MAX, 0, 1
        h.pump_window(HostId(1), SimTime::ZERO);
        assert_eq!(h.tx[1].unacked.len(), 4);
        // Cumulative ACK of u32::MAX must clear exactly the first two
        // packets (the old `split_off(&(acked + 1))` overflowed here).
        assert!(h.on_ack(HostId(1), u32::MAX));
        assert_eq!(h.tx[1].unacked.len(), 2);
        assert_eq!(h.tx[1].unacked.front().unwrap().seq, 0);
        assert!(h.on_ack(HostId(1), 1));
        assert!(!h.has_unacked(HostId(1)));
    }

    #[test]
    fn receiver_sequence_wraparound() {
        let mut receiver = mk_host(1);
        receiver.rx[0].expected = u32::MAX;
        assert!(matches!(
            receiver.on_data(HostId(0), 10, PacketMeta::data(1, u32::MAX, true)),
            RxAction::Delivered { ack: u32::MAX, .. }
        ));
        // The next in-order sequence is 0, not u32::MAX + 1.
        assert!(matches!(
            receiver.on_data(HostId(0), 10, PacketMeta::data(2, 0, true)),
            RxAction::Delivered { ack: 0, .. }
        ));
        // A late duplicate from before the wrap is still a duplicate, not a
        // "future" packet.
        assert_eq!(
            receiver.on_data(HostId(0), 10, PacketMeta::data(1, u32::MAX, true)),
            RxAction::Duplicate { ack: 0 }
        );
        assert_eq!(receiver.rx[0].duplicates, 1);
        // And genuinely future sequences are still dropped.
        assert_eq!(
            receiver.on_data(HostId(0), 10, PacketMeta::data(3, 5, true)),
            RxAction::Dropped
        );
    }

    #[test]
    fn retransmission_due_after_timeout() {
        let mut h = mk_host(0);
        seg_pump(&mut h, HostId(1), 8192, 1); // seqs 0,1
        assert!(h
            .due_retransmissions(HostId(1), SimTime::from_us(10))
            .is_empty());
        let due = h.due_retransmissions(HostId(1), SimTime::from_ms(2));
        assert_eq!(due.len(), 2, "go-back-N resends the whole window");
        assert_eq!(h.tx[1].retransmissions, 2);
        // Freshly stamped: not due again immediately.
        assert!(h
            .due_retransmissions(HostId(1), SimTime::from_ms(2))
            .is_empty());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut h = mk_host(0);
        let base = h.cfg.retrans_timeout;
        let cap = h.cfg.retrans_backoff_cap;
        seg_pump(&mut h, HostId(1), 100, 1);
        assert_eq!(h.retrans_delay(HostId(1)), base);
        let mut now = SimTime::ZERO;
        let mut prev = SimDuration::ZERO;
        for _ in 0..12 {
            let delay = h.retrans_delay(HostId(1));
            assert!(delay >= prev, "backoff never shrinks without progress");
            assert!(delay <= cap, "backoff never exceeds the cap");
            now += delay;
            match h.check_retransmissions(HostId(1), now) {
                RetransDecision::Resend(v) => assert_eq!(v.len(), 1),
                other => panic!("expected resend, got {other:?}"),
            }
            prev = delay;
        }
        assert_eq!(h.retrans_delay(HostId(1)), cap);
        // ACK progress resets the backoff to the base timeout.
        assert!(h.on_ack(HostId(1), 0));
        assert_eq!(h.retrans_delay(HostId(1)), base);
    }

    #[test]
    fn retry_cap_fails_connection_and_abandons_traffic() {
        let cfg = GmConfig {
            max_retries: 3,
            ..GmConfig::default()
        };
        let mut h = mk_host_cfg(0, cfg);
        // 12 packets: 8 in flight, 4 queued behind the window.
        h.segment_message(HostId(1), 4096 * 12, 1);
        h.pump_window(HostId(1), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut failed = None;
        for _ in 0..10 {
            now += h.retrans_delay(HostId(1));
            match h.check_retransmissions(HostId(1), now) {
                RetransDecision::Resend(_) => {}
                RetransDecision::Failed { abandoned } => {
                    failed = Some(abandoned);
                    break;
                }
                RetransDecision::Idle => panic!("timer fired with nothing due"),
            }
        }
        assert_eq!(failed, Some(12), "unacked window plus queued backlog");
        assert!(h.conn_failed(HostId(1)));
        assert!(!h.has_unacked(HostId(1)));
        // A dead connection accepts no further traffic and never resends.
        h.segment_message(HostId(1), 100, 2);
        assert!(h.pump_window(HostId(1), now).is_empty());
        assert_eq!(
            h.check_retransmissions(HostId(1), now + SimDuration::from_ms(100)),
            RetransDecision::Idle
        );
    }

    #[test]
    fn max_retries_zero_retries_forever() {
        // `max_retries == 0` is GM's historical "never give up" mode: the
        // timer keeps producing go-back-N resends at the capped backoff and
        // the connection never fails, no matter how many fruitless rounds
        // pass. Pinned here so the `cfg.max_retries > 0` short-circuit in
        // `check_retransmissions` cannot silently regress into "fail on the
        // first round" (0 retries) — see GmConfig::max_retries.
        let cfg = GmConfig {
            max_retries: 0,
            ..GmConfig::default()
        };
        let mut h = mk_host_cfg(0, cfg);
        seg_pump(&mut h, HostId(1), 100, 1);
        let mut now = SimTime::ZERO;
        // Far past any plausible cap: default max_retries is 25, so 200
        // rounds is deep into would-have-failed territory.
        for round in 0..200 {
            now += h.retrans_delay(HostId(1));
            match h.check_retransmissions(HostId(1), now) {
                RetransDecision::Resend(v) => assert_eq!(v.len(), 1),
                other => panic!("round {round}: expected endless resends, got {other:?}"),
            }
        }
        assert!(!h.conn_failed(HostId(1)));
        assert!(h.has_unacked(HostId(1)));
        // The backoff exponent keeps counting rounds, but the effective
        // timeout stays clamped at the cap (no overflow at high exponents).
        assert_eq!(h.tx[1].backoff_exp, 200);
        assert_eq!(h.retrans_delay(HostId(1)), h.cfg.retrans_backoff_cap);
        // An ACK still completes the round trip normally.
        assert!(h.on_ack(HostId(1), 0));
        assert!(!h.has_unacked(HostId(1)));
        assert_eq!(h.retrans_delay(HostId(1)), h.cfg.retrans_timeout);
    }

    #[test]
    fn reliability_off_tracks_nothing_and_pumps_everything() {
        let topo = chain(2, 1);
        let ud = UpDown::compute_default(&topo);
        let routes = Arc::new(RouteTable::compute(&topo, &ud, RoutingPolicy::UpDown).unwrap());
        let cfg = GmConfig {
            reliability: false,
            ..GmConfig::default()
        };
        let mut h = Host::new(HostId(0), cfg, routes, 2);
        h.segment_message(HostId(1), 4096 * 20, 1);
        let pkts = h.pump_window(HostId(1), SimTime::ZERO);
        assert_eq!(pkts.len(), 20, "no window without reliability");
        assert!(!h.has_unacked(HostId(1)));
    }

    #[test]
    fn header_for_uses_route_table() {
        let h = mk_host(0);
        let hd = h.header_for(HostId(1));
        // chain(2,1): 2 crossings -> 2 route bytes + 2 type bytes.
        assert_eq!(hd.len(), 4);
    }
}

//! Host-side GM configuration.

use itb_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Host-software timing and protocol constants.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GmConfig {
    /// Maximum payload bytes per packet (GM segments longer messages).
    pub mtu: u32,
    /// Host CPU cost of posting a send (library call, token, doorbell).
    pub o_send: SimDuration,
    /// Extra host cost per additional packet of a multi-packet message.
    pub o_send_per_packet: SimDuration,
    /// Host CPU cost from NIC completion to the application seeing the
    /// message.
    pub o_recv: SimDuration,
    /// Cost of generating an ACK packet at the receiver.
    pub o_ack: SimDuration,
    /// Whether the reliability layer runs (per-packet cumulative ACKs,
    /// go-back-N retransmission). The paper's GM always has it; turning it
    /// off gives a clean transport for microbenchmarks.
    pub reliability: bool,
    /// Retransmission timeout for the oldest unacknowledged packet.
    pub retrans_timeout: SimDuration,
    /// Ceiling on the exponentially backed-off retransmission timeout. The
    /// effective timeout after `k` fruitless rounds is
    /// `min(retrans_timeout * 2^k, retrans_backoff_cap)`; any ACK progress
    /// resets `k` to zero.
    pub retrans_backoff_cap: SimDuration,
    /// Consecutive fruitless retransmission rounds before the connection is
    /// declared failed and its pending traffic abandoned (surfaced as a
    /// `ConnectionFailed` indication).
    ///
    /// `0` means **unlimited**: the sender retries forever at the capped
    /// backoff interval and never declares the connection failed — GM's
    /// historical behaviour, where a dead peer simply stalls the flow until
    /// an operator intervenes. The retry counter and backoff exponent keep
    /// advancing (so a late ACK still resets both), but the failure path is
    /// never taken. Nonzero values trade that liveness for bounded failure
    /// detection; the model checker's kill-flow fixtures rely on a small
    /// cap to reach the `ConnectionFailed` terminal.
    pub max_retries: u32,
    /// Maximum packets in flight (unacknowledged) per connection — GM's
    /// send-token flow control. Only meaningful with reliability on.
    pub send_window: u32,
}

impl Default for GmConfig {
    /// Calibrated against GM-1.2-era latencies on a 450 MHz PIII (short
    /// message half-round-trip ≈ 12–14 µs; see EXPERIMENTS.md).
    fn default() -> Self {
        GmConfig {
            mtu: 4096,
            o_send: SimDuration::from_ns(3_000),
            o_send_per_packet: SimDuration::from_ns(400),
            o_recv: SimDuration::from_ns(3_000),
            o_ack: SimDuration::from_ns(400),
            reliability: true,
            retrans_timeout: SimDuration::from_ms(1),
            retrans_backoff_cap: SimDuration::from_ms(32),
            max_retries: 25,
            send_window: 8,
        }
    }
}

impl GmConfig {
    /// Number of packets a message of `len` bytes needs.
    pub fn packets_for(&self, len: u32) -> u32 {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.mtu)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_counts() {
        let c = GmConfig::default();
        assert_eq!(c.packets_for(0), 1);
        assert_eq!(c.packets_for(1), 1);
        assert_eq!(c.packets_for(4096), 1);
        assert_eq!(c.packets_for(4097), 2);
        assert_eq!(c.packets_for(12_288), 3);
    }

    #[test]
    fn defaults_are_sane() {
        let c = GmConfig::default();
        assert!(c.reliability);
        assert!(c.retrans_timeout > c.o_send);
        assert!(c.retrans_backoff_cap >= c.retrans_timeout);
        assert!(c.max_retries > 0);
        assert!(c.mtu >= 512);
    }
}

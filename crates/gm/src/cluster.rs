//! The integrated cluster: network + NICs + GM hosts behind one event loop.

use crate::apps::{AppBehavior, PingPongState};
use crate::config::GmConfig;
use crate::host::{Host, RetransDecision, RxAction};
use crate::meta::{Kind, PacketMeta};
use itb_net::HostIndication;
use itb_net::{FaultPlan, FlowNet, HostCrash, NetConfig, NetEvent, NetSched, Network, PacketDesc};
use itb_nic::{McpFlavor, McpTiming, Nic, NicEvent, NicOutput, NicSched};
use itb_routing::planner::ItbHostSelection;
use itb_routing::{RouteTable, RoutingPolicy, SourceRoute};
use itb_sim::{narrow, EventQueue, FxHashMap, SimDuration, SimRng, SimTime, World};
use itb_topo::{HostId, Partition, RegionFidelity, RegionPlan, Topology, UpDown};
use std::sync::Arc;

/// Wire bytes GM adds to every packet for its own protocol header.
pub const GM_PKT_OVERHEAD: u32 = 8;

/// Host-layer events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEvent {
    /// Application generates its next message (ping-pong next iteration,
    /// stream next message, Poisson arrival).
    AppSend {
        /// Acting host.
        host: HostId,
    },
    /// Host CPU finished posting a packet; hand it to the NIC.
    SubmitPacket {
        /// Acting host.
        host: HostId,
        /// Pre-built packet token.
        token: u64,
    },
    /// A reassembled message reaches the application.
    AppDeliver {
        /// Receiving host.
        host: HostId,
        /// Original sender.
        from: HostId,
        /// Message length.
        len: u32,
        /// Message id.
        msg_id: u32,
    },
    /// Send a cumulative ACK.
    SendAck {
        /// Acking host.
        host: HostId,
        /// Peer to ack.
        to: HostId,
        /// Cumulative sequence.
        seq: u32,
    },
    /// Periodic retransmission check for one connection.
    RetransCheck {
        /// Sender side.
        host: HostId,
        /// Peer.
        peer: HostId,
    },
    /// Scheduled fault: the host's NIC crashes, flushing its in-transit
    /// packets and discarding arrivals until recovery.
    NicCrash {
        /// Crashing host.
        host: HostId,
    },
    /// Scheduled fault: the host's NIC comes back up.
    NicRecover {
        /// Recovering host.
        host: HostId,
    },
}

impl HostEvent {
    /// Fold this event (variant tag + payload) into a model-checker digest.
    pub fn digest_into(&self, d: &mut itb_sim::Digest) {
        match *self {
            HostEvent::AppSend { host } => {
                d.u8(0);
                d.u16(host.0);
            }
            HostEvent::SubmitPacket { host, token } => {
                d.u8(1);
                d.u16(host.0);
                d.u64(token);
            }
            HostEvent::AppDeliver {
                host,
                from,
                len,
                msg_id,
            } => {
                d.u8(2);
                d.u16(host.0);
                d.u16(from.0);
                d.u32(len);
                d.u32(msg_id);
            }
            HostEvent::SendAck { host, to, seq } => {
                d.u8(3);
                d.u16(host.0);
                d.u16(to.0);
                d.u32(seq);
            }
            HostEvent::RetransCheck { host, peer } => {
                d.u8(4);
                d.u16(host.0);
                d.u16(peer.0);
            }
            HostEvent::NicCrash { host } => {
                d.u8(5);
                d.u16(host.0);
            }
            HostEvent::NicRecover { host } => {
                d.u8(6);
                d.u16(host.0);
            }
        }
    }
}

/// The union event type of the whole simulation.
#[derive(Debug, Clone, Copy)]
pub enum ClusterEvent {
    /// Network-layer event.
    Net(NetEvent),
    /// NIC-layer event.
    Nic(NicEvent),
    /// Host-layer event.
    Host(HostEvent),
    /// Periodic observability tick: feed the timeline sampler and health
    /// monitors one metrics snapshot, then reschedule. Scheduled only when
    /// sampling is enabled (see [`Cluster::enable_timeline`] /
    /// [`Cluster::enable_health`]); sim-time-driven, so sampled runs stay
    /// deterministic.
    Sample,
    /// Coarse round boundary of the hybrid flow engine: re-solve the
    /// max-min rates, check escalation triggers, and commit one round of
    /// flow service. Scheduled only while flow-eligible messages are in
    /// flight (see [`Cluster::enable_flow_regions`]); coexists with flit
    /// events in the same deterministic queue.
    FlowRound,
}

impl ClusterEvent {
    /// Fold this event (variant tag + the layer event's own digest) into a
    /// model-checker digest. Together with [`Cluster::state_digest`] and the
    /// queue's ordered iteration this canonicalizes a whole world state.
    pub fn digest_into(&self, d: &mut itb_sim::Digest) {
        match self {
            ClusterEvent::Net(e) => {
                d.u8(0);
                e.digest_into(d);
            }
            ClusterEvent::Nic(e) => {
                d.u8(1);
                e.digest_into(d);
            }
            ClusterEvent::Host(e) => {
                d.u8(2);
                e.digest_into(d);
            }
            ClusterEvent::Sample => d.u8(3),
            ClusterEvent::FlowRound => d.u8(4),
        }
    }
}

/// Contention depth at which a Flow region escalates to packet fidelity:
/// a directed channel carrying this many concurrent flows means wormhole
/// HOL blocking and Stop&Go transients the fluid model averages away, so
/// the region's traffic belongs in the flit model. Depth — not
/// utilisation — is the signal on purpose: a work-conserving max-min
/// solve drives every busy flow's bottleneck channel to exactly 100%, so
/// "allocation near capacity" is true whenever any flow is live and
/// distinguishes nothing.
pub const ESCALATE_CONTENTION: u32 = 8;

/// The hybrid engine's flow-side state (see
/// [`Cluster::enable_flow_regions`]).
struct FlowMode {
    /// The flow-level fabric carrying flow-eligible messages.
    net: FlowNet,
    /// Region decomposition + per-region fidelity (escalation mutates it).
    plan: RegionPlan,
    /// Coarse round length.
    round: SimDuration,
    /// Whether a `FlowRound` event is currently scheduled.
    armed: bool,
    /// Per-(src, dst) clamp keeping flow completions FIFO within a pair:
    /// a later message never schedules its delivery before an earlier one
    /// (the queue's FIFO tie-break then preserves order at equal times).
    pair_fifo: FxHashMap<(u16, u16), SimTime>,
    /// Link ids owned by each region, for the escalation contention scan
    /// (host links count toward their switch's region; cut links toward
    /// the lower-numbered side).
    // detlint::allow(T003, derived from the immutable topology + partition at enable time)
    region_links: Vec<Vec<u32>>,
    /// Messages carried by the flow engine (diagnostics counter).
    // detlint::allow(T003, diagnostics counter: never read by a transition)
    flow_msgs: u64,
    /// Messages completed by the flow engine (diagnostics counter).
    // detlint::allow(T003, diagnostics counter: never read by a transition)
    flow_delivered: u64,
    /// Regions escalated to packet fidelity so far.
    // detlint::allow(T003, diagnostics counter: mirrors the digested fidelity vector)
    escalations: u64,
}

/// Queue adapter giving each layer its scheduling trait.
struct Sink<'a>(&'a mut EventQueue<ClusterEvent>);

impl NetSched for Sink<'_> {
    fn at(&mut self, t: SimTime, ev: NetEvent) {
        self.0.schedule(t, ClusterEvent::Net(ev));
    }
}
impl NicSched for Sink<'_> {
    fn nic_at(&mut self, t: SimTime, ev: NicEvent) {
        self.0.schedule(t, ClusterEvent::Nic(ev));
    }
}
impl Sink<'_> {
    fn host_at(&mut self, t: SimTime, ev: HostEvent) {
        self.0.schedule(t, ClusterEvent::Host(ev));
    }
}

/// Cross-shard delivery bookkeeping: a message completed on the receiver's
/// shard, but its [`MsgRecord`] lives on the *sender's* shard (message ids
/// are allocated per shard, so the numeric id only means something there).
#[derive(Debug, Clone, Copy)]
pub struct DeliveryNotice {
    /// Application delivery time on the receiver's shard.
    pub at: SimTime,
    /// The sender-shard message id.
    pub msg_id: u32,
    /// Original sender (owner of the record).
    pub from: HostId,
    /// Capture sequence on the notifying shard (merge tie-break), allocated
    /// from the shard's single envelope counter — shared with net handoffs
    /// so merge keys are globally unique.
    pub seq: u64,
}

/// Sharded-run identity of a cluster replica (None = sequential).
///
/// Notice capture sequences come from the network's single per-shard
/// envelope counter ([`Network::alloc_handoff_seq`]) so notice and net
/// handoff merge keys never collide.
struct GmShardInfo {
    me: u32,
    /// Owner shard per host (copied from the partition).
    host_shard: Vec<u32>,
    /// Per-destination-shard delivery notices captured this window.
    notices: Vec<Vec<DeliveryNotice>>,
}

/// One application-level message's life record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRecord {
    /// Sender.
    pub src: HostId,
    /// Destination.
    pub dst: HostId,
    /// Length in bytes.
    pub len: u32,
    /// Application send time.
    pub sent_at: SimTime,
    /// Application delivery time (None while in flight / lost).
    pub delivered_at: Option<SimTime>,
}

/// Everything needed to build a [`Cluster`].
pub struct ClusterParams {
    /// Wiring.
    pub topo: Topology,
    /// Physical-layer constants.
    pub net: NetConfig,
    /// NIC firmware constants.
    pub mcp: McpTiming,
    /// Firmware flavour on every NIC.
    pub flavor: McpFlavor,
    /// Route computation policy.
    pub routing: RoutingPolicy,
    /// In-transit host selection used by the ITB planner.
    pub itb_selection: ItbHostSelection,
    /// Host-software constants.
    pub gm: GmConfig,
    /// Per-host application behaviours (length = host count).
    pub behaviors: Vec<AppBehavior>,
    /// Hand-built routes to install over the computed table (the Figure 6
    /// evaluation paths).
    pub route_overrides: Vec<SourceRoute>,
    /// Fault-injection plan (link drop/corrupt probabilities, link-down
    /// windows, NIC crashes). [`FaultPlan::default`] injects nothing.
    pub faults: FaultPlan,
    /// Master seed for traffic randomness.
    pub seed: u64,
}

/// The complete simulated Myrinet cluster.
pub struct Cluster {
    /// The wormhole network.
    pub net: Network,
    nics: Vec<Nic>,
    hosts: Vec<Host>,
    // detlint::allow(T003, per-run workload configuration: fixed before the first event and never mutated)
    behaviors: Vec<AppBehavior>,
    ping: Vec<PingPongState>,
    stream_sent: Vec<u32>,
    poisson_sent: Vec<u32>,
    a2a_sent: Vec<u32>,
    // detlint::allow(T003, checker scenarios use only deterministic behaviors that never draw from the RNG streams)
    rngs: Vec<SimRng>,
    messages: FxHashMap<u32, MsgRecord>,
    /// O(1) mirror of "messages with `delivered_at` set" — the hot
    /// `run_while` predicates poll [`Cluster::delivered_count`] once per
    /// dispatched event, so it must not scan the message map.
    // detlint::allow(T003, derived mirror of the digested messages map's delivered_at bits)
    delivered_messages: u64,
    next_msg_id: u32,
    next_token: u64,
    pending_submissions: FxHashMap<u64, PacketDesc>,
    /// Reused scratch for [`Cluster::pump`] (indications drained per event).
    // detlint::allow(T003, pump scratch: drained to empty before every event completes)
    ind_buf: Vec<HostIndication>,
    /// Reused scratch for [`Cluster::pump`] (NIC outputs drained per event).
    // detlint::allow(T003, pump scratch: drained to empty before every event completes)
    out_buf: Vec<NicOutput>,
    // detlint::allow(T003, per-run GM protocol configuration: fixed before the first event and never mutated)
    gm: GmConfig,
    // detlint::allow(T003, per-run fault schedule: fixed before the first event; its effects land in digested NIC/host state)
    crashes: Vec<HostCrash>,
    connection_failures: Vec<(HostId, HostId)>,
    delivery_log: Vec<(HostId, HostId, u32)>,
    // detlint::allow(T003, diagnostics counter: never read by a transition)
    app_deliveries: u64,
    // detlint::allow(T003, diagnostics counter: never read by a transition)
    drops_observed: u64,
    // detlint::allow(T003, diagnostics counter: never read by a transition)
    packets_abandoned: u64,
    // detlint::allow(T003, diagnostics counter: never read by a transition)
    crashes_injected: u64,
    /// Sharded-run identity (None = sequential; see [`Cluster::set_shard`]).
    // detlint::allow(T003, partition identity: fixed at shard setup; the PDES contract proves shard layout cannot change sim facts)
    shard: Option<GmShardInfo>,
    /// Sim-time timeline sampler (None until [`Cluster::enable_timeline`]).
    // detlint::allow(T003, observability sidecar: samples digested state and is never read back)
    timeline: Option<itb_obs::TimelineSampler>,
    /// Runtime health monitor (None until [`Cluster::enable_health`]).
    // detlint::allow(T003, observability sidecar: samples digested state and is never read back)
    health: Option<itb_obs::HealthMonitor>,
    /// Sampling cadence: the minimum interval any enabled observer asked
    /// for. None means no `Sample` events are scheduled at all.
    // detlint::allow(T003, observer cadence: fixed at enable time; Sample events only read digested state)
    sample_every: Option<SimDuration>,
    /// Cached counter/link name schema for the allocation-free frame
    /// sampling path (built lazily at the first sample; names depend only
    /// on the topology, which never changes mid-run).
    // detlint::allow(T003, observability sidecar: derived from topology naming and never read by a transition)
    sample_schema: Option<Arc<itb_obs::MetricsSchema>>,
    /// Reusable value buffer for the sampling hot path: refilled in place
    /// every `Sample` event, so steady-state sampling allocates nothing.
    // detlint::allow(T003, observability scratch: refilled from digested state every sample and never read by a transition)
    sample_frame: Option<itb_obs::MetricsFrame>,
    /// The route table, kept for flow-eligibility checks (a route crossing
    /// an in-transit host must stay in the packet model).
    // detlint::allow(T003, immutable after construction: shared read-only with every host)
    table: Arc<RouteTable>,
    /// Hybrid flow-engine state (None until
    /// [`Cluster::enable_flow_regions`]; its live-flow set is digested).
    flow_mode: Option<FlowMode>,
}

impl Cluster {
    /// Build a cluster. Panics on inconsistent parameters (ITB routing on
    /// original firmware cannot work: the stock MCP drops ITB packets).
    pub fn new(p: ClusterParams) -> Self {
        assert!(
            !(p.routing == RoutingPolicy::Itb && p.flavor == McpFlavor::Original),
            "ITB routes require the ITB-enabled MCP"
        );
        assert_eq!(
            p.behaviors.len(),
            p.topo.num_hosts(),
            "one behavior per host"
        );
        // detlint::allow(S001, cluster construction rejects invalid topologies)
        p.topo.validate().expect("topology must be valid");
        let ud = UpDown::compute_default(&p.topo);
        let mut table =
            RouteTable::compute_with_selection(&p.topo, &ud, p.routing, p.itb_selection)
                // detlint::allow(S001, validated topologies are connected so routing succeeds)
                .expect("connected topology routes");
        for r in p.route_overrides {
            assert!(
                r.is_well_formed(&p.topo),
                "route override must be physically wired"
            );
            assert!(
                r.itb_count() == 0 || p.flavor == McpFlavor::Itb,
                "ITB route override requires ITB firmware"
            );
            table.set_route(r);
        }
        let table = Arc::new(table);
        let n = p.topo.num_hosts();
        let nics = (0..narrow::<u16, _>(n))
            .map(|h| Nic::new(HostId(h), p.flavor, p.mcp))
            .collect();
        let hosts = (0..narrow::<u16, _>(n))
            .map(|h| Host::new(HostId(h), p.gm, Arc::clone(&table), n))
            .collect();
        let master = SimRng::new(p.seed);
        let rngs = (0..n as u64).map(|h| master.child(h)).collect();
        for c in &p.faults.crashes {
            assert!(c.host.idx() < n, "crash target must be a real host");
        }
        let mut net = Network::new(p.topo, p.net);
        net.set_fault_plan(&p.faults);
        Cluster {
            net,
            nics,
            hosts,
            ping: vec![PingPongState::default(); n],
            stream_sent: vec![0; n],
            poisson_sent: vec![0; n],
            a2a_sent: vec![0; n],
            rngs,
            behaviors: p.behaviors,
            messages: FxHashMap::default(),
            delivered_messages: 0,
            next_msg_id: 0,
            next_token: 0,
            pending_submissions: FxHashMap::default(),
            ind_buf: Vec::new(),
            out_buf: Vec::new(),
            gm: p.gm,
            crashes: p.faults.crashes,
            connection_failures: Vec::new(),
            delivery_log: Vec::new(),
            app_deliveries: 0,
            drops_observed: 0,
            packets_abandoned: 0,
            crashes_injected: 0,
            shard: None,
            timeline: None,
            health: None,
            sample_every: None,
            sample_schema: None,
            sample_frame: None,
            table,
            flow_mode: None,
        }
    }

    /// Turn this replica into shard `me` of a parallel run: the network
    /// enters sharded mode (strided packet ids, cross-shard handoff capture)
    /// and [`Cluster::start`] will kick off only the hosts this shard owns.
    /// Every shard must be an *identical* replica built from the same
    /// parameters — non-owned hosts keep their per-host RNG streams
    /// untouched, so owned streams draw exactly the sequential sequence.
    ///
    /// # Panics
    /// Panics if the plan schedules NIC crashes (fault injection and
    /// parallel mode are mutually exclusive) or on any precondition
    /// violated by [`Network::set_shard_ctx`].
    pub fn set_shard(&mut self, me: u32, part: &Partition) {
        assert!(
            self.crashes.is_empty(),
            "parallel mode requires a crash-free fault plan"
        );
        assert!(
            self.sample_every.is_none(),
            "timeline/health sampling sees one shard's partial counters and \
             would mistake remote progress for a stall; sample sequentially"
        );
        assert!(
            self.flow_mode.is_none(),
            "the hybrid flow engine is a sequential-mode feature: its global \
             rate solve cannot be sharded"
        );
        self.net.set_shard_ctx(me, part);
        self.shard = Some(GmShardInfo {
            me,
            host_shard: part.shard_of_host.clone(),
            notices: (0..part.shards).map(|_| Vec::new()).collect(),
        });
    }

    /// Whether this replica owns `host` (always true sequentially).
    fn owns_host(&self, h: usize) -> bool {
        self.shard.as_ref().is_none_or(|s| s.host_shard[h] == s.me)
    }

    /// Drain the delivery notices captured for shard `dst` this window.
    pub fn take_delivery_notices(&mut self, dst: u32) -> Vec<DeliveryNotice> {
        match self.shard.as_mut() {
            Some(s) => std::mem::take(&mut s.notices[dst as usize]),
            None => Vec::new(),
        }
    }

    /// Apply a delivery notice from the receiver's shard to the message
    /// record this (sender's) shard keeps.
    pub fn apply_delivery_notice(&mut self, n: DeliveryNotice) {
        if let Some(rec) = self.messages.get_mut(&n.msg_id) {
            debug_assert_eq!(rec.src, n.from, "notice names the record's sender");
            if rec.delivered_at.is_none() {
                self.delivered_messages += 1;
            }
            rec.delivered_at = Some(n.at);
        }
    }

    /// Enable the hybrid flow/packet engine: messages whose whole path
    /// stays inside `Flow`-fidelity regions of `plan` (and crosses no
    /// in-transit-buffer hop) are carried by a flow-level model — max-min
    /// fair rates re-solved every `round` of sim time — instead of the
    /// flit model. Everything else, and everything after a region
    /// escalates (see [`ESCALATE_CONTENTION`]), takes the packet path
    /// unchanged.
    ///
    /// With an all-packet plan the flow machinery never schedules an
    /// event, so the run is byte-identical to a plain sequential run — the
    /// fidelity anchor the hybrid tests pin.
    ///
    /// Call before [`Cluster::start`]. Incompatible with sharded parallel
    /// runs ([`Cluster::set_shard`]) and with NIC-crash fault plans: flow
    /// regions model a loss-free fabric.
    ///
    /// # Panics
    /// Panics on a zero round, a sharded cluster, a crash-bearing fault
    /// plan, or a plan partitioned over a different switch count.
    pub fn enable_flow_regions(&mut self, plan: RegionPlan, round: SimDuration) {
        assert!(round > SimDuration::ZERO, "flow round must be positive");
        assert!(
            self.shard.is_none(),
            "the hybrid flow engine is a sequential-mode feature"
        );
        assert!(
            self.crashes.is_empty(),
            "flow regions model a loss-free fabric; crash plans need the \
             packet model everywhere"
        );
        let topo = self.net.topology();
        assert_eq!(
            plan.part.shard_of_switch.len(),
            topo.num_switches(),
            "region plan must partition this cluster's topology"
        );
        let link_ns_per_byte = self.net.config().link_bw.ps_per_byte() as f64 / 1e3;
        let flow_net = FlowNet::new(topo, 1.0 / link_ns_per_byte);
        let mut region_links: Vec<Vec<u32>> = (0..plan.part.shards).map(|_| Vec::new()).collect();
        for lid in topo.link_ids() {
            let link = topo.link(lid);
            let region = match (link.a.node.as_switch(), link.b.node.as_switch()) {
                (Some(a), Some(b)) => plan.part.shard_of(a).min(plan.part.shard_of(b)),
                (Some(s), None) | (None, Some(s)) => plan.part.shard_of(s),
                (None, None) => unreachable!("links touch at least one switch"),
            };
            region_links[region as usize].push(narrow(lid.idx()));
        }
        self.flow_mode = Some(FlowMode {
            net: flow_net,
            plan,
            round,
            armed: false,
            pair_fifo: FxHashMap::default(),
            region_links,
            flow_msgs: 0,
            flow_delivered: 0,
            escalations: 0,
        });
    }

    /// Whether a `src → dst` message may ride the flow engine: flow mode
    /// on, at least one Flow region left, no in-transit hop on the
    /// installed route, and every switch on the (BFS) flow path at Flow
    /// fidelity.
    fn flow_eligible(&self, src: HostId, dst: HostId) -> bool {
        let Some(fm) = &self.flow_mode else {
            return false;
        };
        if fm.plan.is_all_packet() || src == dst {
            return false;
        }
        if self.table.route(src, dst).is_none_or(|r| r.itb_count() > 0) {
            return false;
        }
        fm.net
            .switches_of(src, dst)
            .iter()
            .all(|&s| fm.plan.fidelity_of_switch(s) == RegionFidelity::Flow)
    }

    /// The per-region fidelity assignment as currently escalated (None
    /// when flow mode is off).
    pub fn region_fidelity(&self) -> Option<&[RegionFidelity]> {
        self.flow_mode
            .as_ref()
            .map(|fm| fm.plan.fidelity.as_slice())
    }

    /// Messages carried (opened) by the flow engine so far.
    pub fn flow_messages(&self) -> u64 {
        self.flow_mode.as_ref().map_or(0, |fm| fm.flow_msgs)
    }

    /// One coarse flow round: re-solve the max-min rates over the live
    /// flow set, escalate any Flow region whose links solved too close to
    /// saturation (handing its flows back to the packet path with their
    /// remaining bytes), then commit one `round` of service — completions
    /// schedule their `AppDeliver` at the exact quantised offset, clamped
    /// per (src, dst) pair so flow deliveries stay FIFO. Reschedules
    /// itself while flows remain; otherwise the next flow-eligible send
    /// re-arms it.
    fn on_flow_round(&mut self, now: SimTime, q: &mut EventQueue<ClusterEvent>) {
        // detlint::allow(S001, FlowRound events are only scheduled in flow mode)
        let mut fm = self.flow_mode.take().expect("FlowRound requires flow mode");
        fm.net.solve();

        // Escalation sweep: regions whose busiest channel reached the
        // contention-depth trigger leave the flow model for good.
        let mut escalated = false;
        for r in 0..fm.plan.part.shards {
            if fm.plan.fidelity[r as usize] == RegionFidelity::Flow
                && fm
                    .net
                    .peak_contention(fm.region_links[r as usize].iter().copied())
                    >= ESCALATE_CONTENTION
            {
                fm.plan.escalate(r);
                fm.escalations += 1;
                escalated = true;
            }
        }
        if escalated {
            // Hand every flow that now crosses a packet region back to the
            // packet path: close it and re-segment the remaining bytes
            // under the same message id (the record's length shrinks to
            // what the packet path will actually deliver).
            let ids: Vec<u64> = fm.net.ids().collect();
            for id in ids {
                // detlint::allow(S001, ids were just collected from the live set)
                let flow = fm.net.get(id).expect("live flow");
                let demoted = fm
                    .net
                    .switches_of(flow.src, flow.dst)
                    .iter()
                    .any(|&s| fm.plan.fidelity_of_switch(s) == RegionFidelity::Packet);
                if demoted {
                    // detlint::allow(S001, the id came from the live set above)
                    let flow = fm.net.close(id).expect("live flow");
                    let msg_id: u32 = narrow(id);
                    let remaining: u32 = narrow(flow.remaining);
                    if let Some(rec) = self.messages.get_mut(&msg_id) {
                        rec.len = remaining;
                    }
                    self.hosts[flow.src.idx()].segment_message(flow.dst, remaining, msg_id);
                    self.pump_conn(flow.src, flow.dst, now, true, q);
                }
            }
            // The surviving flows re-share the freed capacity this round.
            fm.net.solve();
        }

        for done in fm.net.advance(fm.round) {
            let msg_id: u32 = narrow(done.id);
            // detlint::allow(S001, every open flow has a message record)
            let rec = *self.messages.get(&msg_id).expect("flow message record");
            let key = (rec.src.0, rec.dst.0);
            let mut at = now + done.offset;
            if let Some(&last) = fm.pair_fifo.get(&key) {
                at = at.max(last);
            }
            fm.pair_fifo.insert(key, at);
            fm.flow_delivered += 1;
            q.schedule(
                at,
                ClusterEvent::Host(HostEvent::AppDeliver {
                    host: rec.dst,
                    from: rec.src,
                    len: rec.len,
                    msg_id,
                }),
            );
        }

        if fm.net.is_empty() {
            fm.armed = false;
        } else {
            q.schedule(now + fm.round, ClusterEvent::FlowRound);
            fm.armed = true;
        }
        self.flow_mode = Some(fm);
    }

    /// Enable the sim-time timeline sampler: every `interval` of sim time a
    /// scheduled `Sample` event records one [`itb_obs::Snapshot`] delta.
    /// Call before [`Cluster::start`]; retrieve the series with
    /// [`Cluster::take_timeline`]. Incompatible with sharded parallel runs
    /// (see [`Cluster::set_shard`]).
    ///
    /// # Panics
    /// Panics on a zero interval.
    pub fn enable_timeline(&mut self, interval: SimDuration) {
        let mut t = itb_obs::TimelineSampler::new(interval.as_ps() / 1_000);
        // Samples arrive through the allocation-free frame path; bind now
        // if the schema already exists (re-enable mid-run), else lazily at
        // the first sample.
        if let Some(s) = &self.sample_schema {
            t.bind_schema(Arc::clone(s));
        }
        self.timeline = Some(t);
        self.tighten_sampling(interval);
    }

    /// Enable the runtime health monitors (stall watchdog, counter
    /// conservation), sampled every `interval` of sim time; the watchdog
    /// fires when traffic is pending but neither a delivery nor a link byte
    /// advance happens for `stall_budget`. Call before [`Cluster::start`];
    /// finalize with [`Cluster::health_report`]. Incompatible with sharded
    /// parallel runs (see [`Cluster::set_shard`]).
    ///
    /// # Panics
    /// Panics on a zero interval or zero budget.
    pub fn enable_health(&mut self, interval: SimDuration, stall_budget: SimDuration) {
        assert!(
            interval > SimDuration::ZERO,
            "sample interval must be positive"
        );
        self.health = Some(itb_obs::HealthMonitor::new(itb_obs::HealthConfig {
            stall_budget_ns: stall_budget.as_ps() / 1_000,
        }));
        self.tighten_sampling(interval);
    }

    fn tighten_sampling(&mut self, interval: SimDuration) {
        assert!(
            interval > SimDuration::ZERO,
            "sample interval must be positive"
        );
        self.sample_every = Some(match self.sample_every {
            Some(cur) => cur.min(interval),
            None => interval,
        });
    }

    /// Take the recorded timeline (None if never enabled). The sampler is
    /// consumed; re-enable to record again.
    pub fn take_timeline(&mut self) -> Option<itb_obs::TimelineSampler> {
        self.timeline.take()
    }

    /// Whether traffic still wants to make progress: packets on the wire or
    /// messages sent but not delivered. This is what arms the stall
    /// watchdog — a quiet network with nothing pending is a finished run,
    /// not a stall.
    pub fn traffic_pending(&self) -> bool {
        self.net.in_flight() > 0 || (self.messages.len() as u64) > self.delivered_messages
    }

    /// The blocked set for stall diagnostics: every parked packet with its
    /// network location, then every undelivered message, in id order.
    pub fn blocked_set(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .net
            .parked_packets()
            .into_iter()
            .map(|id| format!("packet {}: {}", id.0, self.net.locate_packet(id)))
            .collect();
        let mut undelivered: Vec<(u32, &MsgRecord)> = self
            .messages
            .iter()
            .filter(|(_, r)| r.delivered_at.is_none())
            .map(|(&id, r)| (id, r))
            .collect();
        undelivered.sort_by_key(|&(id, _)| id);
        out.extend(undelivered.into_iter().map(|(id, r)| {
            format!(
                "msg {id}: h{}->h{} {} B sent at {} ns, undelivered",
                r.src.idx(),
                r.dst.idx(),
                r.len,
                r.sent_at.as_ps() / 1_000
            )
        }));
        out
    }

    /// Finalize the health monitor at time `now`: feed it one last
    /// snapshot, run the end-of-run NIC buffer-leak audit over every
    /// receive pool, and return the structured report (None if
    /// [`Cluster::enable_health`] was never called). The monitor is
    /// consumed.
    pub fn health_report(&mut self, now: SimTime) -> Option<itb_obs::HealthReport> {
        let mut h = self.health.take()?;
        let schema = self.sample_schema();
        let mut frame = self
            .sample_frame
            .take()
            .unwrap_or_else(|| itb_obs::MetricsFrame::for_schema(&schema));
        self.fill_metrics_frame(now, &mut frame);
        let end_ns = frame.at_ns;
        if h.observe_frame(&frame, &schema, self.traffic_pending()) {
            h.flag_stall(end_ns, self.blocked_set());
        }
        self.sample_frame = Some(frame);
        for (i, nic) in self.nics.iter().enumerate() {
            let a = nic.buffer_audit();
            h.audit_buffer(
                end_ns,
                &itb_obs::BufferAudit {
                    node: narrow(i),
                    pool: "recv".into(),
                    total: a.recv_total,
                    free: a.recv_free,
                    in_use: a.recv_owned,
                },
            );
        }
        Some(h.finish(end_ns))
    }

    /// One observability tick: snapshot the metrics, feed the health
    /// monitor (gathering the blocked set if the watchdog fires) and the
    /// timeline sampler, then reschedule. Rescheduling stops when the model
    /// has no events left AND no stall question is open — a finished run
    /// terminates naturally, while a drained queue with traffic still
    /// pending (the deadlock signature: nothing can move, so nothing is
    /// scheduled) keeps the sampling clock alive exactly until the watchdog
    /// fires once and diagnoses it.
    fn on_sample(&mut self, now: SimTime, q: &mut EventQueue<ClusterEvent>) {
        if self.timeline.is_some() || self.health.is_some() {
            // Frame path: refill the reusable value buffer in place and feed
            // both observers positionally. Zero allocations in steady state
            // (the schema's names were built once, at the first sample) —
            // this is what keeps sampled gauntlet runs at full throughput.
            let schema = self.sample_schema();
            let mut frame = self
                .sample_frame
                .take()
                .unwrap_or_else(|| itb_obs::MetricsFrame::for_schema(&schema));
            self.fill_metrics_frame(now, &mut frame);
            if let Some(mut h) = self.health.take() {
                if h.observe_frame(&frame, &schema, self.traffic_pending()) {
                    h.flag_stall(frame.at_ns, self.blocked_set());
                }
                self.health = Some(h);
            }
            if let Some(t) = &mut self.timeline {
                t.record_frame(&frame);
            }
            self.sample_frame = Some(frame);
        }
        if let Some(iv) = self.sample_every {
            let stall_open = self
                .health
                .as_ref()
                .is_some_and(|h| !h.in_stall() && self.traffic_pending());
            if !q.is_empty() || stall_open {
                q.schedule(now + iv, ClusterEvent::Sample);
            }
        }
    }

    /// Kick off every host's application and schedule planned NIC crashes.
    pub fn start(&mut self, q: &mut EventQueue<ClusterEvent>) {
        if let Some(iv) = self.sample_every {
            q.schedule(SimTime::ZERO + iv, ClusterEvent::Sample);
        }
        for c in self.crashes.clone() {
            q.schedule(
                c.at,
                ClusterEvent::Host(HostEvent::NicCrash { host: c.host }),
            );
            q.schedule(
                c.until,
                ClusterEvent::Host(HostEvent::NicRecover { host: c.host }),
            );
        }
        for h in 0..self.behaviors.len() {
            // Sharded runs kick off owned hosts only; the replicas of other
            // shards never touch this host's state or RNG stream.
            if !self.owns_host(h) {
                continue;
            }
            let host = HostId(narrow(h));
            match &self.behaviors[h] {
                AppBehavior::Sink | AppBehavior::Echo => {}
                AppBehavior::PingPong { .. }
                | AppBehavior::Stream { .. }
                | AppBehavior::AllToAll { .. } => {
                    q.schedule(
                        SimTime::ZERO,
                        ClusterEvent::Host(HostEvent::AppSend { host }),
                    );
                }
                AppBehavior::Poisson { mean_gap, .. } => {
                    let gap = self.rngs[h].exp(mean_gap.as_ns_f64());
                    q.schedule(
                        SimTime::ZERO + SimDuration::from_ns_f64(gap),
                        ClusterEvent::Host(HostEvent::AppSend { host }),
                    );
                }
            }
        }
    }

    /// Per-message records, keyed by message id.
    pub fn messages(&self) -> &FxHashMap<u32, MsgRecord> {
        &self.messages
    }

    /// Ping-pong progress of a host.
    pub fn ping_state(&self, host: HostId) -> &PingPongState {
        &self.ping[host.idx()]
    }

    /// Whether every ping-pong initiator has finished its sweep.
    pub fn all_pingpongs_done(&self) -> bool {
        self.behaviors
            .iter()
            .zip(&self.ping)
            .all(|(b, s)| !matches!(b, AppBehavior::PingPong { .. }) || s.done)
    }

    /// NIC of a host (for stats inspection).
    pub fn nic(&self, host: HostId) -> &Nic {
        &self.nics[host.idx()]
    }

    /// GM state of a host (for stats inspection).
    pub fn host(&self, host: HostId) -> &Host {
        &self.hosts[host.idx()]
    }

    /// Messages delivered so far. O(1): experiment stop predicates call this
    /// once per dispatched event.
    // Every delivered message was first held in memory, so the count fits
    // in usize on any target that ran the simulation.
    #[allow(clippy::cast_possible_truncation)]
    pub fn delivered_count(&self) -> usize {
        self.delivered_messages as usize
    }

    /// Connections that exhausted their retry budget, as `(sender, peer)`
    /// pairs in failure order.
    pub fn connection_failures(&self) -> &[(HostId, HostId)] {
        &self.connection_failures
    }

    /// Every application delivery in order, as `(from, to, msg_id)` — the
    /// exactly-once/in-order evidence the chaos harness audits.
    pub fn delivery_log(&self) -> &[(HostId, HostId, u32)] {
        &self.delivery_log
    }

    /// Fold every behavioral field of the cluster — network, NICs, GM hosts,
    /// application progress, in-flight bookkeeping — into a model-checker
    /// digest. Two clusters with equal digests (plus equal event queues)
    /// evolve identically, so the checker's BFS can merge them.
    ///
    /// Deliberately excluded as pure diagnostics: stats counters
    /// (`app_deliveries`, `drops_observed`, `packets_abandoned`,
    /// `crashes_injected`, per-layer stat blocks), ping-pong RTT samples,
    /// the timeline/health observers, and the per-host RNG streams (checker
    /// scenarios use only deterministic behaviors — Stream/Sink/Echo — whose
    /// evolution never draws from them). The `delivery_log` IS included: it
    /// is the substrate of the exactly-once/in-order invariants, so states
    /// that differ in delivery history must never merge.
    pub fn state_digest(&self, d: &mut itb_sim::Digest) {
        self.net.state_digest(d);
        for nic in &self.nics {
            nic.state_digest(d);
        }
        for host in &self.hosts {
            host.state_digest(d);
        }
        for st in &self.ping {
            d.usize(st.size_ix);
            d.u32(st.iter);
            match st.sent_at {
                Some(t) => {
                    d.bool(true);
                    d.u64(t.as_ps());
                }
                None => d.bool(false),
            }
            d.bool(st.done);
        }
        for v in [&self.stream_sent, &self.poisson_sent, &self.a2a_sent] {
            for &sent in v {
                d.u32(sent);
            }
        }
        let mut msg_ids: Vec<u32> = self.messages.keys().copied().collect();
        msg_ids.sort_unstable();
        d.usize(msg_ids.len());
        for id in msg_ids {
            let r = &self.messages[&id];
            d.u32(id);
            d.u16(r.src.0);
            d.u16(r.dst.0);
            d.u32(r.len);
            d.u64(r.sent_at.as_ps());
            match r.delivered_at {
                Some(t) => {
                    d.bool(true);
                    d.u64(t.as_ps());
                }
                None => d.bool(false),
            }
        }
        d.u32(self.next_msg_id);
        d.u64(self.next_token);
        let mut tokens: Vec<u64> = self.pending_submissions.keys().copied().collect();
        tokens.sort_unstable();
        d.usize(tokens.len());
        for t in tokens {
            let desc = &self.pending_submissions[&t];
            d.u64(t);
            let hdr = desc.header.as_bytes();
            d.usize(hdr.len());
            d.bytes(hdr);
            d.u32(desc.payload_len);
            d.u64(desc.tag);
            d.u16(desc.src.0);
        }
        d.usize(self.connection_failures.len());
        for &(a, b) in &self.connection_failures {
            d.u16(a.0);
            d.u16(b.0);
        }
        d.usize(self.delivery_log.len());
        for &(from, to, id) in &self.delivery_log {
            d.u16(from.0);
            d.u16(to.0);
            d.u32(id);
        }
        // Hybrid flow engine: live flows (id order), pair-FIFO clamps
        // (sorted) and the escalation state are all behavioral — two
        // clusters differing here schedule different futures. Digested
        // only when flow mode is on, so packet-only runs keep their
        // byte-exact legacy digests.
        if let Some(fm) = &self.flow_mode {
            d.u8(1);
            d.u64(fm.round.as_ps());
            d.bool(fm.armed);
            for f in &fm.plan.fidelity {
                d.bool(matches!(f, RegionFidelity::Flow));
            }
            d.usize(fm.net.len());
            for id in fm.net.ids() {
                // detlint::allow(S001, iterating the live id set)
                let f = fm.net.get(id).expect("live flow");
                d.u64(id);
                d.u16(f.src.0);
                d.u16(f.dst.0);
                d.u64(f.remaining);
                d.u64(f.interval.ps_per_byte());
            }
            let mut pairs: Vec<(u16, u16, u64)> = fm
                .pair_fifo
                .iter()
                .map(|(&(a, b), &t)| (a, b, t.as_ps()))
                .collect();
            pairs.sort_unstable();
            d.usize(pairs.len());
            for (a, b, t) in pairs {
                d.u16(a);
                d.u16(b);
                d.u64(t);
            }
        }
    }

    /// Per-NIC counter names, in the order [`Cluster::fill_metrics_frame`]
    /// fills their values. The two functions are kept in lockstep by this
    /// shared list plus the length assertion in `MetricsFrame::to_snapshot`
    /// (and the fact that [`Cluster::metrics_snapshot`] itself goes through
    /// the frame path, so any drift breaks the snapshot tests immediately).
    const NIC_COUNTER_NAMES: [&'static str; 10] = [
        "sends",
        "recvs",
        "early_recv_events",
        "itb_detects",
        "itb_forwards",
        "itb_pending_serviced",
        "flushed",
        "crc_drops",
        "rx_stalls",
        "crash_flushes",
    ];

    /// Build the counter/link name schema for the frame sampling path, in
    /// the natural fill order of [`Cluster::fill_metrics_frame`]: `net.*`,
    /// then `nic.{i}.*` per NIC, then `gm.*`. Names depend only on the
    /// topology, so the schema is built once per run.
    fn build_metrics_schema(&self) -> Arc<itb_obs::MetricsSchema> {
        let mut keys = Vec::with_capacity(8 + self.nics.len() * Self::NIC_COUNTER_NAMES.len() + 7);
        for k in [
            "net.injected",
            "net.reinjected",
            "net.delivered",
            "net.bytes_delivered",
            "net.fault_drops",
            "net.fault_corrupts",
            "net.link_down_drops",
            "net.forced_corrupts",
        ] {
            keys.push(k.to_string());
        }
        for i in 0..self.nics.len() {
            for name in Self::NIC_COUNTER_NAMES {
                keys.push(format!("nic.{i}.{name}"));
            }
        }
        for k in [
            "gm.retransmissions",
            "gm.duplicates",
            "gm.app_deliveries",
            "gm.drops_observed",
            "gm.connections_failed",
            "gm.packets_abandoned",
            "gm.crashes_injected",
        ] {
            keys.push(k.to_string());
        }
        // Flow-engine counters exist only in hybrid runs, so packet-only
        // artifacts (the chaos/perf byte-compare gates) keep their exact
        // legacy key set.
        if self.flow_mode.is_some() {
            for k in [
                "flow.bytes_delivered",
                "flow.escalations",
                "flow.live",
                "flow.msgs_delivered",
                "flow.msgs_opened",
                "flow.solves",
            ] {
                keys.push(k.to_string());
            }
        }
        itb_obs::MetricsSchema::new(keys, self.net.link_names())
    }

    /// The cached schema, building (and binding the timeline sampler) on
    /// first use.
    fn sample_schema(&mut self) -> Arc<itb_obs::MetricsSchema> {
        if let Some(s) = &self.sample_schema {
            return Arc::clone(s);
        }
        let s = self.build_metrics_schema();
        if let Some(t) = &mut self.timeline {
            t.bind_schema(Arc::clone(&s));
        }
        self.sample_schema = Some(Arc::clone(&s));
        s
    }

    /// Refill `frame` with every metric value at time `now`, in
    /// [`Cluster::build_metrics_schema`] order. Allocation-free once the
    /// frame's buffers have grown to size — this is the per-sample hot
    /// path.
    fn fill_metrics_frame(&self, now: SimTime, frame: &mut itb_obs::MetricsFrame) {
        frame.reset();
        frame.at_ns = now.as_ps() / 1_000;
        let n = self.net.stats();
        frame.counters.extend([
            n.injected,
            n.reinjected,
            n.delivered,
            n.bytes_delivered,
            n.fault_drops,
            n.fault_corrupts,
            n.link_down_drops,
            n.forced_corrupts,
        ]);
        for nic in &self.nics {
            let st = nic.stats();
            frame.counters.extend([
                st.sends,
                st.recvs,
                st.early_recv_events,
                st.itb_detects,
                st.itb_forwards,
                st.itb_pending_serviced,
                st.flushed,
                st.crc_drops,
                st.rx_stalls,
                st.crash_flushes,
            ]);
        }
        let retransmissions: u64 = self
            .hosts
            .iter()
            .flat_map(|h| h.tx.iter().map(|c| c.retransmissions))
            .sum();
        let duplicates: u64 = self
            .hosts
            .iter()
            .flat_map(|h| h.rx.iter().map(|c| c.duplicates))
            .sum();
        frame.counters.extend([
            retransmissions,
            duplicates,
            self.app_deliveries,
            self.drops_observed,
            self.connection_failures.len() as u64,
            self.packets_abandoned,
            self.crashes_injected,
        ]);
        if let Some(fm) = &self.flow_mode {
            frame.counters.extend([
                fm.net.bytes_delivered(),
                fm.escalations,
                fm.net.len() as u64,
                fm.flow_delivered,
                fm.flow_msgs,
                fm.net.solves(),
            ]);
        }
        self.net.fill_link_loads(&mut frame.links);
        frame.blocking = itb_obs::QuantileSummary::from(self.net.blocking_times());
    }

    /// One unified metrics snapshot across all layers at time `now`:
    /// network and per-NIC counters in a flat `layer.name` namespace,
    /// per-link byte/blocking loads and the wormhole blocking-time
    /// distribution. Diff two snapshots with [`itb_obs::Snapshot::delta`].
    ///
    /// Implemented via the frame path (values filled positionally, names
    /// joined at materialization), so the hot sampling path and this cold
    /// accessor can never drift apart.
    pub fn metrics_snapshot(&self, now: SimTime) -> itb_obs::Snapshot {
        let schema = match &self.sample_schema {
            Some(s) => Arc::clone(s),
            None => self.build_metrics_schema(),
        };
        let mut frame = itb_obs::MetricsFrame::for_schema(&schema);
        self.fill_metrics_frame(now, &mut frame);
        frame.to_snapshot(&schema)
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Application-level send: segment, record, and schedule packet
    /// submissions after host processing costs. Returns the message id.
    pub fn send_message(
        &mut self,
        src: HostId,
        dst: HostId,
        len: u32,
        now: SimTime,
        q: &mut EventQueue<ClusterEvent>,
    ) -> u32 {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.messages.insert(
            msg_id,
            MsgRecord {
                src,
                dst,
                len,
                sent_at: now,
                delivered_at: None,
            },
        );
        // Hybrid engine: flow-eligible messages ride the flow model under
        // the same message id; everything else takes the packet path.
        if self.flow_eligible(src, dst) {
            // detlint::allow(S001, flow_eligible returned true so flow mode is on)
            let fm = self.flow_mode.as_mut().expect("flow mode is on");
            fm.net.open(u64::from(msg_id), src, dst, u64::from(len));
            fm.flow_msgs += 1;
            if !fm.armed {
                fm.armed = true;
                q.schedule(now + fm.round, ClusterEvent::FlowRound);
            }
            return msg_id;
        }
        self.hosts[src.idx()].segment_message(dst, len, msg_id);
        self.pump_conn(src, dst, now, true, q);
        msg_id
    }

    /// Release window-permitted packets of the `(src, dst)` connection to
    /// the NIC, spaced by the per-packet host cost, and keep the
    /// retransmission timer armed while anything is outstanding.
    fn pump_conn(
        &mut self,
        src: HostId,
        dst: HostId,
        now: SimTime,
        fresh_send: bool,
        q: &mut EventQueue<ClusterEvent>,
    ) {
        let released = self.hosts[src.idx()].pump_window(dst, now);
        if released.is_empty() {
            return;
        }
        let header = self.hosts[src.idx()].header_for(dst);
        // A fresh application send pays the library-call cost; ACK-driven
        // window refills only pay the per-packet posting cost (the library
        // call already happened).
        let base = if fresh_send {
            self.gm.o_send
        } else {
            self.gm.o_send_per_packet
        };
        for (i, pkt) in released.into_iter().enumerate() {
            let token = self.next_token;
            self.next_token += 1;
            self.pending_submissions.insert(
                token,
                PacketDesc {
                    header: header.clone(),
                    payload_len: pkt.payload_len + GM_PKT_OVERHEAD,
                    tag: pkt.tag,
                    src,
                },
            );
            let at = now + base + self.gm.o_send_per_packet * (i as u64);
            q.schedule(
                at,
                ClusterEvent::Host(HostEvent::SubmitPacket { host: src, token }),
            );
        }
        // Arm the retransmission timer for this connection.
        if self.gm.reliability && !self.hosts[src.idx()].tx[dst.idx()].timer_armed {
            self.hosts[src.idx()].tx[dst.idx()].timer_armed = true;
            q.schedule(
                now + self.gm.retrans_timeout,
                ClusterEvent::Host(HostEvent::RetransCheck {
                    host: src,
                    peer: dst,
                }),
            );
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Route indications and outputs after any net/nic activity. Runs once
    /// per dispatched event, so the drain buffers are owned by the cluster
    /// and recycled — the steady-state loop allocates nothing here.
    fn pump(&mut self, now: SimTime, q: &mut EventQueue<ClusterEvent>) {
        let mut inds = std::mem::take(&mut self.ind_buf);
        loop {
            self.net.drain_indications_into(&mut inds);
            if inds.is_empty() {
                break;
            }
            for &ind in &inds {
                let host = match ind {
                    HostIndication::HeadArrived { host, .. }
                    | HostIndication::BytesArrived { host, .. }
                    | HostIndication::PacketComplete { host, .. }
                    | HostIndication::InjectionComplete { host, .. } => host,
                };
                let mut sink = Sink(q);
                self.nics[host.idx()].on_indication(ind, now, &mut self.net, &mut sink);
            }
        }
        self.ind_buf = inds;
        // Collect NIC outputs into the GM layer.
        let mut outs = std::mem::take(&mut self.out_buf);
        outs.clear();
        for nic in &mut self.nics {
            nic.drain_outputs_into(&mut outs);
        }
        for out in outs.drain(..) {
            self.on_nic_output(out, now, q);
        }
        self.out_buf = outs;
    }

    fn on_nic_output(&mut self, out: NicOutput, now: SimTime, q: &mut EventQueue<ClusterEvent>) {
        match out {
            NicOutput::SendComplete { .. } => {
                // Send tokens recycle silently; app flow control is modelled
                // by the drivers' request-response structure.
            }
            NicOutput::Flushed { .. } => {
                // Lost packet: the reliability layer will retransmit. Count
                // it so flush losses are always visible in metrics.
                self.drops_observed += 1;
            }
            NicOutput::RecvComplete {
                host, packet, desc, ..
            } => {
                let meta = PacketMeta::decode(desc.tag);
                let from = desc.src;
                match meta.kind {
                    Kind::Ack => {
                        self.hosts[host.idx()].on_ack(from, meta.seq);
                        // Acks open the send window: release queued packets.
                        self.pump_conn(host, from, now, false, q);
                    }
                    Kind::Data => {
                        let payload = desc.payload_len - GM_PKT_OVERHEAD;
                        let action = self.hosts[host.idx()].on_data(from, payload, meta);
                        let ack = match &action {
                            RxAction::Accepted { ack }
                            | RxAction::Duplicate { ack }
                            | RxAction::Delivered { ack, .. } => Some(*ack),
                            RxAction::Dropped => None,
                        };
                        if self.gm.reliability {
                            if let Some(seq) = ack {
                                let mut sink = Sink(q);
                                sink.host_at(
                                    now + self.gm.o_ack,
                                    HostEvent::SendAck {
                                        host,
                                        to: from,
                                        seq,
                                    },
                                );
                            }
                        }
                        if let RxAction::Delivered { len, msg_id, .. } = action {
                            // The packet that completed the message reaches
                            // the application after the host receive cost.
                            self.net.trace(
                                packet,
                                itb_obs::Stage::HostDeliver,
                                u32::from(host.0),
                                now + self.gm.o_recv,
                            );
                            let mut sink = Sink(q);
                            sink.host_at(
                                now + self.gm.o_recv,
                                HostEvent::AppDeliver {
                                    host,
                                    from,
                                    len,
                                    msg_id,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn on_host_event(&mut self, ev: HostEvent, now: SimTime, q: &mut EventQueue<ClusterEvent>) {
        match ev {
            HostEvent::SubmitPacket { host, token } => {
                if let Some(desc) = self.pending_submissions.remove(&token) {
                    let mut sink = Sink(q);
                    self.nics[host.idx()].submit_send(token, desc, now, &mut self.net, &mut sink);
                }
            }
            HostEvent::SendAck { host, to, seq } => {
                let token = self.next_token;
                self.next_token += 1;
                let desc = PacketDesc {
                    header: self.hosts[host.idx()].header_for(to),
                    payload_len: GM_PKT_OVERHEAD,
                    tag: PacketMeta::ack(seq).encode(),
                    src: host,
                };
                let mut sink = Sink(q);
                self.nics[host.idx()].submit_send(token, desc, now, &mut self.net, &mut sink);
            }
            HostEvent::AppSend { host } => self.on_app_send(host, now, q),
            HostEvent::AppDeliver {
                host,
                from,
                len,
                msg_id,
            } => self.on_app_deliver(host, from, len, msg_id, now, q),
            HostEvent::RetransCheck { host, peer } => {
                match self.hosts[host.idx()].check_retransmissions(peer, now) {
                    RetransDecision::Failed { abandoned } => {
                        // Retry budget gone: surface the failure instead of
                        // resending forever, and disarm the timer.
                        self.connection_failures.push((host, peer));
                        self.packets_abandoned += abandoned as u64;
                        self.hosts[host.idx()].tx[peer.idx()].timer_armed = false;
                        return;
                    }
                    RetransDecision::Resend(due) => {
                        for (i, pkt) in due.into_iter().enumerate() {
                            let token = self.next_token;
                            self.next_token += 1;
                            let desc = PacketDesc {
                                header: self.hosts[host.idx()].header_for(pkt.dst),
                                payload_len: pkt.payload_len + GM_PKT_OVERHEAD,
                                tag: pkt.tag,
                                src: host,
                            };
                            self.pending_submissions.insert(token, desc);
                            // Stagger resends by the per-packet posting cost,
                            // exactly like fresh sends in `pump_conn`.
                            q.schedule_after(
                                self.gm.o_send_per_packet * (i as u64 + 1),
                                ClusterEvent::Host(HostEvent::SubmitPacket { host, token }),
                            );
                        }
                    }
                    RetransDecision::Idle => {}
                }
                if self.hosts[host.idx()].has_unacked(peer) {
                    // Re-arm at the current (possibly backed-off) timeout.
                    let delay = self.hosts[host.idx()].retrans_delay(peer);
                    q.schedule_after(
                        delay,
                        ClusterEvent::Host(HostEvent::RetransCheck { host, peer }),
                    );
                } else {
                    self.hosts[host.idx()].tx[peer.idx()].timer_armed = false;
                }
            }
            HostEvent::NicCrash { host } => {
                self.crashes_injected += 1;
                let mut sink = Sink(q);
                self.nics[host.idx()].crash(now, &mut self.net, &mut sink);
            }
            HostEvent::NicRecover { host } => {
                self.nics[host.idx()].recover();
            }
        }
    }

    fn on_app_send(&mut self, host: HostId, now: SimTime, q: &mut EventQueue<ClusterEvent>) {
        match self.behaviors[host.idx()].clone() {
            AppBehavior::PingPong { peer, sizes, .. } => {
                let st = &mut self.ping[host.idx()];
                if st.done || st.size_ix >= sizes.len() {
                    st.done = true;
                    return;
                }
                let size = sizes[st.size_ix];
                st.sent_at = Some(now);
                self.send_message(host, peer, size, now, q);
            }
            AppBehavior::Stream { dst, size, count } => {
                if self.stream_sent[host.idx()] >= count {
                    return;
                }
                self.stream_sent[host.idx()] += 1;
                self.send_message(host, dst, size, now, q);
                // Next message immediately (back-to-back; NIC queues pace it).
                if self.stream_sent[host.idx()] < count {
                    q.schedule(now, ClusterEvent::Host(HostEvent::AppSend { host }));
                }
            }
            AppBehavior::Poisson {
                size,
                mean_gap,
                limit,
            } => {
                if limit > 0 && self.poisson_sent[host.idx()] >= limit {
                    return;
                }
                self.poisson_sent[host.idx()] += 1;
                // Uniform random destination other than self.
                let n = self.hosts.len() as u64;
                let mut dst = narrow::<u16, _>(self.rngs[host.idx()].below(n - 1));
                if dst >= host.0 {
                    dst += 1;
                }
                self.send_message(host, HostId(dst), size, now, q);
                let gap = self.rngs[host.idx()].exp(mean_gap.as_ns_f64());
                q.schedule_after(
                    SimDuration::from_ns_f64(gap),
                    ClusterEvent::Host(HostEvent::AppSend { host }),
                );
            }
            AppBehavior::AllToAll { size, gap } => {
                let n: u32 = narrow(self.hosts.len());
                let k = self.a2a_sent[host.idx()];
                if k >= n - 1 {
                    return;
                }
                self.a2a_sent[host.idx()] += 1;
                // Destination order: host+1, host+2, ... (mod n), skipping
                // self — every host starts its exchange at a different peer,
                // the standard skew for total exchanges.
                let dst = HostId(narrow((u32::from(host.0) + 1 + k) % n));
                self.send_message(host, dst, size, now, q);
                if self.a2a_sent[host.idx()] < n - 1 {
                    q.schedule_after(gap, ClusterEvent::Host(HostEvent::AppSend { host }));
                }
            }
            AppBehavior::Sink | AppBehavior::Echo => {}
        }
    }

    fn on_app_deliver(
        &mut self,
        host: HostId,
        from: HostId,
        len: u32,
        msg_id: u32,
        now: SimTime,
        q: &mut EventQueue<ClusterEvent>,
    ) {
        // Message ids are allocated per shard, so the record keeper is the
        // *sender's* shard: a numeric match in this replica's map would be a
        // different message entirely. Route the bookkeeping home instead.
        let record_is_local = match &mut self.shard {
            None => true,
            Some(s) => {
                let owner = s.host_shard[from.idx()];
                if owner == s.me {
                    true
                } else {
                    let seq = self.net.alloc_handoff_seq();
                    s.notices[owner as usize].push(DeliveryNotice {
                        at: now,
                        msg_id,
                        from,
                        seq,
                    });
                    false
                }
            }
        };
        if record_is_local {
            if let Some(rec) = self.messages.get_mut(&msg_id) {
                debug_assert_eq!(rec.dst, host, "message delivered to its destination");
                debug_assert_eq!(rec.len, len, "reassembled length matches");
                if rec.delivered_at.is_none() {
                    self.delivered_messages += 1;
                }
                rec.delivered_at = Some(now);
            }
        }
        self.app_deliveries += 1;
        self.delivery_log.push((from, host, msg_id));
        match self.behaviors[host.idx()].clone() {
            AppBehavior::Echo => {
                self.send_message(host, from, len, now, q);
            }
            AppBehavior::PingPong {
                sizes,
                iters,
                warmup,
                ..
            } => {
                let st = &mut self.ping[host.idx()];
                // detlint::allow(S001, a pong is only delivered for an in-flight ping)
                let sent = st.sent_at.take().expect("pong matches an in-flight ping");
                let rtt = now - sent;
                if st.iter >= warmup {
                    st.samples.push((sizes[st.size_ix], rtt));
                }
                st.iter += 1;
                if st.iter >= warmup + iters {
                    st.iter = 0;
                    st.size_ix += 1;
                    if st.size_ix >= sizes.len() {
                        st.done = true;
                        return;
                    }
                }
                q.schedule(now, ClusterEvent::Host(HostEvent::AppSend { host }));
            }
            _ => {}
        }
    }
}

impl World for Cluster {
    type Event = ClusterEvent;

    fn handle(&mut self, now: SimTime, ev: ClusterEvent, q: &mut EventQueue<ClusterEvent>) {
        match ev {
            ClusterEvent::Net(e) => {
                let mut sink = Sink(q);
                self.net.handle(now, e, &mut sink);
            }
            ClusterEvent::Nic(e) => {
                let host = match e {
                    NicEvent::Cpu { host, .. } | NicEvent::Dma { host, .. } => host,
                };
                let mut sink = Sink(q);
                self.nics[host.idx()].handle(now, e, &mut self.net, &mut sink);
            }
            ClusterEvent::Host(e) => self.on_host_event(e, now, q),
            ClusterEvent::Sample => self.on_sample(now, q),
            ClusterEvent::FlowRound => self.on_flow_round(now, q),
        }
        self.pump(now, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_event_stays_small() {
        // The union event is copied through the calendar heap on every
        // schedule/sift; keep it register-friendly. (NicEvent is bounded by
        // its own test; this pins the union's padding too.)
        assert!(
            std::mem::size_of::<ClusterEvent>() <= 40,
            "ClusterEvent grew to {} bytes — box the fat variant instead",
            std::mem::size_of::<ClusterEvent>()
        );
    }
}

//! A standalone flow-only world for planet-scale topologies.
//!
//! The full [`Cluster`](crate::Cluster) keeps a per-pair route table —
//! fine at testbed scale, but a 1024-switch, 4096-host fabric would need
//! ~16.7 million source routes before the first event fires. For the
//! scaling experiments the hybrid engine's *flow side is the whole
//! machine*: [`FlowWorld`] drives a [`FlowNet`] directly under the same
//! deterministic event queue, with seeded arrivals, coarse rate-solve
//! rounds, and per-completion delivery events.
//!
//! Every structure mirrors the hybrid Cluster's flow mode (same solver,
//! same [`ByteInterval`](itb_sim::ByteInterval) quantisation, same
//! round/advance cycle), so throughput measured here is the flow engine's
//! honest cost — the things the Cluster adds (GM windows, the packet
//! fabric) are exactly the things the 1024-switch scenario is designed to
//! avoid.

use itb_net::FlowNet;
use itb_sim::{narrow, EventQueue, SimDuration, SimRng, SimTime, World};
use itb_topo::{HostId, Topology};

/// Events of the flow-only world.
#[derive(Debug, Clone, Copy)]
pub enum FlowWorldEvent {
    /// Host `host` opens its next flow (seeded destination and size).
    Arrival {
        /// The opening host.
        host: u32,
    },
    /// Round boundary: re-solve rates, commit one round of service.
    Round,
    /// A flow's bytes fully arrived at its destination.
    Deliver {
        /// The completed flow's id.
        id: u64,
    },
}

/// Workload parameters for [`FlowWorld`].
#[derive(Debug, Clone, Copy)]
pub struct FlowWorldSpec {
    /// Flows each host opens over the run.
    pub flows_per_host: u32,
    /// Bytes per flow.
    pub flow_bytes: u64,
    /// Mean inter-arrival gap per host (exponential, quantised through
    /// the sanctioned crossing).
    pub mean_gap: SimDuration,
    /// Rate-solve round length.
    pub round: SimDuration,
    /// Master seed for the per-host arrival streams.
    pub seed: u64,
    /// Link capacity in bytes/ns (0.16 = the 160 MB/s Myrinet link).
    pub link_bytes_per_ns: f64,
}

/// The flow-only machine: a [`FlowNet`] under an event loop.
pub struct FlowWorld {
    net: FlowNet,
    hosts: usize,
    spec: FlowWorldSpec,
    rngs: Vec<SimRng>,
    opened: Vec<u32>,
    next_id: u64,
    round_armed: bool,
    delivered: u64,
    peak_live: usize,
    /// Per-flow service touches across all rounds — the flow engine's
    /// equivalent of dispatched flit events, for throughput accounting.
    service_ops: u64,
}

impl FlowWorld {
    /// Build the world over `topo`. O(V·E) route preprocessing happens
    /// here (see [`FlowNet::new`]).
    pub fn new(topo: &Topology, spec: FlowWorldSpec) -> Self {
        let hosts = topo.num_hosts();
        assert!(hosts >= 2, "flows need two hosts");
        let master = SimRng::new(spec.seed);
        FlowWorld {
            net: FlowNet::new(topo, spec.link_bytes_per_ns),
            hosts,
            spec,
            rngs: (0..hosts as u64).map(|h| master.child(h)).collect(),
            opened: vec![0; hosts],
            next_id: 0,
            round_armed: false,
            delivered: 0,
            peak_live: 0,
            service_ops: 0,
        }
    }

    /// Schedule every host's first arrival.
    pub fn start(&mut self, q: &mut EventQueue<FlowWorldEvent>) {
        for h in 0..self.hosts {
            if self.spec.flows_per_host == 0 {
                break;
            }
            let gap = self.rngs[h].exp(self.spec.mean_gap.as_ns_f64());
            q.schedule(
                SimTime::ZERO + SimDuration::from_ns_f64(gap),
                FlowWorldEvent::Arrival { host: narrow(h) },
            );
        }
    }

    /// Flows fully delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Most flows ever live at once (the scenario's concurrency witness).
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Flows currently live.
    pub fn live(&self) -> usize {
        self.net.len()
    }

    /// Per-flow service touches across all rounds (flow-engine equivalent
    /// of dispatched flit events).
    pub fn service_ops(&self) -> u64 {
        self.service_ops
    }

    /// Rate solves run so far.
    pub fn solves(&self) -> u64 {
        self.net.solves()
    }

    /// Total bytes delivered.
    pub fn bytes_delivered(&self) -> u64 {
        self.net.bytes_delivered()
    }

    fn on_arrival(&mut self, host: u32, now: SimTime, q: &mut EventQueue<FlowWorldEvent>) {
        let h = host as usize;
        if self.opened[h] >= self.spec.flows_per_host {
            return;
        }
        self.opened[h] += 1;
        // Uniform random destination other than self — the same discipline
        // as the Poisson cluster workload.
        let mut dst = narrow::<u16, _>(self.rngs[h].below(self.hosts as u64 - 1));
        if usize::from(dst) >= h {
            dst += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.net
            .open(id, HostId(narrow(h)), HostId(dst), self.spec.flow_bytes);
        self.peak_live = self.peak_live.max(self.net.len());
        if !self.round_armed {
            self.round_armed = true;
            q.schedule(now + self.spec.round, FlowWorldEvent::Round);
        }
        if self.opened[h] < self.spec.flows_per_host {
            let gap = self.rngs[h].exp(self.spec.mean_gap.as_ns_f64());
            q.schedule_after(
                SimDuration::from_ns_f64(gap),
                FlowWorldEvent::Arrival { host },
            );
        }
    }

    fn on_round(&mut self, now: SimTime, q: &mut EventQueue<FlowWorldEvent>) {
        self.net.solve();
        self.service_ops += self.net.len() as u64;
        for done in self.net.advance(self.spec.round) {
            q.schedule(now + done.offset, FlowWorldEvent::Deliver { id: done.id });
        }
        if self.net.is_empty() {
            self.round_armed = false;
        } else {
            q.schedule(now + self.spec.round, FlowWorldEvent::Round);
        }
    }
}

impl World for FlowWorld {
    type Event = FlowWorldEvent;

    fn handle(&mut self, now: SimTime, ev: FlowWorldEvent, q: &mut EventQueue<FlowWorldEvent>) {
        match ev {
            FlowWorldEvent::Arrival { host } => self.on_arrival(host, now, q),
            FlowWorldEvent::Round => self.on_round(now, q),
            FlowWorldEvent::Deliver { .. } => self.delivered += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_sim::run_until;
    use itb_topo::builders;

    fn small_spec(seed: u64) -> FlowWorldSpec {
        FlowWorldSpec {
            flows_per_host: 3,
            flow_bytes: 4_096,
            mean_gap: SimDuration::from_us(20),
            round: SimDuration::from_us(50),
            seed,
            link_bytes_per_ns: 0.16,
        }
    }

    #[test]
    fn drains_every_flow_and_counts_concurrency() {
        let topo = builders::irregular_big(8, 3);
        let mut w = FlowWorld::new(&topo, small_spec(42));
        let mut q = EventQueue::new();
        w.start(&mut q);
        run_until(&mut w, &mut q, SimTime::from_ms(500));
        let total = u64::from(w.spec.flows_per_host) * topo.num_hosts() as u64;
        assert_eq!(w.delivered(), total, "every flow completes");
        assert_eq!(w.live(), 0);
        assert!(w.peak_live() > 1, "arrivals overlap");
        assert_eq!(w.bytes_delivered(), total * 4_096);
        assert!(w.solves() > 0 && w.service_ops() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let topo = builders::irregular_big(8, 3);
            let mut w = FlowWorld::new(&topo, small_spec(7));
            let mut q = EventQueue::new();
            w.start(&mut q);
            run_until(&mut w, &mut q, SimTime::from_ms(500));
            (w.delivered(), w.peak_live(), w.service_ops(), q.now())
        };
        assert_eq!(run(), run());
    }
}

//! Sharded parallel execution of a [`Cluster`] (conservative PDES).
//!
//! One [`Cluster`] replica per shard, each built from identical parameters,
//! then specialized with [`Cluster::set_shard`]: the replica kicks off only
//! the hosts its shard owns and its network captures cross-shard effects
//! (flits over cut cables, upstream STOP/GO control bytes) into handoff
//! buffers instead of scheduling them locally. The generic window driver
//! ([`itb_sim::par::run_shards`]) synchronizes the shards and moves the
//! handoffs; this module supplies the [`ShardWorld`] glue plus the
//! lookahead derivation.
//!
//! ## Lookahead
//!
//! Every cross-shard effect is one of:
//! * a flit crossing a cut cable — earliest arrival `now + ser + prop`
//!   where `ser ≥ link_bw.transfer_time(1)` and `prop ≥` the minimum cut
//!   propagation delay;
//! * a STOP/GO control byte to an upstream switch — arrival
//!   `now + ctrl_latency`;
//! * a delivery notice — pure bookkeeping, no scheduled event.
//!
//! so `lookahead = min(ctrl_latency, min_cut_prop + transfer_time(1))` is a
//! sound conservative bound, derived from the partition at setup time.
//!
//! ## Determinism
//!
//! Shard queues stamp their shard id into the schedule rank
//! ([`itb_sim::EventQueue::set_shard_rank`]) and absorbed handoffs keep the
//! rank of their original producer, so events merge in the order the
//! sequential run dispatches them — with the one documented exception of
//! *cross-shard rank ties* (same fire time **and** same producer time on
//! different shards), which parallel breaks by shard id (see
//! [`itb_sim::par`] module docs). Every run counts those ties;
//! [`ParRunReport::cross_shard_ties`]` == 0` proves the run byte-identical
//! to `ITB_THREADS=1`. The small equivalence-test workloads are tie-free;
//! the large benchmark loads do tie at scale yet still match sequential on
//! every order-sensitive observable — an empirical property re-verified on
//! every change by `tests/par_equivalence.rs` and the unconditional CI
//! 1-vs-4 digest byte-compare, not assumed. Runs are reproducible for a
//! fixed shard count either way.

use crate::cluster::{Cluster, ClusterEvent, DeliveryNotice};
use itb_net::NetHandoff;
use itb_sim::par::{run_shards, run_shards_profiled, Envelope, ParProfile, ShardWorld};
use itb_sim::{narrow, EventQueue, SimDuration, SimTime, World};
use itb_topo::Partition;

/// Cross-shard payload of the integrated cluster.
pub enum ShardMsg {
    /// A network effect (flit over a cut cable, upstream control byte).
    Net(NetHandoff),
    /// Message-delivery bookkeeping for the sender's shard.
    Delivered(DeliveryNotice),
}

/// One shard of a parallel cluster run: a specialized replica plus its
/// private event queue.
pub struct ShardCluster {
    /// The shard's cluster replica.
    pub cluster: Cluster,
    /// The shard's event queue.
    pub q: EventQueue<ClusterEvent>,
    me: u32,
}

impl ShardWorld for ShardCluster {
    type Msg = ShardMsg;

    fn next_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    fn run_window(&mut self, limit: SimTime) {
        while self.q.peek_time().is_some_and(|t| t < limit) {
            // detlint::allow(S001, pop follows a successful peek under the same borrow)
            let (now, ev) = self.q.pop().expect("peeked entry vanished");
            self.cluster.handle(now, ev, &mut self.q);
        }
    }

    fn take_outbox(&mut self, dst: u32) -> Vec<Envelope<ShardMsg>> {
        let me = self.me;
        let mut out: Vec<Envelope<ShardMsg>> = self
            .cluster
            .net
            .take_net_outbox(dst)
            .into_iter()
            .map(|h| Envelope {
                fire_at: h.fire_at(),
                rank_time: h.rank_time(),
                src_shard: me,
                src_seq: h.seq(),
                msg: ShardMsg::Net(h),
            })
            .collect();
        out.extend(
            self.cluster
                .take_delivery_notices(dst)
                .into_iter()
                .map(|n| Envelope {
                    fire_at: n.at,
                    rank_time: n.at,
                    src_shard: me,
                    src_seq: n.seq,
                    msg: ShardMsg::Delivered(n),
                }),
        );
        out
    }

    fn absorb(&mut self, env: Envelope<ShardMsg>) {
        match env.msg {
            ShardMsg::Net(h) => {
                let ev = self.cluster.net.adopt_handoff(h);
                self.q.schedule_ranked(
                    env.fire_at,
                    env.rank_time,
                    env.src_shard,
                    ClusterEvent::Net(ev),
                );
            }
            // Pure bookkeeping: no event to schedule, the record is
            // updated immediately (merge order keeps it deterministic, and
            // application is commutative across distinct message ids).
            ShardMsg::Delivered(n) => self.cluster.apply_delivery_notice(n),
        }
    }

    fn cross_shard_ties(&self) -> u64 {
        self.q.cross_shard_ties()
    }

    fn events_dispatched(&self) -> u64 {
        self.q.events_dispatched()
    }
}

/// Aggregated result of one parallel cluster run.
#[derive(Debug, Clone)]
pub struct ParRunReport {
    /// Worker threads (= shards actually used).
    pub threads: u32,
    /// Cut cables between shards.
    pub edge_cut: usize,
    /// Conservative window bound derived from the partition.
    pub lookahead: SimDuration,
    /// Synchronized execution windows.
    pub windows: u64,
    /// Total events dispatched across all shards (equals the sequential
    /// run's count).
    pub events: u64,
    /// Events dispatched per shard, in shard order.
    pub per_shard_events: Vec<u64>,
    /// Messages delivered (first deliveries; equals sequential).
    pub delivered: u64,
    /// Packets injected (equals sequential).
    pub injected: u64,
    /// Final simulated time: the maximum shard clock.
    pub sim_time: SimTime,
    /// Cross-shard rank ties summed over every shard queue. 0 proves the
    /// run dispatched events in exactly the sequential order (the
    /// byte-identical contract); see [`itb_sim::par`] docs.
    pub cross_shard_ties: u64,
}

/// Conservative lookahead for `part` under `cluster`'s network config:
/// `min(ctrl_latency, min_cut_propagation + transfer_time(1 byte))`. With
/// no cut cables (single shard) the control latency alone bounds windows.
pub fn lookahead_for(cluster: &Cluster, part: &Partition) -> SimDuration {
    let cfg = cluster.net.config();
    let ctrl = cfg.ctrl_latency;
    match part.min_cut_propagation {
        Some(prop) => ctrl.min(prop + cfg.link_bw.transfer_time(1)),
        None => ctrl,
    }
}

/// Run `replicas` (identical, freshly built, not yet started) as the shards
/// of `part` up to `horizon` (inclusive), one OS thread per shard.
///
/// Returns the shard worlds (for per-shard inspection) and the aggregated
/// [`ParRunReport`] whose event/delivery/injection totals match the
/// sequential run of the same parameters.
///
/// # Panics
/// Panics if `replicas.len() != part.shards` or on any sharding
/// precondition (fault plans, timelines and tracing are incompatible with
/// parallel mode; see [`Cluster::set_shard`]).
pub fn run_cluster_shards(
    replicas: Vec<Cluster>,
    part: &Partition,
    horizon: SimTime,
) -> (Vec<ShardCluster>, ParRunReport) {
    let (worlds, report, _) = run_cluster_shards_impl(replicas, part, horizon, false);
    (worlds, report)
}

/// [`run_cluster_shards`] with the per-(shard, window) epoch profiler
/// enabled: additionally returns the [`ParProfile`] of the run (window
/// spans, per-window events/envelopes/ties, barrier-wait wall-ns — see
/// [`itb_sim::par::WindowRecord`] for which fields are deterministic).
/// Profiling allocates one record per shard per window; the unprofiled
/// entry point pays neither that memory nor the barrier stopwatch.
///
/// # Panics
/// Same contract as [`run_cluster_shards`].
pub fn run_cluster_shards_profiled(
    replicas: Vec<Cluster>,
    part: &Partition,
    horizon: SimTime,
) -> (Vec<ShardCluster>, ParRunReport, ParProfile) {
    run_cluster_shards_impl(replicas, part, horizon, true)
}

fn run_cluster_shards_impl(
    replicas: Vec<Cluster>,
    part: &Partition,
    horizon: SimTime,
    profile: bool,
) -> (Vec<ShardCluster>, ParRunReport, ParProfile) {
    assert_eq!(
        replicas.len(),
        part.shards as usize,
        "one replica per shard"
    );
    let mut worlds = Vec::with_capacity(replicas.len());
    let mut lookahead = None;
    for (i, mut cluster) in replicas.into_iter().enumerate() {
        let me: u32 = narrow(i);
        cluster.set_shard(me, part);
        let mut q = EventQueue::new();
        q.set_shard_rank(me);
        cluster.start(&mut q);
        lookahead.get_or_insert_with(|| lookahead_for(&cluster, part));
        worlds.push(ShardCluster { cluster, q, me });
    }
    // detlint::allow(S001, the replica count was asserted nonzero via part.shards >= 1)
    let lookahead = lookahead.expect("at least one shard");

    let (worlds, report, prof) = if profile {
        run_shards_profiled(worlds, lookahead, horizon)
    } else {
        let (worlds, report) = run_shards(worlds, lookahead, horizon);
        (worlds, report, ParProfile::default())
    };

    let per_shard_events: Vec<u64> = worlds.iter().map(|w| w.q.events_dispatched()).collect();
    let events = per_shard_events.iter().sum();
    let delivered = worlds
        .iter()
        .map(|w| w.cluster.delivered_count() as u64)
        .sum();
    let injected = worlds.iter().map(|w| w.cluster.net.stats().injected).sum();
    let sim_time = worlds
        .iter()
        .map(|w| w.q.now())
        .max()
        .unwrap_or(SimTime::ZERO);
    let agg = ParRunReport {
        threads: report.threads,
        edge_cut: part.edge_cut,
        lookahead,
        windows: report.windows,
        events,
        per_shard_events,
        delivered,
        injected,
        sim_time,
        cross_shard_ties: report.cross_shard_ties,
    };
    (worlds, agg, prof)
}

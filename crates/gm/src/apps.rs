//! Application behaviours driving the cluster.

use itb_sim::SimDuration;
use itb_topo::HostId;
use serde::{Deserialize, Serialize};

/// What a host's application does.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AppBehavior {
    /// Passive: consume messages, do nothing.
    Sink,
    /// Respond to every delivered message with an equal-size message back
    /// to the sender (the responder half of `gm_allsize`).
    Echo,
    /// The initiator half of the `gm_allsize` latency test: for each size,
    /// send a message to `peer`, wait for the equal-size echo, repeat
    /// `iters` times (after `warmup` unrecorded iterations), recording each
    /// round-trip.
    PingPong {
        /// Echo peer.
        peer: HostId,
        /// Message sizes to sweep, in order.
        sizes: Vec<u32>,
        /// Recorded iterations per size.
        iters: u32,
        /// Unrecorded warm-up iterations per size.
        warmup: u32,
    },
    /// Send `count` back-to-back messages of `size` bytes to `dst`
    /// (bandwidth/stream testing).
    Stream {
        /// Destination host.
        dst: HostId,
        /// Message size in bytes.
        size: u32,
        /// Number of messages.
        count: u32,
    },
    /// Open-loop Poisson traffic: messages of `size` bytes to uniformly
    /// random destinations at mean interval `mean_gap` (the loaded-network
    /// workload of the motivation experiments).
    Poisson {
        /// Message size in bytes.
        size: u32,
        /// Mean inter-arrival gap.
        mean_gap: SimDuration,
        /// Stop generating after this many messages (0 = unlimited).
        limit: u32,
    },
    /// Total exchange: send one `size`-byte message to every other host,
    /// `gap` apart — the all-to-all phase of distributed applications,
    /// modelling the paper's stated next step ("the impact of using ITBs in
    /// the execution time of distributed applications").
    AllToAll {
        /// Message size in bytes.
        size: u32,
        /// Spacing between successive sends from this host.
        gap: SimDuration,
    },
}

/// Per-host ping-pong progress.
#[derive(Debug, Clone, Default)]
pub struct PingPongState {
    /// Index into `sizes`.
    pub size_ix: usize,
    /// Iterations completed at the current size (including warmup).
    pub iter: u32,
    /// Send timestamp of the in-flight ping.
    pub sent_at: Option<itb_sim::SimTime>,
    /// Recorded samples: (size, round-trip time).
    pub samples: Vec<(u32, SimDuration)>,
    /// Whether the whole sweep finished.
    pub done: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_is_cloneable_and_serializable() {
        let b = AppBehavior::PingPong {
            peer: HostId(1),
            sizes: vec![8, 64],
            iters: 10,
            warmup: 2,
        };
        let s = serde_json_compatible(&b);
        assert!(s.contains("PingPong"));
        let _ = b.clone();
    }

    fn serde_json_compatible(b: &AppBehavior) -> String {
        // serde_json is not a dev-dependency here; use the Debug form as a
        // proxy for structural integrity.
        format!("{b:?}")
    }
}

//! # itb-gm — the GM host software model and the integrated cluster
//!
//! GM is the message-passing system the paper modified: a host library plus
//! the MCP firmware. This crate models the host side and glues every layer
//! into one simulated cluster:
//!
//! * [`meta`] — the GM packet metadata carried in the simulator's payload
//!   tag (DATA/ACK kind, message id, sequence number);
//! * [`config::GmConfig`] — host-side costs (send/receive processing, MTU,
//!   retransmission timeout) and the reliability switch;
//! * [`host::Host`] — per-host GM state: message segmentation/reassembly,
//!   per-peer connections with cumulative ACKs and go-back-N retransmission
//!   (GM's "reliable and ordered packet delivery in presence of network
//!   faults"), and the mapper-installed route table;
//! * [`apps`] — application behaviours: the `gm_allsize`-style ping-pong
//!   used in the paper's evaluation, echo responders, streaming senders and
//!   Poisson traffic generators for the loaded-network experiments;
//! * [`cluster::Cluster`] — the complete simulated machine room: network +
//!   NICs + hosts behind one deterministic event loop.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod apps;
pub mod cluster;
pub mod config;
pub mod flowworld;
pub mod host;
pub mod mapper;
pub mod meta;
pub mod par;

pub use apps::AppBehavior;
pub use cluster::{Cluster, ClusterEvent, DeliveryNotice, MsgRecord, ESCALATE_CONTENTION};
pub use config::GmConfig;
pub use flowworld::{FlowWorld, FlowWorldEvent, FlowWorldSpec};
pub use par::{run_cluster_shards, run_cluster_shards_profiled, ParRunReport, ShardCluster};

//! Full-stack cluster tests: GM hosts over NICs over the wormhole network.

use itb_gm::cluster::ClusterParams;
use itb_gm::{AppBehavior, Cluster, GmConfig};
use itb_net::{FaultPlan, NetConfig};
use itb_nic::{McpFlavor, McpTiming};
use itb_routing::{figures, RoutingPolicy};
use itb_sim::{run_until, run_while, EventQueue, SimDuration, SimTime};
use itb_topo::builders::{fig6_testbed, random_irregular, IrregularSpec};

fn fig6_params(flavor: McpFlavor, behaviors: Vec<AppBehavior>) -> ClusterParams {
    let tb = fig6_testbed();
    ClusterParams {
        topo: tb.topo.clone(),
        net: NetConfig::default(),
        mcp: McpTiming::lanai7(),
        flavor,
        routing: RoutingPolicy::UpDown,
        itb_selection: itb_routing::planner::ItbHostSelection::RoundRobin,
        gm: GmConfig::default(),
        behaviors,
        route_overrides: vec![],
        faults: FaultPlan::default(),
        seed: 1,
    }
}

#[test]
fn pingpong_on_testbed_completes() {
    let tb = fig6_testbed();
    let behaviors = vec![
        AppBehavior::PingPong {
            peer: tb.host2,
            sizes: vec![32, 256, 1024],
            iters: 5,
            warmup: 2,
        },
        AppBehavior::Sink, // in-transit host idle
        AppBehavior::Echo,
    ];
    let mut c = Cluster::new(fig6_params(McpFlavor::Original, behaviors));
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_while(&mut c, &mut q, |c| !c.all_pingpongs_done());
    let st = c.ping_state(tb.host1);
    assert!(st.done);
    assert_eq!(st.samples.len(), 3 * 5);
    // Latencies grow with size.
    let mean = |sz: u32| {
        let v: Vec<f64> = st
            .samples
            .iter()
            .filter(|&&(s, _)| s == sz)
            .map(|&(_, d)| d.as_us_f64())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(mean(32) < mean(256));
    assert!(mean(256) < mean(1024));
    // Short-message half-RTT lands in the GM-era ballpark (≈5–20 us).
    let half = mean(32) / 2.0;
    assert!(
        (5.0..20.0).contains(&half),
        "short half-RTT {half} us out of band"
    );
}

#[test]
fn itb_route_override_forwards_through_host() {
    let tb = fig6_testbed();
    let behaviors = vec![
        AppBehavior::PingPong {
            peer: tb.host2,
            sizes: vec![64],
            iters: 3,
            warmup: 1,
        },
        AppBehavior::Sink,
        AppBehavior::Echo,
    ];
    let mut p = fig6_params(McpFlavor::Itb, behaviors);
    p.route_overrides = vec![
        figures::fig8_itb_route(&tb),
        figures::fig8_return_route(&tb),
    ];
    let mut c = Cluster::new(p);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_while(&mut c, &mut q, |c| !c.all_pingpongs_done());
    assert!(c.ping_state(tb.host1).done);
    // Every ping crossed the in-transit host (4 = 1 warmup + 3 iters), and
    // host1's ACKs of the echoes ride the same overridden h1->h2 route, so
    // up to 8 forwards happen (the final ACK may still be in flight when the
    // sweep finishes).
    let itb_nic = c.nic(tb.itb_host);
    assert!(
        (4..=8).contains(&itb_nic.stats().itb_forwards),
        "forwards: {}",
        itb_nic.stats().itb_forwards
    );
    assert_eq!(itb_nic.stats().recvs, 0);
}

#[test]
fn fig8_udvsitb_difference_at_cluster_level() {
    // Full-stack version of the paper's Figure 8 measurement.
    let tb = fig6_testbed();
    let run = |overrides: Vec<itb_routing::SourceRoute>| {
        let behaviors = vec![
            AppBehavior::PingPong {
                peer: tb.host2,
                sizes: vec![128],
                iters: 10,
                warmup: 3,
            },
            AppBehavior::Sink,
            AppBehavior::Echo,
        ];
        let mut p = fig6_params(McpFlavor::Itb, behaviors);
        p.route_overrides = overrides;
        let mut c = Cluster::new(p);
        let mut q = EventQueue::new();
        c.start(&mut q);
        run_while(&mut c, &mut q, |c| !c.all_pingpongs_done());
        let st = c.ping_state(tb.host1);
        let mean_rtt: f64 =
            st.samples.iter().map(|&(_, d)| d.as_us_f64()).sum::<f64>() / st.samples.len() as f64;
        mean_rtt / 2.0
    };
    let ud = run(vec![
        figures::fig8_ud_route(&tb),
        figures::fig8_return_route(&tb),
    ]);
    let itb = run(vec![
        figures::fig8_itb_route(&tb),
        figures::fig8_return_route(&tb),
    ]);
    // Only the h1->h2 direction carries the ITB, so — exactly as the paper
    // does — the per-ITB overhead is twice the half-round-trip difference.
    let overhead = (itb - ud) * 2.0;
    assert!(
        (0.9..=1.7).contains(&overhead),
        "per-ITB overhead {overhead} us (paper: ≈1.3 us)"
    );
}

#[test]
fn multi_packet_message_reassembles() {
    let tb = fig6_testbed();
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 20_000, // 5 packets at MTU 4096
            count: 3,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = Cluster::new(fig6_params(McpFlavor::Original, behaviors));
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(50));
    assert_eq!(c.delivered_count(), 3);
    for rec in c.messages().values() {
        assert_eq!(rec.len, 20_000);
        assert!(rec.delivered_at.is_some());
    }
}

#[test]
fn flushed_packets_recover_via_retransmission() {
    // Tiny receive pool at host2 + a burst of messages → some packets are
    // flushed; go-back-N must still deliver every message exactly once.
    let tb = fig6_testbed();
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 4_000,
            count: 10,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut p = fig6_params(McpFlavor::Original, behaviors);
    p.mcp.recv_buffers = 1; // starve the receiver
    p.mcp.flush_on_overflow = true;
    let mut c = Cluster::new(p);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(200));
    assert_eq!(c.delivered_count(), 10, "reliability must recover flushes");
    let flushed = c.nic(tb.host2).stats().flushed;
    assert!(
        flushed > 0,
        "the starved pool should have flushed something"
    );
    let retrans = c.host(tb.host1).tx[tb.host2.idx()].retransmissions;
    assert!(retrans > 0, "recovery must have used retransmissions");
}

#[test]
fn poisson_traffic_on_irregular_network_delivers_exactly_once() {
    let topo = random_irregular(&IrregularSpec::evaluation_default(8, 42));
    let n = topo.num_hosts();
    let behaviors = vec![
        AppBehavior::Poisson {
            size: 512,
            mean_gap: SimDuration::from_us(50),
            limit: 20,
        };
        n
    ];
    let params = ClusterParams {
        topo,
        net: NetConfig::default(),
        mcp: McpTiming::lanai7(),
        flavor: McpFlavor::Itb,
        routing: RoutingPolicy::Itb,
        itb_selection: itb_routing::planner::ItbHostSelection::RoundRobin,
        gm: GmConfig::default(),
        behaviors,
        route_overrides: vec![],
        faults: FaultPlan::default(),
        seed: 7,
    };
    let mut c = Cluster::new(params);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(100));
    let total = c.messages().len();
    assert_eq!(total, n * 20);
    let delivered = c.delivered_count();
    assert_eq!(delivered, total, "every message delivered exactly once");
    // Latency sanity: all records have delivery after send.
    for rec in c.messages().values() {
        assert!(rec.delivered_at.unwrap() > rec.sent_at);
    }
}

#[test]
fn updown_and_itb_routing_both_work_loaded() {
    for policy in [RoutingPolicy::UpDown, RoutingPolicy::Itb] {
        let topo = random_irregular(&IrregularSpec::evaluation_default(8, 3));
        let n = topo.num_hosts();
        let behaviors = vec![
            AppBehavior::Poisson {
                size: 256,
                mean_gap: SimDuration::from_us(30),
                limit: 10,
            };
            n
        ];
        let params = ClusterParams {
            topo,
            net: NetConfig::default(),
            mcp: McpTiming::lanai7(),
            flavor: McpFlavor::Itb,
            routing: policy,
            itb_selection: itb_routing::planner::ItbHostSelection::RoundRobin,
            gm: GmConfig::default(),
            behaviors,
            route_overrides: vec![],
            faults: FaultPlan::default(),
            seed: 9,
        };
        let mut c = Cluster::new(params);
        let mut q = EventQueue::new();
        c.start(&mut q);
        run_until(&mut c, &mut q, SimTime::from_ms(100));
        assert_eq!(c.delivered_count(), n * 10, "policy {policy:?}");
    }
}

#[test]
fn determinism_same_seed_same_results() {
    let run = || {
        let topo = random_irregular(&IrregularSpec::evaluation_default(6, 5));
        let n = topo.num_hosts();
        let behaviors = vec![
            AppBehavior::Poisson {
                size: 128,
                mean_gap: SimDuration::from_us(40),
                limit: 5,
            };
            n
        ];
        let params = ClusterParams {
            topo,
            net: NetConfig::default(),
            mcp: McpTiming::lanai7(),
            flavor: McpFlavor::Itb,
            routing: RoutingPolicy::Itb,
            itb_selection: itb_routing::planner::ItbHostSelection::RoundRobin,
            gm: GmConfig::default(),
            behaviors,
            route_overrides: vec![],
            faults: FaultPlan::default(),
            seed: 11,
        };
        let mut c = Cluster::new(params);
        let mut q = EventQueue::new();
        c.start(&mut q);
        run_until(&mut c, &mut q, SimTime::from_ms(50));
        let mut v: Vec<_> = c
            .messages()
            .iter()
            .map(|(&id, r)| (id, r.sent_at, r.delivered_at))
            .collect();
        v.sort();
        v
    };
    assert_eq!(run(), run());
}

#[test]
#[should_panic(expected = "ITB routes require the ITB-enabled MCP")]
fn itb_routing_on_original_mcp_is_rejected() {
    let tb = fig6_testbed();
    let params = ClusterParams {
        topo: tb.topo.clone(),
        net: NetConfig::default(),
        mcp: McpTiming::lanai7(),
        flavor: McpFlavor::Original,
        routing: RoutingPolicy::Itb,
        itb_selection: itb_routing::planner::ItbHostSelection::RoundRobin,
        gm: GmConfig::default(),
        behaviors: vec![AppBehavior::Sink; 3],
        route_overrides: vec![],
        faults: FaultPlan::default(),
        seed: 0,
    };
    let _ = Cluster::new(params);
}

#[test]
fn zero_length_message_works() {
    let tb = fig6_testbed();
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 0,
            count: 1,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = Cluster::new(fig6_params(McpFlavor::Original, behaviors));
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(5));
    assert_eq!(c.delivered_count(), 1);
}

#[test]
fn all_to_all_exchange_completes_exactly() {
    let topo = random_irregular(&IrregularSpec::evaluation_default(4, 6));
    let n = topo.num_hosts();
    let behaviors = vec![
        AppBehavior::AllToAll {
            size: 256,
            gap: SimDuration::from_us(20),
        };
        n
    ];
    let params = ClusterParams {
        topo,
        net: NetConfig::default(),
        mcp: McpTiming::lanai7(),
        flavor: McpFlavor::Itb,
        routing: RoutingPolicy::Itb,
        itb_selection: itb_routing::planner::ItbHostSelection::RoundRobin,
        gm: GmConfig {
            retrans_timeout: SimDuration::from_ms(20),
            ..GmConfig::default()
        },
        behaviors,
        route_overrides: vec![],
        faults: FaultPlan::default(),
        seed: 3,
    };
    let mut c = Cluster::new(params);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(100));
    // Every ordered pair exchanged exactly one message.
    assert_eq!(c.messages().len(), n * (n - 1));
    assert_eq!(c.delivered_count(), n * (n - 1));
    let mut pairs: Vec<(u16, u16)> = c.messages().values().map(|r| (r.src.0, r.dst.0)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    assert_eq!(pairs.len(), n * (n - 1), "no duplicate pair traffic");
}

#[test]
fn send_window_prevents_spurious_retransmissions() {
    // A long back-to-back stream through a healthy network must complete
    // with ZERO retransmissions: the window keeps the timer honest.
    let tb = fig6_testbed();
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 4096,
            count: 40,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut c = Cluster::new(fig6_params(McpFlavor::Original, behaviors));
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(100));
    assert_eq!(c.delivered_count(), 40);
    assert_eq!(
        c.host(tb.host1).tx[tb.host2.idx()].retransmissions,
        0,
        "healthy network must not retransmit"
    );
}

#[test]
fn receive_backpressure_stalls_instead_of_dropping() {
    // Stock overflow policy (no flush): a starved receiver stalls the wire;
    // everything still arrives, with zero flushes and zero retransmissions.
    let tb = fig6_testbed();
    let behaviors = vec![
        AppBehavior::Stream {
            dst: tb.host2,
            size: 2000,
            count: 15,
        },
        AppBehavior::Sink,
        AppBehavior::Sink,
    ];
    let mut p = fig6_params(McpFlavor::Original, behaviors);
    p.mcp.recv_buffers = 1; // starve, but with backpressure (default policy)
    let mut c = Cluster::new(p);
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, SimTime::from_ms(100));
    assert_eq!(c.delivered_count(), 15);
    assert_eq!(c.nic(tb.host2).stats().flushed, 0);
    assert!(c.nic(tb.host2).stats().rx_stalls > 0, "stalls must occur");
    assert_eq!(c.host(tb.host1).tx[tb.host2.idx()].retransmissions, 0);
}

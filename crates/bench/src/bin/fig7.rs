//! Regenerate **Figure 7**: average half-round-trip latency versus message
//! length for the original and ITB-enabled MCP, plus the per-size overhead
//! and the paper's summary row (average/max overhead).
//!
//! `cargo run --release -p itb-bench --bin fig7 [iters]`

use itb_core::experiments::{fig7, traced_one_way};
use itb_obs::export::{write_chrome_trace, write_jsonl};
use itb_obs::Attribution;

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100); // the paper averages 100 iterations per size
    eprintln!("running Figure 7 ({iters} iterations per size)...");
    let f = fig7(iters);

    println!("# Figure 7 — message latency overhead of the new GM/MCP code");
    println!(
        "{:>8} {:>18} {:>18} {:>14}",
        "bytes", "original(us)", "modified(us)", "overhead(ns)"
    );
    let over = f.overhead_ns();
    for ((o, m), (_, d)) in f
        .original
        .points
        .iter()
        .zip(&f.modified.points)
        .zip(&over.points)
    {
        println!(
            "{:>8} {:>18.3} {:>18.3} {:>14.0}",
            o.size,
            o.half_rtt_ns.mean() / 1000.0,
            m.half_rtt_ns.mean() / 1000.0,
            d
        );
    }
    let (avg, max) = f.summary();
    println!();
    println!("average overhead : {avg:.0} ns   (paper: ~125 ns)");
    println!("maximum overhead : {max:.0} ns   (paper: does not exceed 300 ns)");
    // Relative overhead, as the paper quotes (1% short -> 0.4% long).
    let rel_small = over.points[0].1 / (f.original.points[0].half_rtt_ns.mean()) * 100.0;
    let last = f.original.points.len() - 1;
    let rel_large = over.points[last].1 / (f.original.points[last].half_rtt_ns.mean()) * 100.0;
    println!("relative overhead: {rel_small:.2}% (short) -> {rel_large:.2}% (long)   (paper: 1% -> 0.4%)");

    let orig_pts = f.original.to_series().points;
    let mod_pts = f.modified.to_series().points;
    println!();
    print!(
        "{}",
        itb_bench::ascii_chart(
            &[
                ("Original MCP code (half-RTT us)", &orig_pts),
                ("Modified MCP code", &mod_pts),
            ],
            64,
            14,
        )
    );

    itb_bench::dump_json("fig7", &f);

    // One traced message over the plain UD route (ITB-enabled MCP): the
    // trace shows the ~125 ns Fig. 7 overhead lives entirely in Injection
    // and Delivery — no ItbHop time on a direct path.
    let run = traced_one_way(64, false);
    let attr = run.attribution();
    let e2e: f64 = attr.iter().map(|&(_, ns)| ns).sum();
    let itb = attr
        .iter()
        .find(|&&(a, _)| a == Attribution::ItbHop)
        .map(|&(_, ns)| ns)
        .unwrap_or(0.0);
    println!();
    println!(
        "traced 64 B message on the UD route: {:.0} ns end to end, {itb:.0} ns in ITB firmware",
        e2e
    );
    itb_bench::dump_stream("fig7_trace.jsonl", |w| write_jsonl(&run.tracer, w));
    itb_bench::dump_stream("fig7_trace_chrome.json", |w| {
        write_chrome_trace(&run.tracer, w)
    });
}

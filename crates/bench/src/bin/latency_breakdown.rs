//! Diagnostic: where does a message's latency go? Decomposes one-way
//! latency on the Figure 6 testbed into pipeline stages using the
//! simulator's per-packet timelines — the map from the calibrated constants
//! (DESIGN.md §5) to the curves of Figures 7 and 8.
//!
//! `cargo run --release -p itb-bench --bin latency_breakdown [size]`

use itb_core::experiments::{latency_breakdown, traced_one_way};
use itb_core::{ClusterSpec, McpFlavor};

fn main() {
    let sizes: Vec<u32> = match std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        Some(one) => vec![one],
        None => vec![32, 1024, 4096],
    };
    let spec = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    let tb = spec.testbed.clone().expect("testbed");

    for &size in &sizes {
        let stages = latency_breakdown(&spec, tb.host1, tb.host2, size);
        let total: f64 = stages.iter().map(|s| s.ns).sum();
        println!(
            "# One-way latency breakdown, {size} B message (total {:.2} us)",
            total / 1000.0
        );
        for s in &stages {
            let pct = s.ns / total * 100.0;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("{:>44} {:>10.0} ns {:>5.1}% {}", s.stage, s.ns, pct, bar);
        }
        println!();
        itb_bench::dump_json(&format!("latency_breakdown_{size}"), &stages);

        // The same message traced over the one-ITB route, attributed to the
        // four lifecycle categories of the obs layer.
        let run = traced_one_way(size, true);
        let attr = run.attribution();
        let total: f64 = attr.iter().map(|&(_, ns)| ns).sum();
        println!("  via one ITB (traced, total {:.2} us):", total / 1000.0);
        for &(cat, ns) in &attr {
            let pct = ns / total * 100.0;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("{:>44} {:>10.0} ns {:>5.1}% {}", cat.as_str(), ns, pct, bar);
        }
        println!();
        itb_bench::dump_json(
            &format!("latency_attribution_{size}"),
            &attr
                .iter()
                .map(|&(cat, ns)| (cat.as_str().to_string(), ns))
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "Host-side processing dominates short messages; the streaming stage \
         (wire + overlapping DMA) takes over with size — which is exactly why \
         the constant ~1.3 us per-ITB cost fades in relative terms (Fig. 8)."
    );
}

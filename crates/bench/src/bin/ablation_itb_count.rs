//! Ablation A-ITBS: half-round-trip latency versus the number of in-transit
//! buffers in the path. The paper notes more than a single ITB can be
//! needed (§1) and that each adds ~1.3 µs; this sweep checks the scaling is
//! linear with the calibrated per-ITB constant.
//!
//! `cargo run --release -p itb-bench --bin ablation_itb_count [iters]`

use itb_core::experiments::itb_count_sweep;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    size: u32,
    points: Vec<(usize, f64)>,
    per_itb_us: f64,
}

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let size = 64;
    eprintln!("sweeping ITB count on a switch chain ({iters} iterations)...");
    let points = itb_count_sweep(&[0, 1, 2, 3, 4], size, iters);

    println!("# Ablation — latency vs number of ITBs in the path ({size} B messages)");
    println!("{:>6} {:>16} {:>16}", "ITBs", "half-RTT (us)", "delta (us)");
    let mut prev = None;
    for &(k, us) in &points {
        let delta = prev.map(|p: f64| us - p);
        match delta {
            Some(d) => println!("{k:>6} {us:>16.3} {d:>16.3}"),
            None => println!("{k:>6} {us:>16.3} {:>16}", "-"),
        }
        prev = Some(us);
    }
    // Least-squares slope through the points = per-ITB cost.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|&(k, _)| k as f64).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|&(k, _)| (k as f64) * (k as f64)).sum();
    let sxy: f64 = points.iter().map(|&(k, y)| k as f64 * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    // The ITBs sit on the forward direction only, so the half-round-trip
    // slope is half the one-way per-ITB cost (same doubling as the paper's
    // Figure 8 methodology).
    let per_itb = slope * 2.0;
    println!();
    println!(
        "fitted half-RTT slope: {slope:.3} us/ITB -> one-way per-ITB cost {per_itb:.3} us \
         (Figure 8 measured ~1.3 us; scaling is linear in the ITB count)"
    );

    itb_bench::dump_json(
        "ablation_itb_count",
        &Out {
            size,
            points,
            per_itb_us: per_itb,
        },
    );
}

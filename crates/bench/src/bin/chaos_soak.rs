//! Chaos soak: stream traffic across the Figure 6 testbed's ITB path while
//! a seeded fault schedule drops and corrupts packets, takes an
//! inter-switch cable down, and crashes the in-transit host's NIC — then
//! audit that GM's reliability layer still delivered every message exactly
//! once and in order.
//!
//! `cargo run --release -p itb-bench --bin chaos_soak [--smoke] [--strict-health]`
//!
//! `--smoke` runs a short deterministic schedule for CI; the artifacts
//! (`results/chaos_soak.json`, `results/chaos_timeline.jsonl`,
//! `results/health_report.json`) are byte-identical across runs of the same
//! mode, which the CI determinism check relies on. `--strict-health` exits
//! nonzero when the health report is unhealthy (in addition to the always-on
//! assertion), making the run a CI health gate.

use itb_core::ClusterSpec;
use itb_gm::AppBehavior;
use itb_net::FaultPlan;
use itb_nic::McpFlavor;
use itb_routing::figures;
use itb_sim::{run_until, EventQueue, FxHashSet, SimDuration, SimTime};

/// The seeded fault schedule: background drop/corrupt noise on every link,
/// one outage of the first inter-switch cable, one crash of the in-transit
/// host's NIC. Both windows sit early enough to overlap live traffic even
/// in smoke mode.
fn fault_plan(tb: &itb_topo::builders::Fig6Testbed) -> FaultPlan {
    FaultPlan::seeded(0xC4A05)
        .with_drop_prob(0.005)
        .with_corrupt_prob(0.003)
        .with_down_window(tb.cable_a, SimTime::from_us(100), SimTime::from_us(250))
        .with_crash(tb.itb_host, SimTime::from_us(1050), SimTime::from_us(1400))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let strict_health = std::env::args().any(|a| a == "--strict-health");
    let count: u32 = if smoke { 40 } else { 400 };
    let size: u32 = 1024;
    let horizon = SimTime::from_ms(if smoke { 500 } else { 5000 });

    let base = ClusterSpec::fig6_testbed()
        .with_mcp(McpFlavor::Itb)
        .with_flush_on_overflow(true);
    let tb = base.testbed.clone().expect("testbed spec");
    let plan = fault_plan(&tb);
    let spec = base
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb))
        .with_faults(plan.clone());

    // host1 and host2 stream at each other through the fault zone; the
    // in-transit host only forwards (and crashes mid-run).
    let mut behaviors = vec![AppBehavior::Sink; spec.num_hosts()];
    behaviors[tb.host1.idx()] = AppBehavior::Stream {
        dst: tb.host2,
        size,
        count,
    };
    behaviors[tb.host2.idx()] = AppBehavior::Stream {
        dst: tb.host1,
        size,
        count,
    };
    let total = 2 * count as usize;

    eprintln!(
        "chaos soak ({}): {total} x {size} B messages under plan seed {:#x}...",
        if smoke { "smoke" } else { "full" },
        plan.seed
    );
    let mut c = spec.build(behaviors);
    // Sample every 100 µs of sim time. The stall budget must exceed the
    // worst quiet stretch a *healthy* chaos run produces — retransmission
    // backoff caps at 32 ms, so 50 ms of silence with traffic pending is a
    // genuine stall, not patience.
    c.enable_timeline(SimDuration::from_us(100));
    c.enable_health(SimDuration::from_us(100), SimDuration::from_ms(50));
    let mut q = EventQueue::new();
    c.start(&mut q);
    // Advance in slices so the run stops soon after the last delivery (or
    // at the horizon if something was lost).
    let mut now = SimTime::ZERO;
    while c.delivered_count() < total && now < horizon {
        now += SimDuration::from_ms(1);
        run_until(&mut c, &mut q, now);
    }
    let snap = c.metrics_snapshot(now);

    // ---- the exactly-once / in-order audit -------------------------------
    assert_eq!(
        c.delivered_count(),
        total,
        "every message must survive the fault schedule"
    );
    assert_eq!(
        snap.counters["gm.app_deliveries"], total as u64,
        "no duplicate application deliveries"
    );
    let log = c.delivery_log();
    let unique: FxHashSet<u32> = log.iter().map(|&(_, _, id)| id).collect();
    assert_eq!(unique.len(), total, "each message delivered exactly once");
    for &(from, to) in &[(tb.host1, tb.host2), (tb.host2, tb.host1)] {
        let ids: Vec<u32> = log
            .iter()
            .filter(|&&(f, t, _)| f == from && t == to)
            .map(|&(_, _, id)| id)
            .collect();
        assert_eq!(ids.len(), count as usize, "flow {from:?}->{to:?} complete");
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "flow {from:?}->{to:?} delivered in order"
        );
    }
    assert!(
        c.connection_failures().is_empty(),
        "the schedule must be survivable without abandoning a connection"
    );

    // ---- the faults must actually have fired -----------------------------
    let injected = snap.counters["net.fault_drops"]
        + snap.counters["net.fault_corrupts"]
        + snap.counters["net.link_down_drops"];
    assert!(injected > 0, "the fault plan injected nothing");
    assert_eq!(snap.counters["gm.crashes_injected"], 1, "one NIC crash");
    let recovered = snap.counters["gm.retransmissions"];
    assert!(recovered > 0, "recovery must have used retransmissions");

    println!("# Chaos soak — seeded faults vs GM reliability (ITB path)");
    println!("messages delivered   : {total} / {total} (exactly once, in order)");
    println!("sim time             : {:.1} us", now.as_us_f64());
    for key in [
        "net.fault_drops",
        "net.fault_corrupts",
        "net.link_down_drops",
        "gm.crashes_injected",
        "gm.retransmissions",
        "gm.duplicates",
        "gm.drops_observed",
        "gm.packets_abandoned",
        "gm.connections_failed",
    ] {
        println!("{key:<21}: {}", snap.counters[key]);
    }
    let crash_flushes = snap
        .counters
        .iter()
        .filter(|(k, _)| k.ends_with(".crash_flushes"))
        .map(|(_, v)| v)
        .sum::<u64>();
    println!("nic crash_flushes    : {crash_flushes}");

    #[derive(serde::Serialize)]
    struct Artifact {
        mode: &'static str,
        messages: usize,
        message_bytes: u32,
        sim_time_us: f64,
        plan: FaultPlan,
        exactly_once: bool,
        in_order: bool,
        counters: std::collections::BTreeMap<String, u64>,
    }
    itb_bench::dump_json(
        "chaos_soak",
        &Artifact {
            mode: if smoke { "smoke" } else { "full" },
            messages: total,
            message_bytes: size,
            sim_time_us: now.as_us_f64(),
            plan,
            exactly_once: true,
            in_order: true,
            counters: snap.counters.clone(),
        },
    );

    // ---- timeline + health artifacts -------------------------------------
    let timeline = c.take_timeline().expect("timeline was enabled");
    println!(
        "timeline samples     : {} ({} ns cadence)",
        timeline.len(),
        timeline.interval_ns()
    );
    itb_bench::dump_stream("chaos_timeline.jsonl", |w| timeline.write_jsonl(w));
    let report = c.health_report(now).expect("health was enabled");
    itb_bench::dump_stream("health_report.json", |w| report.write_json(w));
    println!(
        "health               : {} ({} samples, {} buffers audited, {} violation(s))",
        if report.healthy { "clean" } else { "UNHEALTHY" },
        report.samples,
        report.buffers_audited,
        report.violations.len()
    );
    if !report.healthy {
        for v in &report.violations {
            eprintln!("health violation: [{}] {}", v.check, v.detail);
        }
        if strict_health {
            eprintln!("--strict-health: failing the run");
            std::process::exit(1);
        }
    }
    assert!(
        report.healthy,
        "the chaos schedule must stay health-clean: {:?}",
        report.violations
    );
}

//! Extension: sustained one-way bandwidth versus message size on the
//! Figure 6 testbed (the bandwidth half of `gm_allsize`'s report), under
//! both MCP flavours — the throughput counterpart of Figure 7, showing the
//! ITB support code costs essentially nothing in bandwidth.
//!
//! `cargo run --release -p itb-bench --bin bandwidth [count]`

use itb_core::experiments::stream_bandwidth;
use itb_core::{ClusterSpec, McpFlavor, RoutingPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    sizes: Vec<u32>,
    original_mb_s: Vec<f64>,
    modified_mb_s: Vec<f64>,
}

fn main() {
    let count: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let sizes = [64u32, 256, 1024, 4096, 16_384, 65_536];

    let run = |flavor: McpFlavor| {
        let spec = ClusterSpec::fig6_testbed()
            .with_mcp(flavor)
            .with_routing(RoutingPolicy::UpDown);
        let tb = spec.testbed.clone().expect("testbed");
        stream_bandwidth(&spec, tb.host1, tb.host2, &sizes, count)
    };
    eprintln!("streaming {count} messages per size under each MCP flavour...");
    let orig = run(McpFlavor::Original);
    let modi = run(McpFlavor::Itb);

    println!("# One-way bandwidth vs message size (host1 -> host2)");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "bytes", "original MB/s", "ITB MCP MB/s", "loss %"
    );
    for (o, m) in orig.iter().zip(&modi) {
        println!(
            "{:>8} {:>16.1} {:>16.1} {:>9.2}%",
            o.size,
            o.mb_per_s,
            m.mb_per_s,
            (o.mb_per_s - m.mb_per_s) / o.mb_per_s * 100.0
        );
    }
    println!();
    println!(
        "From ~1 KiB up the ITB support code is invisible at bandwidth level \
         (pipelining hides the ~125 ns per packet). For wire-saturating tiny \
         messages the receive path is firmware-CPU-bound, so the extra \
         Early-Recv work takes a visible bite — a cost the paper's unloaded \
         latency test cannot see."
    );
    itb_bench::dump_json(
        "bandwidth",
        &Out {
            sizes: sizes.to_vec(),
            original_mb_s: orig.iter().map(|p| p.mb_per_s).collect(),
            modified_mb_s: modi.iter().map(|p| p.mb_per_s).collect(),
        },
    );
}

//! Static deadlock-freedom audit of every route set the repo ships.
//!
//! For each builder topology (the Figure 6 testbed, the gauntlet's
//! irregular presets, the 64-switch evaluation network) plus a freshly
//! generated 1024-switch irregular fabric, this bin builds the up*/down*
//! and ITB route sets and checks the Dally & Seitz channel dependency
//! graph (`itb_routing::deadlock::ChannelDepGraph`) for cycles. Every
//! shipped route set must be acyclic. As the negative control, the
//! all-clockwise minimal ring routes — the exact configuration the paper
//! uses to motivate ITBs — must be flagged cyclic, and the witness cycle
//! is decoded and printed channel by channel; the same routes split at an
//! in-transit buffer must come back acyclic.
//!
//! This is the static complement of the PR 7 model checker: the checker
//! explores interleavings of one small scenario exhaustively, while this
//! audit proves the deadlock-freedom *precondition* (acyclic CDG) for the
//! full route sets of every topology the benchmarks actually run.
//!
//! Writes `results/deadlock_audit.json`; the artifact is deterministic and
//! CI byte-compares a double run. Exits nonzero if any expectation fails.

use itb_routing::deadlock::ChannelDepGraph;
use itb_routing::path::{Hop, Segment, SourceRoute};
use itb_routing::planner::{ItbHostSelection, ItbPlanner};
use itb_routing::table::{RouteTable, RoutingPolicy};
use itb_routing::updown::shortest_updown;
use itb_topo::builders::{fig6_testbed, irregular64, random_irregular, ring, IrregularSpec};
use itb_topo::{HostId, LinkId, SwitchId, Topology, UpDown};
use serde::Serialize;

/// Seed for the fresh large fabric. Distinct from every seed the
/// benchmarks use, so this audit covers wiring no other gate has seen.
const FRESH_1024_SEED: u64 = 1024;

/// Per-source sample width on the 1024-switch fabric (all-pairs would be
/// ~1M routes per policy; the sampled set still touches every switch as a
/// source). The stride 127 is coprime to 1024, so the destination sets of
/// consecutive sources interleave across the whole fabric.
const SAMPLE_DESTS_PER_SOURCE: u16 = 8;
const SAMPLE_STRIDE: u16 = 127;

#[derive(Serialize)]
struct AuditRecord {
    name: String,
    policy: String,
    switches: usize,
    hosts: usize,
    links: usize,
    routes: usize,
    /// Ordered host pairs in the topology.
    pairs_total: usize,
    /// Pairs whose route this audit actually built. Equal to `pairs_total`
    /// everywhere except the sampled 1024-switch fabric — the truncation is
    /// recorded here, not hidden.
    pairs_audited: usize,
    cdg_channels: usize,
    cdg_edges: usize,
    acyclic: bool,
    expect_acyclic: bool,
    /// Decoded witness cycle (one entry per channel), present iff cyclic.
    witness_cycle: Option<Vec<String>>,
    ok: bool,
}

#[derive(Serialize)]
struct AuditReport {
    /// Dally & Seitz: a wormhole route set is deadlock-free iff its channel
    /// dependency graph is acyclic. ITB segment boundaries contribute no
    /// dependency edge, which is why segmented minimal routes pass.
    criterion: String,
    fresh_irregular_seed: u64,
    audits: Vec<AuditRecord>,
    all_expectations_met: bool,
}

/// Render one CDG channel index as "link<N> <from> -> <to>".
fn decode_channel(topo: &Topology, chan: usize) -> String {
    let link = LinkId(u32::try_from(chan / 2).expect("link index fits u32"));
    let l = topo.link(link);
    let (from, to) = if chan.is_multiple_of(2) {
        (l.a, l.b)
    } else {
        (l.b, l.a)
    };
    format!("link{} {} -> {}", link.idx(), from.node, to.node)
}

fn audit<'a>(
    name: &str,
    policy: &str,
    topo: &Topology,
    routes: impl IntoIterator<Item = &'a SourceRoute>,
    n_routes: usize,
    pairs_audited: usize,
    expect_acyclic: bool,
) -> AuditRecord {
    let cdg = ChannelDepGraph::build(topo, routes);
    let cycle = cdg.find_cycle();
    let acyclic = cycle.is_none();
    let witness = cycle.map(|c| {
        c.iter()
            .map(|&chan| decode_channel(topo, chan))
            .collect::<Vec<_>>()
    });
    let hosts = topo.num_hosts();
    let rec = AuditRecord {
        name: name.to_string(),
        policy: policy.to_string(),
        switches: topo.num_switches(),
        hosts,
        links: topo.num_links(),
        routes: n_routes,
        pairs_total: hosts * hosts.saturating_sub(1),
        pairs_audited,
        cdg_channels: topo.num_links() * 2,
        cdg_edges: cdg.edge_count(),
        acyclic,
        expect_acyclic,
        witness_cycle: witness,
        ok: acyclic == expect_acyclic,
    };
    let verdict = if rec.ok { "ok" } else { "FAIL" };
    println!(
        "[{verdict}] {name} / {policy}: {} routes over {} switches, {} CDG edges, {}",
        rec.routes,
        rec.switches,
        rec.cdg_edges,
        if acyclic { "acyclic" } else { "CYCLIC" },
    );
    if let Some(cycle) = &rec.witness_cycle {
        println!("       witness cycle ({} channels):", cycle.len());
        for ch in cycle {
            println!("         {ch}");
        }
    }
    rec
}

/// Audit both full all-pairs route tables of one topology.
fn audit_tables(name: &str, topo: &Topology, out: &mut Vec<AuditRecord>) {
    let ud = UpDown::compute_default(topo);
    let pairs = topo.num_hosts() * (topo.num_hosts() - 1);
    for (policy, label) in [
        (RoutingPolicy::UpDown, "updown"),
        (RoutingPolicy::Itb, "itb"),
    ] {
        let tbl = RouteTable::compute(topo, &ud, policy)
            .unwrap_or_else(|e| panic!("{name}: route table ({label}) failed: {e:?}"));
        let n = tbl.iter().count();
        out.push(audit(name, label, topo, tbl.iter(), n, pairs, true));
    }
}

/// Sampled audit of the fresh 1024-switch fabric: every host appears as a
/// source; destinations stride around the host space.
fn audit_fresh_1024(out: &mut Vec<AuditRecord>) {
    let spec = IrregularSpec {
        switches: 1024,
        ports_per_switch: 8,
        hosts_per_switch: 1,
        seed: FRESH_1024_SEED,
    };
    let topo = random_irregular(&spec);
    let n = u16::try_from(topo.num_hosts()).expect("1024 hosts fit u16");
    let ud = UpDown::compute_default(&topo);
    let pairs: Vec<(HostId, HostId)> = (0..n)
        .flat_map(|src| {
            (1..=SAMPLE_DESTS_PER_SOURCE)
                .map(move |k| (HostId(src), HostId((src + k * SAMPLE_STRIDE) % n)))
        })
        .collect();

    let mut planner = ItbPlanner::new(ItbHostSelection::RoundRobin);
    let itb_routes: Vec<SourceRoute> = pairs
        .iter()
        .map(|&(s, d)| {
            planner
                .route(&topo, &ud, s, d)
                .unwrap_or_else(|e| panic!("fresh1024 itb route {s:?}->{d:?}: {e:?}"))
        })
        .collect();
    let ud_routes: Vec<SourceRoute> = pairs
        .iter()
        .map(|&(s, d)| {
            shortest_updown(&topo, &ud, s, d)
                .unwrap_or_else(|| panic!("fresh1024 updown route {s:?}->{d:?}: unreachable"))
        })
        .collect();
    for (label, routes) in [("updown", &ud_routes), ("itb", &itb_routes)] {
        out.push(audit(
            "fresh_irregular1024",
            label,
            &topo,
            routes.iter(),
            routes.len(),
            pairs.len(),
            true,
        ));
    }
}

/// The negative control: all-clockwise minimal routes on a ring — the
/// canonical CDG cycle — and the same routes cut at a midpoint ITB.
fn audit_ring_controls(out: &mut Vec<AuditRecord>) {
    const N: u16 = 8;
    let topo = ring(usize::from(N), 1);
    // Host i attaches to switch i at port 2; clockwise exit is port 1.
    let hops = |from: u16, to: u16| {
        let mut hops = Vec::new();
        let mut s = from;
        while s != to {
            hops.push(Hop::new(SwitchId(s), 1));
            s = (s + 1) % N;
        }
        hops.push(Hop::new(SwitchId(to), 2));
        hops
    };
    // Half-way clockwise routes from every host: together they hold every
    // clockwise channel and close the dependency ring.
    let minimal: Vec<SourceRoute> = (0..N)
        .map(|a| SourceRoute::direct(HostId(a), HostId((a + N / 2) % N), hops(a, (a + N / 2) % N)))
        .collect();
    // The same journeys split at every intermediate host: each ITB ejects
    // the packet, so no segment holds two inter-switch links at once and
    // the link-to-link dependency chain never forms.
    let split: Vec<SourceRoute> = (0..N)
        .map(|a| {
            let b = (a + N / 2) % N;
            let segments = (0..N / 2)
                .map(|k| {
                    let (from, to) = ((a + k) % N, (a + k + 1) % N);
                    Segment {
                        from: HostId(from),
                        to: HostId(to),
                        hops: hops(from, to),
                    }
                })
                .collect();
            SourceRoute {
                src: HostId(a),
                dst: HostId(b),
                segments,
            }
        })
        .collect();
    for routes in [&minimal, &split] {
        for r in routes {
            assert!(r.is_well_formed(&topo), "hand-built ring route is miswired");
        }
    }
    let n = minimal.len();
    out.push(audit(
        "ring8_minimal_clockwise",
        "minimal",
        &topo,
        minimal.iter(),
        n,
        n,
        false,
    ));
    out.push(audit(
        "ring8_minimal_itb_split",
        "minimal+itb",
        &topo,
        split.iter(),
        n,
        n,
        true,
    ));
}

fn main() {
    let mut audits = Vec::new();

    audit_tables("fig6_testbed", &fig6_testbed().topo, &mut audits);
    for switches in [16usize, 32, 64] {
        let topo = random_irregular(&IrregularSpec::evaluation_default(switches, 1));
        audit_tables(&format!("gauntlet_irregular{switches}"), &topo, &mut audits);
    }
    audit_tables("irregular64_evaluation", &irregular64(), &mut audits);
    audit_fresh_1024(&mut audits);
    audit_ring_controls(&mut audits);

    let all_ok = audits.iter().all(|a| a.ok);
    let report = AuditReport {
        criterion: "Dally & Seitz: deadlock-free iff the channel dependency graph is acyclic; \
                    ITB segment boundaries contribute no dependency edge"
            .to_string(),
        fresh_irregular_seed: FRESH_1024_SEED,
        audits,
        all_expectations_met: all_ok,
    };
    itb_bench::dump_json("deadlock_audit", &report);
    if !all_ok {
        eprintln!("deadlock_audit: expectation violated (see records above)");
        std::process::exit(1);
    }
    println!("deadlock_audit: every expectation met");
}

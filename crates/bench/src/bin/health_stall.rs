//! Health-watchdog self-test: deliberately induce a stall and prove the
//! runtime monitors flag it.
//!
//! The scenario is the failure mode the source paper's in-transit buffers
//! exist to prevent — traffic that can no longer make progress. We take
//! *every* cable of the Figure 6 testbed down for the whole run (link-down
//! faults corrupt packets at arrival, so every data packet dies at the
//! destination CRC check), shrink GM's retry budget so the reliability
//! layer abandons quickly, and stream a few messages into the void. Once
//! retransmissions stop, nothing delivers and no link byte advances while
//! the messages stay undelivered: the sim-time stall watchdog must fire and
//! `results/health_report.json` must carry the blocked message set.
//!
//! `cargo run --release -p itb-bench --bin health_stall`
//!
//! Exit code 0 means the stall WAS detected (the self-test passed); the
//! binary panics if the watchdog stays silent. The report artifact is
//! byte-identical across runs (same-seed determinism).

use itb_core::ClusterSpec;
use itb_gm::AppBehavior;
use itb_net::FaultPlan;
use itb_nic::McpFlavor;
use itb_routing::figures;
use itb_sim::{run_until, EventQueue, SimDuration, SimTime};

fn main() {
    let horizon = SimTime::from_ms(60);

    let mut spec = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    // A small retry budget with a short backoff cap: the connection
    // abandons its packets within a few milliseconds instead of GM's
    // default ~700 ms, so the quiesced no-progress phase dominates the run.
    spec.calib.gm.max_retries = 3;
    spec.calib.gm.retrans_backoff_cap = SimDuration::from_ms(2);
    let tb = spec.testbed.clone().expect("testbed spec");
    // Down-windows over the whole run on all three cables: host1's only
    // routes to host2 (direct and via the in-transit host) are dead.
    let plan = FaultPlan::seeded(0x57A11)
        .with_down_window(tb.cable_a, SimTime::ZERO, horizon)
        .with_down_window(tb.cable_b, SimTime::ZERO, horizon)
        .with_down_window(tb.loop_cable, SimTime::ZERO, horizon);
    let spec = spec
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb))
        .with_faults(plan);

    let mut behaviors = vec![AppBehavior::Sink; spec.num_hosts()];
    behaviors[tb.host1.idx()] = AppBehavior::Stream {
        dst: tb.host2,
        size: 1024,
        count: 4,
    };

    eprintln!("health stall self-test: 4 messages into an all-links-down fabric...");
    let mut c = spec.build(behaviors);
    c.enable_timeline(SimDuration::from_us(100));
    c.enable_health(SimDuration::from_us(100), SimDuration::from_ms(5));
    let mut q = EventQueue::new();
    c.start(&mut q);
    run_until(&mut c, &mut q, horizon);
    let now = q.now();

    let timeline = c.take_timeline().expect("timeline was enabled");
    itb_bench::dump_stream("health_stall_timeline.jsonl", |w| timeline.write_jsonl(w));
    let report = c.health_report(now).expect("health was enabled");
    itb_bench::dump_stream("health_report.json", |w| report.write_json(w));

    println!("# Health stall self-test — watchdog vs an unroutable fabric");
    println!("sim time         : {:.1} us", now.as_us_f64());
    println!("timeline samples : {}", timeline.len());
    println!(
        "health           : {} ({} violation(s))",
        if report.healthy { "clean" } else { "UNHEALTHY" },
        report.violations.len()
    );
    for v in &report.violations {
        println!("  [{}] at {} ns: {}", v.check, v.at_ns, v.detail);
        for b in &v.blocked {
            println!("    blocked: {b}");
        }
    }

    // The self-test: the stall MUST have been flagged, with the undelivered
    // messages in the blocked set.
    assert!(!report.healthy, "an unroutable fabric must be flagged");
    let stall = report
        .violations
        .iter()
        .find(|v| v.check == "stall_watchdog")
        .expect("the stall watchdog must fire");
    assert!(
        stall.blocked.iter().any(|b| b.starts_with("msg ")),
        "the blocked set must name the undelivered messages: {:?}",
        stall.blocked
    );
    assert!(
        report
            .violations
            .iter()
            .all(|v| v.check == "stall_watchdog"),
        "only the watchdog should fire (no leaks, no counter regressions)"
    );
    println!("stall detected and attributed — self-test PASSED");
}

//! Perf-regression gate over the committed `BENCH_perf.json` trajectory.
//!
//! Compares the newest trajectory entry against the one before it and
//! fails (exit 1) if any scenario's events/sec dropped by more than the
//! tolerance — the gate that would have caught the `itb-deep-obs` entry,
//! where `large_load_32sw` fell 4.06 → 1.19 Mev/s and nothing complained.
//!
//! Numbers in the trajectory are wall-clock measurements, so the
//! tolerance is deliberately loose (20%): run-to-run noise on one machine
//! is a few percent, a hot-path regression is 2-4x. When a drop is
//! *intentional* (hardware change, a scenario redefinition), re-baseline
//! explicitly instead of loosening the gate:
//!
//! ```text
//! ITB_BENCH_BASELINE_RESET=1 scripts/ci.sh
//! ```
//!
//! which skips the comparison for that run and says so. The vendored
//! serde_json only serializes, so this bin parses the file's line
//! discipline directly: one trajectory entry per line, written by
//! `perf_gauntlet::update_bench_perf` — that writer is the format's
//! single source of truth.

#![deny(unsafe_code)]

use std::process::ExitCode;

/// Fractional drop in events/sec that fails the gate.
const TOLERANCE: f64 = 0.20;

/// Pull `"label":"…"` and the `"events_per_sec":[["name",num],…]` pairs
/// out of one trajectory line. Returns `None` for non-entry lines (the
/// JSON envelope braces and header fields).
fn parse_entry(line: &str) -> Option<(String, Vec<(String, f64)>)> {
    let rest = line.split("\"label\":\"").nth(1)?;
    let label = rest.split('"').next()?.to_string();
    // Cut at the array's `]]` terminator so the pair scan cannot run on
    // into the allocs_per_packet array that follows on the same line.
    let arr = line
        .split("\"events_per_sec\":[")
        .nth(1)?
        .split("]]")
        .next()?;
    let mut pairs = Vec::new();
    // Pairs look like `["large_load_32sw",4062334.75]`; the scenario names
    // are identifiers, so splitting on `["` cannot hit a name byte.
    for chunk in arr.split("[\"").skip(1) {
        let mut it = chunk.splitn(2, '"');
        let name = it.next()?.to_string();
        let tail = it.next()?;
        let num = tail
            .trim_start_matches(',')
            .split([']', ','])
            .next()?
            .trim();
        pairs.push((name, num.parse::<f64>().ok()?));
    }
    Some((label, pairs))
}

fn main() -> ExitCode {
    if std::env::var("ITB_BENCH_BASELINE_RESET").is_ok_and(|v| !v.is_empty() && v != "0") {
        println!("perf gate: ITB_BENCH_BASELINE_RESET set — skipping the trajectory comparison");
        println!("perf gate: the next full gauntlet run becomes the new baseline");
        return ExitCode::SUCCESS;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_perf.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!("perf gate: no {} yet — nothing to compare", path.display());
        return ExitCode::SUCCESS;
    };
    let entries: Vec<(String, Vec<(String, f64)>)> = text.lines().filter_map(parse_entry).collect();
    if entries.len() < 2 {
        println!(
            "perf gate: {} trajectory entr{} — nothing to compare",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }
    let (prev_label, prev) = &entries[entries.len() - 2];
    let (cur_label, cur) = &entries[entries.len() - 1];
    println!(
        "perf gate: {prev_label} -> {cur_label} (tolerance: -{:.0}%)",
        TOLERANCE * 100.0
    );
    let mut failures = Vec::new();
    for (name, prev_v) in prev {
        // Scenarios only present in the previous entry (renamed/retired)
        // are skipped; brand-new scenarios have no baseline yet.
        let Some((_, cur_v)) = cur.iter().find(|(n, _)| n == name) else {
            println!("  {name:<22} dropped from the current entry — skipped");
            continue;
        };
        let ratio = cur_v / prev_v.max(1e-9);
        let verdict = if ratio < 1.0 - TOLERANCE {
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  {name:<22} {:>10.2} -> {:>10.2} kev/s  ({:+.1}%)  {verdict}",
            prev_v / 1e3,
            cur_v / 1e3,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - TOLERANCE {
            failures.push(name.clone());
        }
    }
    if failures.is_empty() {
        println!("perf gate: ok");
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate: FAILED — events/sec regressed >{:.0}% on: {}",
            TOLERANCE * 100.0,
            failures.join(", ")
        );
        println!(
            "perf gate: if the drop is intentional, re-run the full gauntlet on this machine and \
             commit the new entry, or set ITB_BENCH_BASELINE_RESET=1 to acknowledge it"
        );
        ExitCode::FAILURE
    }
}

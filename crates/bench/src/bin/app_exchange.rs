//! Extension experiment (paper §6 future work): execution time of
//! distributed-application communication phases under up*/down* versus ITB
//! routing on irregular networks. Two patterns:
//!
//! * **total exchange** (all-to-all) — bound by the endpoint host links, so
//!   routing barely matters (reported as an honest control);
//! * **permutation exchange** (transpose partners i -> i + n/2) — all
//!   traffic crosses the fabric core, so route quality dominates.
//!
//! `cargo run --release -p itb-bench --bin app_exchange [switches] [seed]`

use itb_core::experiments::{permutation_exchange, total_exchange, ExchangeResult};
use itb_core::{ClusterSpec, RoutingPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    pattern: &'static str,
    size: u32,
    ud: ExchangeResult,
    itb: ExchangeResult,
    speedup: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let switches: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let mut rows = Vec::new();

    println!(
        "# Application communication phases, {switches}-switch irregular network (seed {seed})"
    );
    println!(
        "{:>12} {:>8} | {:>14} {:>14} | {:>14} {:>14} | {:>9}",
        "pattern", "bytes", "UD makespan", "UD mean lat", "ITB makespan", "ITB mean lat", "speedup"
    );

    // Permutation exchange: 16 messages per host to the transpose partner.
    for size in [512u32, 4096] {
        let run = |policy: RoutingPolicy| {
            let spec = ClusterSpec::irregular(switches, seed).with_routing(policy);
            permutation_exchange(&spec, size, 16, 4_000)
        };
        let ud = run(RoutingPolicy::UpDown);
        let itb = run(RoutingPolicy::Itb);
        let speedup = ud.makespan_us / itb.makespan_us;
        println!(
            "{:>12} {:>8} | {:>12.1}us {:>12.1}us | {:>12.1}us {:>12.1}us | {:>8.2}x",
            "permutation",
            size,
            ud.makespan_us,
            ud.mean_latency_us,
            itb.makespan_us,
            itb.mean_latency_us,
            speedup
        );
        rows.push(Row {
            pattern: "permutation",
            size,
            ud,
            itb,
            speedup,
        });
    }

    // Total exchange control: endpoint-bound, parity expected.
    {
        let size = 1024u32;
        let run = |policy: RoutingPolicy| {
            let spec = ClusterSpec::irregular(switches, seed).with_routing(policy);
            total_exchange(&spec, size, 12_000)
        };
        let ud = run(RoutingPolicy::UpDown);
        let itb = run(RoutingPolicy::Itb);
        let speedup = ud.makespan_us / itb.makespan_us;
        println!(
            "{:>12} {:>8} | {:>12.1}us {:>12.1}us | {:>12.1}us {:>12.1}us | {:>8.2}x",
            "all-to-all",
            size,
            ud.makespan_us,
            ud.mean_latency_us,
            itb.makespan_us,
            itb.mean_latency_us,
            speedup
        );
        rows.push(Row {
            pattern: "all-to-all",
            size,
            ud,
            itb,
            speedup,
        });
    }

    println!();
    println!(
        "Core-crossing patterns benefit most from minimal balanced ITB routes; \
         the all-to-all gains shrink toward parity on small/dense fabrics \
         where the endpoint host links, not the core, are the bottleneck."
    );
    itb_bench::dump_json(&format!("app_exchange_{switches}sw_seed{seed}"), &rows);
}

//! Exhaustive interleaving model check of the GM reliability layer.
//!
//! Runs the depth-bounded BFS explorer (`itb-check`) over the shipped
//! scenario suite — every interleaving of event deliveries and fault
//! injections up to the per-scenario depth bound and fault budget —
//! asserting exactly-once delivery, in-order delivery, buffer-accounting
//! conservation and deadlock-freedom in every reached state.
//!
//! `cargo run --release -p itb-bench --bin model_check [--smoke]`
//!
//! `--smoke` runs a reduced suite for CI; both modes are fully
//! deterministic, and `results/model_check.json` is byte-identical across
//! runs of the same mode (the CI gate double-runs and compares). Any
//! violation is minimized, printed with its reproduction schedule, and
//! fails the run with a nonzero exit.

use itb_check::{explore, ExploreConfig, ExploreReport, Scenario};

/// The shipped exploration suite. Depth bounds are sized so no path is
/// truncated (`depth_truncated == 0` asserted below): every schedule runs
/// to a terminal state, making the sweep exhaustive at its fault budget.
fn suite(smoke: bool) -> Vec<(Scenario, ExploreConfig)> {
    if smoke {
        vec![
            (
                Scenario::two_host(2),
                ExploreConfig {
                    depth: 700,
                    fault_budget: 1,
                    max_states: 200_000,
                },
            ),
            (
                Scenario::two_host_crash(),
                ExploreConfig {
                    depth: 700,
                    fault_budget: 2,
                    max_states: 200_000,
                },
            ),
        ]
    } else {
        vec![
            (
                Scenario::two_host(2),
                ExploreConfig {
                    depth: 700,
                    fault_budget: 2,
                    max_states: 2_000_000,
                },
            ),
            (
                Scenario::two_host_crash(),
                ExploreConfig {
                    depth: 700,
                    fault_budget: 3,
                    max_states: 2_000_000,
                },
            ),
            (
                Scenario::two_host_tiny_pool(),
                ExploreConfig {
                    depth: 800,
                    fault_budget: 2,
                    max_states: 2_000_000,
                },
            ),
            (
                Scenario::fig6_itb(),
                ExploreConfig {
                    depth: 1500,
                    fault_budget: 2,
                    max_states: 2_000_000,
                },
            ),
        ]
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("model check ({mode}): exhaustive interleaving sweep...");

    let mut reports: Vec<ExploreReport> = Vec::new();
    for (sc, cfg) in suite(smoke) {
        let r = explore(&sc, &cfg);
        println!(
            "{:<19} depth {:>4} budget {}: {:>6} states, {:>6} transitions, \
             {:>5} dedup, {} quiescent, {} failed terminals, {} violation(s)",
            r.scenario,
            r.depth,
            r.fault_budget,
            r.states_explored,
            r.transitions,
            r.dedup_hits,
            r.quiescent_terminals,
            r.failed_terminals,
            r.violations.len()
        );
        assert!(
            !r.state_cap_hit,
            "{}: state cap hit — raise max_states or lower the budget",
            r.scenario
        );
        assert_eq!(
            r.depth_truncated, 0,
            "{}: {} paths truncated at depth {} — the sweep is not exhaustive; raise the bound",
            r.scenario, r.depth_truncated, r.depth
        );
        reports.push(r);
    }

    let total_states: u64 = reports.iter().map(|r| r.states_explored).sum();
    let total_transitions: u64 = reports.iter().map(|r| r.transitions).sum();
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    println!(
        "total: {total_states} states, {total_transitions} transitions, {violations} violation(s)"
    );

    for r in &reports {
        for v in &r.violations {
            eprintln!("VIOLATION [{}] {}: {}", r.scenario, v.kind, v.detail);
            eprintln!("  minimized schedule ({} actions):", v.path.len());
            for tok in &v.path {
                eprintln!("    {tok}");
            }
        }
    }

    #[derive(serde::Serialize)]
    struct Artifact {
        mode: &'static str,
        total_states: u64,
        total_transitions: u64,
        total_violations: usize,
        scenarios: Vec<ExploreReport>,
    }
    itb_bench::dump_json(
        "model_check",
        &Artifact {
            mode,
            total_states,
            total_transitions,
            total_violations: violations,
            scenarios: reports,
        },
    );

    if violations > 0 {
        eprintln!("model check FAILED: {violations} violation(s) — schedules above reproduce them");
        std::process::exit(1);
    }
    println!("model check clean: every explored interleaving satisfies the invariants");
}

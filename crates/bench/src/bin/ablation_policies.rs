//! Ablation: two secondary design choices DESIGN.md calls out —
//!
//! * **crossbar output arbitration** (FIFO vs round-robin) under load;
//! * **in-transit host selection** (First vs RoundRobin): the follow-up
//!   papers recommend spreading ejection load across a switch's hosts.
//!
//! `cargo run --release -p itb-bench --bin ablation_policies [switches] [seed]`

use itb_core::experiments::{load_sweep, LoadSweep};
use itb_core::{ClusterSpec, RoutingPolicy};
use itb_gm::AppBehavior;
use itb_net::config::Arbitration;
use itb_routing::planner::ItbHostSelection;
use itb_sim::{run_until, EventQueue, SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    arbitration: Vec<(String, f64, f64)>,
    selection: Vec<(String, f64, u64)>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let switches: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let mut out = Out {
        arbitration: vec![],
        selection: vec![],
    };

    // --- Arbitration under a near-saturation load. ---------------------
    println!("# Ablation — crossbar output arbitration ({switches}-switch network, 512 B @ 18 MB/s/host)");
    println!(
        "{:>12} {:>14} {:>14}",
        "arbitration", "accepted MB/s", "latency (us)"
    );
    let sweep = LoadSweep {
        size: 512,
        offered_mb_s: vec![18.0],
        warmup: SimDuration::from_ms(2),
        window: SimDuration::from_ms(6),
        drain: SimDuration::from_ms(3),
    };
    for (name, arb) in [
        ("fifo", Arbitration::Fifo),
        ("round-robin", Arbitration::RoundRobin),
    ] {
        let mut spec = ClusterSpec::irregular(switches, seed).with_routing(RoutingPolicy::Itb);
        spec.calib.net.arbitration = arb;
        let p = &load_sweep(&spec, &sweep)[0];
        println!(
            "{:>12} {:>14.1} {:>14.1}",
            name, p.accepted_mb_s, p.avg_latency_us
        );
        out.arbitration
            .push((name.into(), p.accepted_mb_s, p.avg_latency_us));
    }

    // --- ITB host selection: ejection-load spread. ----------------------
    println!();
    println!("# Ablation — in-transit host selection (ejection load spread)");
    println!(
        "{:>12} {:>22} {:>16}",
        "selection", "max/mean fwd per host", "max forwards"
    );
    for (name, sel) in [
        ("first", ItbHostSelection::First),
        ("round-robin", ItbHostSelection::RoundRobin),
    ] {
        let spec = ClusterSpec::irregular(switches, seed)
            .with_routing(RoutingPolicy::Itb)
            .with_itb_selection(sel);
        let n = spec.num_hosts();
        let behaviors = vec![
            AppBehavior::Poisson {
                size: 512,
                mean_gap: SimDuration::from_us(40),
                limit: 40,
            };
            n
        ];
        let mut cluster = spec.build(behaviors);
        let mut q = EventQueue::new();
        cluster.start(&mut q);
        run_until(&mut cluster, &mut q, SimTime::from_ms(30));
        let forwards: Vec<u64> = (0..n as u16)
            .map(|h| cluster.nic(itb_topo::HostId(h)).stats().itb_forwards)
            .collect();
        let active: Vec<u64> = forwards.iter().copied().filter(|&f| f > 0).collect();
        let max = active.iter().copied().max().unwrap_or(0);
        let mean = active.iter().sum::<u64>() as f64 / active.len().max(1) as f64;
        let spread = max as f64 / mean.max(1e-9);
        println!("{:>12} {:>22.2} {:>16}", name, spread, max);
        out.selection.push((name.into(), spread, max));
    }
    println!();
    println!(
        "Round-robin selection spreads the ejection/re-injection burden across \
         each switch's hosts, lowering the hottest host's forward count — the \
         balance argument behind the follow-up papers' recommendation."
    );
    itb_bench::dump_json(&format!("ablation_policies_{switches}sw_seed{seed}"), &out);
}

//! Regenerate **Figure 8**: half-round-trip latency over the matched
//! 5-crossing testbed paths (UD via the loop cable vs UD-ITB via one
//! in-transit host) and the resulting per-ITB overhead.
//!
//! `cargo run --release -p itb-bench --bin fig8 [iters]`

use itb_core::experiments::{fig8, traced_one_way};
use itb_obs::export::{write_chrome_trace, write_jsonl};

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100); // the paper averages 100 iterations per size
    eprintln!("running Figure 8 ({iters} iterations per size)...");
    let f = fig8(iters);

    println!("# Figure 8 — message latency overhead of the ITB mechanism");
    println!(
        "{:>8} {:>14} {:>14} {:>16}",
        "bytes", "UD(us)", "UD-ITB(us)", "per-ITB(us)"
    );
    let over = f.overhead_us();
    for ((u, i), (_, d)) in f.ud.points.iter().zip(&f.itb.points).zip(&over.points) {
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>16.3}",
            u.size,
            u.half_rtt_ns.mean() / 1000.0,
            i.half_rtt_ns.mean() / 1000.0,
            d
        );
    }
    let s = f.summary();
    println!();
    println!(
        "mean per-ITB overhead: {:.2} us   (paper: ~1.3 us)",
        s.mean_overhead_us
    );
    println!(
        "relative overhead    : {:.1}% (short) -> {:.1}% (long)   (paper: 10% -> 3%)",
        s.relative_small_pct, s.relative_large_pct
    );

    let ud_pts = f.ud.to_series().points;
    let itb_pts = f.itb.to_series().points;
    println!();
    print!(
        "{}",
        itb_bench::ascii_chart(
            &[("UD (half-RTT us)", &ud_pts), ("UD-ITB", &itb_pts)],
            64,
            14,
        )
    );

    itb_bench::dump_json("fig8", &f);

    // One cheap traced message over the UD-ITB path: where does the
    // ~1.3 us per-ITB overhead actually go?
    let run = traced_one_way(64, true);
    let attr = run.attribution();
    let e2e: f64 = attr.iter().map(|&(_, ns)| ns).sum();
    println!();
    println!("# Per-stage latency attribution, one traced 64 B message (UD-ITB path)");
    for &(cat, ns) in &attr {
        println!(
            "{:>18} {:>10.0} ns {:>5.1}%",
            cat.as_str(),
            ns,
            ns / e2e * 100.0
        );
    }
    println!("{:>18} {e2e:>10.0} ns", "total");
    itb_bench::dump_json(
        "fig8_attribution",
        &attr
            .iter()
            .map(|&(cat, ns)| (cat.as_str().to_string(), ns))
            .collect::<Vec<_>>(),
    );
    itb_bench::dump_stream("fig8_trace.jsonl", |w| write_jsonl(&run.tracer, w));
    itb_bench::dump_stream("fig8_trace_chrome.json", |w| {
        write_chrome_trace(&run.tracer, w)
    });
    itb_bench::dump_json("fig8_metrics", &run.snapshot);
}

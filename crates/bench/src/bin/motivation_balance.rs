//! Regenerate the route-quality motivation data (M-BAL): path-length,
//! minimality, root-crossing and channel-balance metrics of up*/down*
//! versus ITB routing as network size grows — the three limiting factors
//! the paper's introduction names (non-minimal routing, unbalanced traffic,
//! network contention).
//!
//! `cargo run --release -p itb-bench --bin motivation_balance [seeds]`

use itb_routing::metrics::{analyze, RouteSetMetrics};
use itb_routing::{RouteTable, RoutingPolicy};
use itb_topo::builders::{random_irregular, IrregularSpec};
use itb_topo::UpDown;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct SizeRow {
    switches: usize,
    ud: RouteSetMetrics,
    itb: RouteSetMetrics,
}

fn mean_metrics(rows: Vec<RouteSetMetrics>) -> RouteSetMetrics {
    let n = rows.len() as f64;
    RouteSetMetrics {
        mean_links: rows.iter().map(|m| m.mean_links).sum::<f64>() / n,
        max_links: rows.iter().map(|m| m.max_links).max().unwrap_or(0),
        mean_itbs: rows.iter().map(|m| m.mean_itbs).sum::<f64>() / n,
        root_crossing_fraction: rows.iter().map(|m| m.root_crossing_fraction).sum::<f64>() / n,
        channel_imbalance: rows.iter().map(|m| m.channel_imbalance).sum::<f64>() / n,
        minimal_fraction: rows.iter().map(|m| m.minimal_fraction).sum::<f64>() / n,
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("# Motivation — route-set quality vs network size (mean over {seeds} seeds)");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>10}",
        "switches",
        "UD links",
        "UD min%",
        "UD root%",
        "UD imbal",
        "ITB links",
        "ITB itbs",
        "ITB root%",
        "ITB imbal"
    );

    let mut out = Vec::new();
    for &switches in &[8usize, 16, 24, 32] {
        let rows: Vec<(RouteSetMetrics, RouteSetMetrics)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let topo = random_irregular(&IrregularSpec::evaluation_default(switches, seed));
                let ud = UpDown::compute_default(&topo);
                let udt = RouteTable::compute(&topo, &ud, RoutingPolicy::UpDown).unwrap();
                let itbt = RouteTable::compute(&topo, &ud, RoutingPolicy::Itb).unwrap();
                (analyze(&topo, &ud, &udt), analyze(&topo, &ud, &itbt))
            })
            .collect();
        let (u, i): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let (mu, mi) = (mean_metrics(u), mean_metrics(i));
        println!(
            "{:>8} | {:>10.3} {:>9.1}% {:>9.1}% {:>10.2} | {:>10.3} {:>10.3} {:>9.1}% {:>10.2}",
            switches,
            mu.mean_links,
            mu.minimal_fraction * 100.0,
            mu.root_crossing_fraction * 100.0,
            mu.channel_imbalance,
            mi.mean_links,
            mi.mean_itbs,
            mi.root_crossing_fraction * 100.0,
            mi.channel_imbalance
        );
        out.push(SizeRow {
            switches,
            ud: mu,
            itb: mi,
        });
    }
    println!();
    println!(
        "ITB routing is 100% minimal by construction, crosses the spanning-tree \
         root less often, and spreads channel load more evenly — the gap widens \
         with network size, as the paper's §1-2 argue."
    );
    itb_bench::dump_json("motivation_balance", &out);
}

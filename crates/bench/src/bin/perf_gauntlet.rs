//! Perf gauntlet: the simulator's own wall-clock benchmark.
//!
//! The paper counts firmware nanoseconds; this harness counts *our*
//! nanoseconds — how many simulation events per second the engine
//! dispatches, and how many heap allocations each simulated packet costs.
//! It runs the Figure-6 testbed workloads plus a larger synthetic
//! multi-switch fabric under load, prints a table, and writes:
//!
//! * `results/perf_gauntlet.json` — the full report (wall-clock included),
//! * `results/perf_gauntlet_digest.json` — only the deterministic sim-side
//!   numbers (events, sim time, deliveries), byte-identical across same-seed
//!   runs; CI compares two smoke runs of this file,
//! * `BENCH_perf.json` at the workspace root (full mode only) — the
//!   events/sec trajectory every future PR must not regress.
//!
//! `cargo run --release -p itb-bench --bin perf_gauntlet [--smoke] [--label NAME]`

// The counting allocator below is the one sanctioned unsafe block in the
// workspace; everything else is denied (U001).
#![deny(unsafe_code)]

use itb_core::ClusterSpec;
use itb_gm::{AppBehavior, Cluster, ClusterEvent, FlowWorld, FlowWorldSpec, ParRunReport};
use itb_nic::McpFlavor;
use itb_obs::export::{write_par_windows_chrome_trace, ParTraceMeta};
use itb_routing::{figures, RoutingPolicy};
use itb_sim::par::{ParProfile, WindowRecord};
use itb_sim::{run_until, run_while, EventQueue, SimDuration, SimTime};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
// detlint::allow(D002, the gauntlet measures wall-clock throughput by design; sim facts go in the digest)
use std::time::Instant;

/// Counting wrapper around the system allocator: every `alloc`/`realloc`
/// bumps a global counter, so scenarios can report allocations per packet.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are side effects.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Full per-scenario report (wall-clock and allocation numbers vary run to
/// run; the digest subset below does not).
#[derive(Debug, Clone, Serialize)]
struct ScenarioReport {
    name: String,
    events: u64,
    sim_us: f64,
    delivered: u64,
    injected: u64,
    wall_s: f64,
    events_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
    allocs_per_packet: f64,
}

/// The deterministic subset: a pure function of the scenario seed, so two
/// same-mode runs must serialize byte-identically (the CI perf smoke).
#[derive(Debug, Clone, Serialize)]
struct ScenarioDigest {
    name: String,
    events: u64,
    sim_us: f64,
    delivered: u64,
    injected: u64,
}

impl ScenarioReport {
    fn digest(&self) -> ScenarioDigest {
        ScenarioDigest {
            name: self.name.clone(),
            events: self.events,
            sim_us: self.sim_us,
            delivered: self.delivered,
            injected: self.injected,
        }
    }
}

/// Run one prepared cluster to its stop condition, measuring wall time,
/// dispatched events and allocation cost.
fn measure(
    name: &str,
    cluster: &mut Cluster,
    q: &mut EventQueue<ClusterEvent>,
    run: impl FnOnce(&mut Cluster, &mut EventQueue<ClusterEvent>),
) -> ScenarioReport {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    // detlint::allow(D002, wall-clock section: Mev/s and allocs/packet are host-side metrics)
    let t0 = Instant::now();
    run(cluster, q);
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - b0;
    let events = q.events_dispatched();
    let injected = cluster.net.stats().injected;
    ScenarioReport {
        name: name.to_string(),
        events,
        sim_us: q.now().as_us_f64(),
        delivered: cluster.delivered_count() as u64,
        injected,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        allocs,
        alloc_bytes,
        allocs_per_packet: allocs as f64 / injected.max(1) as f64,
    }
}

/// Figure-6 testbed, ITB route, ping-pong over the size ladder — the
/// paper's own workload, exercising the ITB firmware path.
fn fig6_pingpong(iters: u32) -> ScenarioReport {
    let base = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    let tb = base.testbed.clone().expect("testbed spec");
    let spec = base
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb));
    let sizes = itb_core::experiments::allsize_ladder();
    let n = spec.num_hosts();
    let mut behaviors = vec![AppBehavior::Sink; n];
    behaviors[tb.host1.idx()] = AppBehavior::PingPong {
        peer: tb.host2,
        sizes,
        iters,
        warmup: 2,
    };
    behaviors[tb.host2.idx()] = AppBehavior::Echo;
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    measure("fig6_pingpong_itb", &mut cluster, &mut q, |c, q| {
        run_while(c, q, |c| !c.all_pingpongs_done());
    })
}

/// A 16-switch irregular fabric streaming a permutation pattern — sustained
/// wormhole traffic across the core, no randomness in arrivals.
fn perm_stream_16sw(count: u32) -> ScenarioReport {
    let spec = ClusterSpec::irregular(16, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors: Vec<AppBehavior> = (0..n)
        .map(|i| AppBehavior::Stream {
            dst: itb_topo::HostId(((i + n / 2) % n) as u16),
            size: 512,
            count,
        })
        .collect();
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    let expected = n * count as usize;
    measure("perm_stream_16sw", &mut cluster, &mut q, move |c, q| {
        run_while(c, q, |c| c.delivered_count() < expected);
    })
}

/// Worker threads requested via `ITB_THREADS` (same parsing discipline as
/// the vendored rayon shim: trimmed integer, minimum 1, default 1).
fn itb_threads() -> u32 {
    std::env::var("ITB_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Per-run record of a sharded execution, written to
/// `results/perf_gauntlet_par.json`. Wall-clock numbers here are honest
/// measurements on whatever machine ran the gauntlet —
/// `available_parallelism` in the surrounding report says how many cores
/// that machine actually had.
#[derive(Debug, Clone, Serialize)]
struct ParScenario {
    name: String,
    threads: u32,
    shards: u32,
    edge_cut: usize,
    lookahead_ns: f64,
    windows: u64,
    per_shard_events: Vec<u64>,
    events: u64,
    /// Cross-shard rank ties over all shard queues; 0 proves the run
    /// followed the sequential event order exactly (see `itb_sim::par`).
    cross_shard_ties: u64,
    wall_s: f64,
    events_per_sec: f64,
    /// Wall-clock speedup against the run of this same scenario in this
    /// same gauntlet invocation whose `threads == 1`; `null` when the
    /// invocation included no 1-thread run (e.g. `--smoke` with
    /// `ITB_THREADS > 1`), because there is then no honest baseline.
    speedup_vs_t1: Option<f64>,
}

/// The Poisson-load spec shared by the large-fabric scenarios.
fn load_spec(switches: usize) -> (ClusterSpec, Vec<AppBehavior>) {
    let spec = ClusterSpec::irregular(switches, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors = vec![
        AppBehavior::Poisson {
            size: 512,
            mean_gap: SimDuration::from_us(40),
            limit: 0,
        };
        n
    ];
    (spec, behaviors)
}

/// Run a load scenario on `threads` shards and adapt the aggregate report
/// into the gauntlet's scenario/par records. The digest subset (events,
/// sim time, deliveries, injections) is identical to the sequential run of
/// the same spec — that is the determinism contract CI byte-compares.
fn measure_par(
    name: &str,
    spec: &ClusterSpec,
    behaviors: &[AppBehavior],
    threads: u32,
    horizon: SimTime,
    profile: bool,
) -> (
    ScenarioReport,
    ParRunReport,
    ParScenario,
    Option<ParProfile>,
) {
    // Partitioning and replica construction stay outside the timed
    // section, mirroring the sequential scenarios (which build and start
    // their cluster before `measure`).
    let part = itb_topo::partition(spec.topology(), threads as usize, spec.seed);
    let replicas: Vec<Cluster> = (0..part.shards)
        .map(|_| spec.build(behaviors.to_vec()))
        .collect();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    // detlint::allow(D002, wall-clock section: Mev/s and allocs/packet are host-side metrics)
    let t0 = Instant::now();
    let (report, prof) = if profile {
        // The profiled engine carries the per-window stopwatch; its record
        // memory and clock reads land inside the timed section on purpose —
        // the sidecar says what profiling itself costs.
        let (_worlds, report, prof) = itb_gm::run_cluster_shards_profiled(replicas, &part, horizon);
        (report, Some(prof))
    } else {
        let (_worlds, report) = itb_gm::run_cluster_shards(replicas, &part, horizon);
        (report, None)
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - b0;
    let events_per_sec = report.events as f64 / wall_s.max(1e-9);
    let scenario = ScenarioReport {
        name: name.to_string(),
        events: report.events,
        sim_us: report.sim_time.as_us_f64(),
        delivered: report.delivered,
        injected: report.injected,
        wall_s,
        events_per_sec,
        allocs,
        alloc_bytes,
        allocs_per_packet: allocs as f64 / report.injected.max(1) as f64,
    };
    let par = ParScenario {
        name: name.to_string(),
        threads: report.threads,
        shards: report.per_shard_events.len() as u32,
        edge_cut: report.edge_cut,
        lookahead_ns: report.lookahead.as_ps() as f64 / 1000.0,
        windows: report.windows,
        per_shard_events: report.per_shard_events.clone(),
        events: report.events,
        cross_shard_ties: report.cross_shard_ties,
        wall_s,
        events_per_sec,
        speedup_vs_t1: None,
    };
    (scenario, report, par, prof)
}

/// Fill in `speedup_vs_t1` across one scenario's runs: the baseline is the
/// run that actually used one thread, wherever it sits in the sweep. With
/// no 1-thread run in the batch the field stays `null` — never a speedup
/// of a run against itself.
fn fill_speedups(runs: &mut [ParScenario]) {
    let Some(base) = runs.iter().find(|r| r.threads == 1).map(|r| r.wall_s) else {
        return;
    };
    for r in runs.iter_mut() {
        r.speedup_vs_t1 = Some(base / r.wall_s.max(1e-9));
    }
}

/// The large-topology scenario the BENCH_perf trajectory gates on: a
/// 32-switch irregular fabric (128 hosts) under Poisson load for a fixed
/// simulated window. This is the workload class the ROADMAP's bigger
/// multistage studies need to be cheap. With `ITB_THREADS>1` the run goes
/// through the sharded engine — same digest, by construction.
///
/// `sample` turns on timeline + health sampling (full mode, sequential
/// runs only): the committed BENCH trajectory prices observability in, so
/// a regression in the sampling path shows up as a throughput regression
/// here. Smoke runs keep sampling off — the CI 1-vs-4-thread digest
/// byte-compare needs identical event counts, and the sharded engine
/// cannot sample (see `Cluster::set_shard`).
fn large_load_32sw(
    window_us: u64,
    threads: u32,
    sample: bool,
) -> (ScenarioReport, Option<ParScenario>) {
    let horizon = SimTime::ZERO + SimDuration::from_us(window_us);
    if threads > 1 {
        let (spec, behaviors) = load_spec(32);
        let (scenario, _, par, _) = measure_par(
            "large_load_32sw",
            &spec,
            &behaviors,
            threads,
            horizon,
            false,
        );
        return (scenario, Some(par));
    }
    let (spec, behaviors) = load_spec(32);
    let mut cluster = spec.build(behaviors);
    if sample {
        cluster.enable_timeline(SimDuration::from_us(50));
        cluster.enable_health(SimDuration::from_us(50), SimDuration::from_ms(50));
    }
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    let report = measure("large_load_32sw", &mut cluster, &mut q, move |c, q| {
        run_until(c, q, horizon);
    });
    if sample {
        // Prove the observers actually ran, then write their artifacts.
        let t = cluster.take_timeline().expect("timeline was enabled");
        assert!(!t.is_empty(), "a sampled load run must record intervals");
        itb_bench::dump_stream("large_load_32sw_timeline.jsonl", |w| t.write_jsonl(w));
        let h = cluster.health_report(q.now()).expect("health was enabled");
        assert!(
            h.healthy,
            "loaded 32sw run must stay healthy: {:?}",
            h.violations
        );
        itb_bench::dump_stream("large_load_32sw_health.json", |w| h.write_json(w));
    }
    (report, None)
}

/// A profiled parallel run, kept for the window-utilization sidecars: the
/// per-window records plus the aggregate numbers the gantt metadata needs.
struct ProfiledRun {
    threads: u32,
    profile: ParProfile,
    cross_shard_ties: u64,
    per_shard_events: Vec<u64>,
}

/// The linear-scaling study: the 64-switch irregular preset (256 hosts)
/// under the same Poisson load, run across a thread sweep. The 1-thread
/// run provides the digest scenario; every run lands in the par report
/// with its wall-clock speedup over the 1-thread run. The run whose thread
/// count matches `profile_threads` goes through the profiled engine and
/// comes back with its per-(shard, window) records.
fn large_load_64sw_par(
    window_us: u64,
    sweep: &[u32],
    profile_threads: u32,
) -> (ScenarioReport, Vec<ParScenario>, Option<ProfiledRun>) {
    let (spec, behaviors) = load_spec(64);
    let horizon = SimTime::ZERO + SimDuration::from_us(window_us);
    let mut runs: Vec<ParScenario> = Vec::new();
    let mut digest_scenario: Option<ScenarioReport> = None;
    let mut profiled: Option<ProfiledRun> = None;
    for &t in sweep {
        let profile = t == profile_threads && profiled.is_none();
        let (scenario, report, par, prof) = measure_par(
            "large_load_64sw_par",
            &spec,
            &behaviors,
            t,
            horizon,
            profile,
        );
        match &digest_scenario {
            Some(d0) => {
                assert_eq!(
                    (scenario.events, scenario.delivered, scenario.injected),
                    (d0.events, d0.delivered, d0.injected),
                    "thread sweep diverged at t={t}"
                );
            }
            None => digest_scenario = Some(scenario),
        }
        eprintln!(
            "  64sw t={t}: shards={} cut={} windows={} ties={} wall={:.3}s{}",
            par.shards,
            par.edge_cut,
            par.windows,
            par.cross_shard_ties,
            par.wall_s,
            if profile { " [profiled]" } else { "" }
        );
        if let Some(profile) = prof {
            profiled = Some(ProfiledRun {
                threads: t,
                profile,
                cross_shard_ties: report.cross_shard_ties,
                per_shard_events: report.per_shard_events.clone(),
            });
        }
        runs.push(par);
    }
    fill_speedups(&mut runs);
    for r in &runs {
        if let Some(s) = r.speedup_vs_t1 {
            eprintln!("  64sw t={}: speedup={s:.2}x vs t=1", r.threads);
        }
    }
    (digest_scenario.expect("sweep is non-empty"), runs, profiled)
}

/// The planet-scale scenario: the 1024-switch irregular fabric (4096
/// hosts) driven entirely by the hybrid engine's flow side. A packet-level
/// Cluster at this scale would precompute ~16.7 million source routes
/// before the first event fired; the flow engine models the same fabric
/// with per-flow max-min rates and coarse solve rounds, which is the whole
/// point of the hybrid split.
///
/// Throughput accounting: a flow round does real modelling work for every
/// live flow (rate solve share + service commit), so the scenario reports
/// *equivalent events* — dispatched queue events plus per-flow service
/// touches (`FlowWorld::service_ops`). The BENCH trajectory gates on that
/// number; `injected` counts opened flows so allocs/packet reads as
/// allocations per flow.
///
/// Full mode runs 4096 hosts x 30 flows (122 880 flows, >100k live at the
/// peak — asserted, it is the scenario's reason to exist). Smoke mode
/// shrinks the fabric but keeps the exact same code path for the CI digest
/// byte-compare; the flow engine is sequential either way, so the 1-vs-4
/// thread compare holds trivially.
fn large_load_1024sw(smoke: bool) -> ScenarioReport {
    let (topo, spec) = if smoke {
        (
            itb_topo::builders::irregular_big(24, itb_topo::builders::IRREGULAR1024_SEED),
            FlowWorldSpec {
                flows_per_host: 4,
                flow_bytes: 16_384,
                mean_gap: SimDuration::from_us(50),
                round: SimDuration::from_us(200),
                seed: 1024,
                link_bytes_per_ns: 0.16,
            },
        )
    } else {
        (
            itb_topo::builders::irregular1024(),
            FlowWorldSpec {
                flows_per_host: 30,
                flow_bytes: 65_536,
                mean_gap: SimDuration::from_us(100),
                round: SimDuration::from_ms(1),
                seed: 1024,
                link_bytes_per_ns: 0.16,
            },
        )
    };
    let total_flows = u64::from(spec.flows_per_host) * topo.num_hosts() as u64;
    let mut w = FlowWorld::new(&topo, spec);
    let mut q = EventQueue::new();
    w.start(&mut q);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    // detlint::allow(D002, wall-clock section: Mev/s and allocs/packet are host-side metrics)
    let t0 = Instant::now();
    // The queue drains itself once the last flow delivers; the generous
    // horizon is a stuck-run backstop, not a workload parameter.
    run_until(&mut w, &mut q, SimTime::ZERO + SimDuration::from_ms(60_000));
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - b0;
    assert_eq!(w.delivered(), total_flows, "every flow must drain");
    if !smoke {
        assert!(
            w.peak_live() >= 100_000,
            "planet-scale scenario must hold 100k+ concurrent flows (peak_live={})",
            w.peak_live()
        );
    }
    let events = q.events_dispatched() + w.service_ops();
    eprintln!(
        "  1024sw: flows={total_flows} peak_live={} solves={} rounds_sim_us={:.0}",
        w.peak_live(),
        w.solves(),
        q.now().as_us_f64()
    );
    ScenarioReport {
        name: "large_load_1024sw".to_string(),
        events,
        sim_us: q.now().as_us_f64(),
        delivered: w.delivered(),
        injected: total_flows,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        allocs,
        alloc_bytes,
        allocs_per_packet: allocs as f64 / total_flows.max(1) as f64,
    }
}

#[derive(Debug, Serialize)]
struct GauntletReport {
    mode: &'static str,
    scenarios: Vec<ScenarioReport>,
}

/// The sharded-engine sidecar report: every parallel run of this gauntlet
/// invocation, plus the host parallelism context that makes the wall-clock
/// columns interpretable.
#[derive(Debug, Serialize)]
struct ParGauntletReport {
    mode: &'static str,
    itb_threads: u32,
    available_parallelism: usize,
    runs: Vec<ParScenario>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "current".to_string());
    let threads = itb_threads();

    // Smoke mode: tiny deterministic runs for the CI byte-compare. Full
    // mode: long enough that events/sec is a stable engine metric.
    let (pp_iters, stream_count, window_us) = if smoke { (2, 4, 300) } else { (40, 60, 4000) };
    // The 64-switch fabric carries twice the host count; a shorter window
    // keeps the full thread sweep affordable. Smoke runs only the
    // env-selected thread count so the CI compare exercises both engines.
    let (par_window_us, sweep) = if smoke {
        (300, vec![threads])
    } else {
        (1500, vec![1, 2, 4, 8])
    };

    eprintln!(
        "running perf gauntlet ({}, ITB_THREADS={threads})...",
        if smoke { "smoke" } else { "full" }
    );
    let (ll32, mut par_runs_opt) = large_load_32sw(window_us, threads, !smoke);
    // Profile the sweep run matching ITB_THREADS; when the env choice is
    // not in the sweep (full mode with an off-sweep ITB_THREADS), profile
    // the widest run so the sidecar always exists.
    let profile_threads = if sweep.contains(&threads) {
        threads
    } else {
        *sweep.last().expect("sweep is non-empty")
    };
    let (ll64, sweep_runs, profiled) = large_load_64sw_par(par_window_us, &sweep, profile_threads);
    let mut par_runs: Vec<ParScenario> = par_runs_opt.take().into_iter().collect();
    par_runs.extend(sweep_runs);
    let scenarios = vec![
        fig6_pingpong(pp_iters),
        perm_stream_16sw(stream_count),
        ll32,
        ll64,
        large_load_1024sw(smoke),
    ];

    println!("# Perf gauntlet — simulator wall-clock throughput");
    println!(
        "{:<22} {:>12} {:>10} {:>9} {:>8} {:>14} {:>12}",
        "scenario", "events", "sim(us)", "wall(s)", "Mev/s", "allocs/packet", "delivered"
    );
    for s in &scenarios {
        println!(
            "{:<22} {:>12} {:>10.1} {:>9.3} {:>8.2} {:>14.1} {:>12}",
            s.name,
            s.events,
            s.sim_us,
            s.wall_s,
            s.events_per_sec / 1e6,
            s.allocs_per_packet,
            s.delivered
        );
    }

    let report = GauntletReport {
        mode: if smoke { "smoke" } else { "full" },
        scenarios: scenarios.clone(),
    };
    itb_bench::dump_json("perf_gauntlet", &report);
    let digest: Vec<ScenarioDigest> = scenarios.iter().map(|s| s.digest()).collect();
    itb_bench::dump_json("perf_gauntlet_digest", &digest);
    let par_report = ParGauntletReport {
        mode: if smoke { "smoke" } else { "full" },
        itb_threads: threads,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        runs: par_runs,
    };
    itb_bench::dump_json("perf_gauntlet_par", &par_report);
    if let Some(p) = profiled {
        dump_profile(if smoke { "smoke" } else { "full" }, p);
    }

    // The committed trajectory: full runs append/update their labelled
    // entry so each PR's speedup is measured against the recorded baseline.
    if !smoke {
        update_bench_perf(&label, &scenarios);
    }
}

/// Detailed-record cap for the profiler sidecar: full-mode sweeps execute
/// tens of thousands of windows and the point of the sidecar is barrier /
/// utilization *shape*, not an unbounded dump. Truncation is never silent —
/// the artifact records both counts and the run log says what was dropped.
const PROFILE_RECORD_CAP: usize = 2000;

/// The PDES profiler sidecar written to `results/perf_gauntlet_profile.json`.
/// The barrier wall-ns fields are honest host-clock measurements and vary
/// run to run, so this artifact (and the window gantt next to it) is never
/// part of the CI byte-compares — those gate on the digest and par reports.
#[derive(Debug, Serialize)]
struct ProfileArtifact {
    mode: &'static str,
    scenario: &'static str,
    threads: u32,
    shards: usize,
    records_total: usize,
    records_written: usize,
    truncated: bool,
    records: Vec<WindowRecord>,
}

/// Write the profiler sidecars for the one profiled run: the JSON record
/// dump and the Chrome `trace_event` window gantt (one lane per shard; load
/// it in Perfetto / `chrome://tracing` to see window utilization).
fn dump_profile(mode: &'static str, p: ProfiledRun) {
    let ProfiledRun {
        threads,
        mut profile,
        cross_shard_ties,
        per_shard_events,
    } = p;
    let records_total = profile.records.len();
    let truncated = records_total > PROFILE_RECORD_CAP;
    if truncated {
        // Keep a *time prefix*, not a record prefix: records sort by
        // (shard, window), so a plain truncate would keep only shard 0 and
        // the gantt would lose every other lane. Capping the window ordinal
        // keeps the same leading stretch of the run on all shards.
        let windows_keep = (PROFILE_RECORD_CAP / per_shard_events.len().max(1)) as u64;
        profile.records.retain(|r| r.window < windows_keep);
        eprintln!(
            "  profiler: keeping the first {windows_keep} windows on every shard — {} of \
             {records_total} records ({} dropped from the sidecar and gantt)",
            profile.records.len(),
            records_total - profile.records.len()
        );
    }
    let meta = ParTraceMeta {
        cross_shard_ties,
        per_shard_events: per_shard_events.clone(),
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        threads,
    };
    itb_bench::dump_stream("perf_gauntlet_windows_trace.json", |w| {
        write_par_windows_chrome_trace(&profile.records, &meta, w)
    });
    let artifact = ProfileArtifact {
        mode,
        scenario: "large_load_64sw_par",
        threads,
        shards: per_shard_events.len(),
        records_total,
        records_written: profile.records.len(),
        truncated,
        records: profile.records,
    };
    itb_bench::dump_json("perf_gauntlet_profile", &artifact);
}

/// One trajectory entry of `BENCH_perf.json`, serialized on a single line
/// so the file can be spliced without a JSON parser (the vendored
/// serde_json stub only serializes).
#[derive(Debug, Serialize)]
struct TrajectoryEntry {
    label: String,
    events_per_sec: Vec<(String, f64)>,
    allocs_per_packet: Vec<(String, f64)>,
}

/// Merge this run into `BENCH_perf.json` (workspace root): one entry per
/// label, one line per entry, most recent run for a label wins. The file
/// stays valid JSON; the line discipline is the append convention.
fn update_bench_perf(label: &str, scenarios: &[ScenarioReport]) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_perf.json");
    let entry = TrajectoryEntry {
        label: label.to_string(),
        events_per_sec: scenarios
            .iter()
            .map(|s| (s.name.clone(), s.events_per_sec))
            .collect(),
        allocs_per_packet: scenarios
            .iter()
            .map(|s| (s.name.clone(), s.allocs_per_packet))
            .collect(),
    };
    let line = format!(
        "    {}",
        serde_json::to_string(&entry).expect("entry serializes")
    );
    let needle = format!("\"label\":\"{label}\"");
    let mut lines: Vec<String> = match std::fs::read_to_string(&path) {
        Ok(s) => s.lines().map(str::to_string).collect(),
        Err(_) => vec![
            "{".into(),
            "  \"benchmark\": \"perf_gauntlet\",".into(),
            "  \"unit\": \"events_per_sec (wall-clock)\",".into(),
            "  \"trajectory\": [".into(),
            "  ]".into(),
            "}".into(),
        ],
    };
    if let Some(slot) = lines.iter_mut().find(|l| l.contains(&needle)) {
        let keep_comma = slot.trim_end().ends_with(',');
        *slot = if keep_comma { format!("{line},") } else { line };
    } else {
        let close = lines
            .iter()
            .position(|l| l.trim() == "]")
            .expect("trajectory array close");
        if close > 0 && lines[close - 1].trim().starts_with('{') {
            let prev = &mut lines[close - 1];
            if !prev.trim_end().ends_with(',') {
                prev.push(',');
            }
        }
        lines.insert(close, line);
    }
    let mut txt = lines.join("\n");
    txt.push('\n');
    std::fs::write(&path, txt).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
}

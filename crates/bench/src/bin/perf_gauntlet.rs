//! Perf gauntlet: the simulator's own wall-clock benchmark.
//!
//! The paper counts firmware nanoseconds; this harness counts *our*
//! nanoseconds — how many simulation events per second the engine
//! dispatches, and how many heap allocations each simulated packet costs.
//! It runs the Figure-6 testbed workloads plus a larger synthetic
//! multi-switch fabric under load, prints a table, and writes:
//!
//! * `results/perf_gauntlet.json` — the full report (wall-clock included),
//! * `results/perf_gauntlet_digest.json` — only the deterministic sim-side
//!   numbers (events, sim time, deliveries), byte-identical across same-seed
//!   runs; CI compares two smoke runs of this file,
//! * `BENCH_perf.json` at the workspace root (full mode only) — the
//!   events/sec trajectory every future PR must not regress.
//!
//! `cargo run --release -p itb-bench --bin perf_gauntlet [--smoke] [--label NAME]`

// The counting allocator below is the one sanctioned unsafe block in the
// workspace; everything else is denied (U001).
#![deny(unsafe_code)]

use itb_core::ClusterSpec;
use itb_gm::{AppBehavior, Cluster, ClusterEvent};
use itb_nic::McpFlavor;
use itb_routing::{figures, RoutingPolicy};
use itb_sim::{run_until, run_while, EventQueue, SimDuration, SimTime};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
// detlint::allow(D002, the gauntlet measures wall-clock throughput by design; sim facts go in the digest)
use std::time::Instant;

/// Counting wrapper around the system allocator: every `alloc`/`realloc`
/// bumps a global counter, so scenarios can report allocations per packet.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are side effects.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Full per-scenario report (wall-clock and allocation numbers vary run to
/// run; the digest subset below does not).
#[derive(Debug, Clone, Serialize)]
struct ScenarioReport {
    name: String,
    events: u64,
    sim_us: f64,
    delivered: u64,
    injected: u64,
    wall_s: f64,
    events_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
    allocs_per_packet: f64,
}

/// The deterministic subset: a pure function of the scenario seed, so two
/// same-mode runs must serialize byte-identically (the CI perf smoke).
#[derive(Debug, Clone, Serialize)]
struct ScenarioDigest {
    name: String,
    events: u64,
    sim_us: f64,
    delivered: u64,
    injected: u64,
}

impl ScenarioReport {
    fn digest(&self) -> ScenarioDigest {
        ScenarioDigest {
            name: self.name.clone(),
            events: self.events,
            sim_us: self.sim_us,
            delivered: self.delivered,
            injected: self.injected,
        }
    }
}

/// Run one prepared cluster to its stop condition, measuring wall time,
/// dispatched events and allocation cost.
fn measure(
    name: &str,
    mut cluster: Cluster,
    mut q: EventQueue<ClusterEvent>,
    run: impl FnOnce(&mut Cluster, &mut EventQueue<ClusterEvent>),
) -> ScenarioReport {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    // detlint::allow(D002, wall-clock section: Mev/s and allocs/packet are host-side metrics)
    let t0 = Instant::now();
    run(&mut cluster, &mut q);
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - b0;
    let events = q.events_dispatched();
    let injected = cluster.net.stats().injected;
    ScenarioReport {
        name: name.to_string(),
        events,
        sim_us: q.now().as_us_f64(),
        delivered: cluster.delivered_count() as u64,
        injected,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        allocs,
        alloc_bytes,
        allocs_per_packet: allocs as f64 / injected.max(1) as f64,
    }
}

/// Figure-6 testbed, ITB route, ping-pong over the size ladder — the
/// paper's own workload, exercising the ITB firmware path.
fn fig6_pingpong(iters: u32) -> ScenarioReport {
    let base = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    let tb = base.testbed.clone().expect("testbed spec");
    let spec = base
        .with_route_override(figures::fig8_itb_route(&tb))
        .with_route_override(figures::fig8_return_route(&tb));
    let sizes = itb_core::experiments::allsize_ladder();
    let n = spec.num_hosts();
    let mut behaviors = vec![AppBehavior::Sink; n];
    behaviors[tb.host1.idx()] = AppBehavior::PingPong {
        peer: tb.host2,
        sizes,
        iters,
        warmup: 2,
    };
    behaviors[tb.host2.idx()] = AppBehavior::Echo;
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    measure("fig6_pingpong_itb", cluster, q, |c, q| {
        run_while(c, q, |c| !c.all_pingpongs_done());
    })
}

/// A 16-switch irregular fabric streaming a permutation pattern — sustained
/// wormhole traffic across the core, no randomness in arrivals.
fn perm_stream_16sw(count: u32) -> ScenarioReport {
    let spec = ClusterSpec::irregular(16, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors: Vec<AppBehavior> = (0..n)
        .map(|i| AppBehavior::Stream {
            dst: itb_topo::HostId(((i + n / 2) % n) as u16),
            size: 512,
            count,
        })
        .collect();
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    let expected = n * count as usize;
    measure("perm_stream_16sw", cluster, q, move |c, q| {
        run_while(c, q, |c| c.delivered_count() < expected);
    })
}

/// The large-topology scenario the BENCH_perf trajectory gates on: a
/// 32-switch irregular fabric (128 hosts) under Poisson load for a fixed
/// simulated window. This is the workload class the ROADMAP's bigger
/// multistage studies need to be cheap.
fn large_load_32sw(window_us: u64) -> ScenarioReport {
    let spec = ClusterSpec::irregular(32, 1).with_routing(RoutingPolicy::Itb);
    let n = spec.num_hosts();
    let behaviors = vec![
        AppBehavior::Poisson {
            size: 512,
            mean_gap: SimDuration::from_us(40),
            limit: 0,
        };
        n
    ];
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    let horizon = SimTime::ZERO + SimDuration::from_us(window_us);
    measure("large_load_32sw", cluster, q, move |c, q| {
        run_until(c, q, horizon);
    })
}

#[derive(Debug, Serialize)]
struct GauntletReport {
    mode: &'static str,
    scenarios: Vec<ScenarioReport>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "current".to_string());

    // Smoke mode: tiny deterministic runs for the CI byte-compare. Full
    // mode: long enough that events/sec is a stable engine metric.
    let (pp_iters, stream_count, window_us) = if smoke { (2, 4, 300) } else { (40, 60, 4000) };

    eprintln!(
        "running perf gauntlet ({})...",
        if smoke { "smoke" } else { "full" }
    );
    let scenarios = vec![
        fig6_pingpong(pp_iters),
        perm_stream_16sw(stream_count),
        large_load_32sw(window_us),
    ];

    println!("# Perf gauntlet — simulator wall-clock throughput");
    println!(
        "{:<22} {:>12} {:>10} {:>9} {:>8} {:>14} {:>12}",
        "scenario", "events", "sim(us)", "wall(s)", "Mev/s", "allocs/packet", "delivered"
    );
    for s in &scenarios {
        println!(
            "{:<22} {:>12} {:>10.1} {:>9.3} {:>8.2} {:>14.1} {:>12}",
            s.name,
            s.events,
            s.sim_us,
            s.wall_s,
            s.events_per_sec / 1e6,
            s.allocs_per_packet,
            s.delivered
        );
    }

    let report = GauntletReport {
        mode: if smoke { "smoke" } else { "full" },
        scenarios: scenarios.clone(),
    };
    itb_bench::dump_json("perf_gauntlet", &report);
    let digest: Vec<ScenarioDigest> = scenarios.iter().map(|s| s.digest()).collect();
    itb_bench::dump_json("perf_gauntlet_digest", &digest);

    // The committed trajectory: full runs append/update their labelled
    // entry so each PR's speedup is measured against the recorded baseline.
    if !smoke {
        update_bench_perf(&label, &scenarios);
    }
}

/// One trajectory entry of `BENCH_perf.json`, serialized on a single line
/// so the file can be spliced without a JSON parser (the vendored
/// serde_json stub only serializes).
#[derive(Debug, Serialize)]
struct TrajectoryEntry {
    label: String,
    events_per_sec: Vec<(String, f64)>,
    allocs_per_packet: Vec<(String, f64)>,
}

/// Merge this run into `BENCH_perf.json` (workspace root): one entry per
/// label, one line per entry, most recent run for a label wins. The file
/// stays valid JSON; the line discipline is the append convention.
fn update_bench_perf(label: &str, scenarios: &[ScenarioReport]) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_perf.json");
    let entry = TrajectoryEntry {
        label: label.to_string(),
        events_per_sec: scenarios
            .iter()
            .map(|s| (s.name.clone(), s.events_per_sec))
            .collect(),
        allocs_per_packet: scenarios
            .iter()
            .map(|s| (s.name.clone(), s.allocs_per_packet))
            .collect(),
    };
    let line = format!(
        "    {}",
        serde_json::to_string(&entry).expect("entry serializes")
    );
    let needle = format!("\"label\":\"{label}\"");
    let mut lines: Vec<String> = match std::fs::read_to_string(&path) {
        Ok(s) => s.lines().map(str::to_string).collect(),
        Err(_) => vec![
            "{".into(),
            "  \"benchmark\": \"perf_gauntlet\",".into(),
            "  \"unit\": \"events_per_sec (wall-clock)\",".into(),
            "  \"trajectory\": [".into(),
            "  ]".into(),
            "}".into(),
        ],
    };
    if let Some(slot) = lines.iter_mut().find(|l| l.contains(&needle)) {
        let keep_comma = slot.trim_end().ends_with(',');
        *slot = if keep_comma { format!("{line},") } else { line };
    } else {
        let close = lines
            .iter()
            .position(|l| l.trim() == "]")
            .expect("trajectory array close");
        if close > 0 && lines[close - 1].trim().starts_with('{') {
            let prev = &mut lines[close - 1];
            if !prev.trim_end().ends_with(',') {
                prev.push(',');
            }
        }
        lines.insert(close, line);
    }
    let mut txt = lines.join("\n");
    txt.push('\n');
    std::fs::write(&path, txt).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
}

//! Regenerate the motivation experiment (M-THR): accepted throughput and
//! average latency versus offered load on irregular networks, up*/down*
//! versus ITB routing — the simulation result the paper's §2 cites (its
//! references report network throughput doubling, sometimes tripling).
//!
//! `cargo run --release -p itb-bench --bin motivation_throughput [switches] [seed]`

use itb_core::experiments::{load_sweep, LoadSweep};
use itb_core::{ClusterSpec, RoutingPolicy};
use itb_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    switches: usize,
    seed: u64,
    size: u32,
    ud: Vec<itb_core::LoadPoint>,
    itb: Vec<itb_core::LoadPoint>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let switches: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let sweep = LoadSweep {
        size: 512,
        offered_mb_s: vec![2.0, 5.0, 10.0, 15.0, 20.0, 26.0, 32.0, 40.0, 50.0],
        warmup: SimDuration::from_ms(2),
        window: SimDuration::from_ms(6),
        drain: SimDuration::from_ms(3),
    };

    eprintln!("load sweep on a {switches}-switch irregular network (seed {seed})...");
    let run = |policy: RoutingPolicy| {
        let spec = ClusterSpec::irregular(switches, seed).with_routing(policy);
        load_sweep(&spec, &sweep)
    };
    let ud = run(RoutingPolicy::UpDown);
    let itb = run(RoutingPolicy::Itb);

    println!("# Motivation — accepted throughput & latency vs offered load");
    println!(
        "# ({switches} switches, {} hosts, 512 B uniform Poisson)",
        switches * 4
    );
    println!(
        "{:>12} | {:>12} {:>12} {:>10} | {:>12} {:>12} {:>10}",
        "offered/host", "UD acc", "UD lat us", "UD del%", "ITB acc", "ITB lat us", "ITB del%"
    );
    for (u, i) in ud.iter().zip(&itb) {
        println!(
            "{:>12.1} | {:>12.1} {:>12.1} {:>9.1}% | {:>12.1} {:>12.1} {:>9.1}%",
            u.offered_mb_s,
            u.accepted_mb_s,
            u.avg_latency_us,
            u.delivered as f64 / u.sent.max(1) as f64 * 100.0,
            i.accepted_mb_s,
            i.avg_latency_us,
            i.delivered as f64 / i.sent.max(1) as f64 * 100.0,
        );
    }

    // Saturation summary: the highest offered load where >=90% of window
    // messages were delivered by the horizon.
    let sat = |pts: &[itb_core::LoadPoint]| {
        pts.iter()
            .filter(|p| p.delivered as f64 >= 0.90 * p.sent as f64)
            .map(|p| p.accepted_mb_s)
            .fold(0.0f64, f64::max)
    };
    let (su, si) = (sat(&ud), sat(&itb));
    println!();
    println!(
        "saturation throughput: UD {su:.0} MB/s, ITB {si:.0} MB/s  (ratio {:.2}x; the paper's references report 2-3x on comparable networks)",
        si / su.max(1e-9)
    );

    itb_bench::dump_json(
        &format!("motivation_throughput_{switches}sw_seed{seed}"),
        &Out {
            switches,
            seed,
            size: sweep.size,
            ud,
            itb,
        },
    );
}

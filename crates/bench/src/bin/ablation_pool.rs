//! Ablation A-POOL: the paper's §4 proposes replacing the stock two receive
//! buffers with a circular pool for in-transit packets, flushing (and
//! relying on GM retransmission) when it fills. This sweep loads an
//! irregular network under ITB routing with different pool sizes and
//! reports flush counts, delivered fraction and latency.
//!
//! `cargo run --release -p itb-bench --bin ablation_pool [switches] [seed]`

use itb_core::experiments::{load_sweep, LoadSweep};
use itb_core::{ClusterSpec, RoutingPolicy};
use itb_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct PoolRow {
    recv_buffers: u8,
    offered_mb_s: f64,
    accepted_mb_s: f64,
    delivered_pct: f64,
    avg_latency_us: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let switches: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    // One bursty load level near saturation; vary the pool.
    let sweep = LoadSweep {
        size: 512,
        offered_mb_s: vec![20.0],
        warmup: SimDuration::from_ms(2),
        window: SimDuration::from_ms(6),
        drain: SimDuration::from_ms(3),
    };

    println!("# Ablation — receive-buffer pool size under ITB routing");
    println!("# ({switches}-switch irregular network, 512 B Poisson @ 20 MB/s per host)");
    println!(
        "{:>8} {:>14} {:>12} {:>14}",
        "buffers", "accepted MB/s", "delivered%", "latency (us)"
    );
    let mut out = Vec::new();
    for buffers in [2u8, 4, 8, 16, 32] {
        let spec = ClusterSpec::irregular(switches, seed)
            .with_routing(RoutingPolicy::Itb)
            .with_recv_buffers(buffers);
        let pts = load_sweep(&spec, &sweep);
        let p = &pts[0];
        let delivered_pct = p.delivered as f64 / p.sent.max(1) as f64 * 100.0;
        println!(
            "{:>8} {:>14.1} {:>11.1}% {:>14.1}",
            buffers, p.accepted_mb_s, delivered_pct, p.avg_latency_us
        );
        out.push(PoolRow {
            recv_buffers: buffers,
            offered_mb_s: p.offered_mb_s,
            accepted_mb_s: p.accepted_mb_s,
            delivered_pct,
            avg_latency_us: p.avg_latency_us,
        });
    }
    println!();
    println!(
        "With the stock 2 buffers, in-transit packets compete with locally \
         terminated ones and flushes rise under load; the circular pool the \
         paper proposes (larger values) removes the drops — supporting its \
         claim that the 2-buffer implementation is only adequate for unloaded \
         networks."
    );
    itb_bench::dump_json(&format!("ablation_pool_{switches}sw_seed{seed}"), &out);
}

//! Ablation: spanning-tree root placement. Up*/down* quality depends
//! heavily on where the mapper roots the tree; ITB routing is minimal
//! regardless, so a bad root widens the gap — quantifying how much of the
//! paper's problem is root placement versus the up*/down* rule itself.
//!
//! `cargo run --release -p itb-bench --bin ablation_root [seeds]`

use itb_routing::metrics::analyze;
use itb_routing::{RouteTable, RoutingPolicy};
use itb_topo::builders::{random_irregular, IrregularSpec};
use itb_topo::spanning::{RootPolicy, SpanningTree};
use itb_topo::UpDown;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    density: String,
    policy: String,
    ud_mean_links: f64,
    ud_minimal_pct: f64,
    ud_imbalance: f64,
    itb_mean_itbs: f64,
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let switches = 16;

    println!(
        "# Ablation — spanning-tree root policy ({switches} switches, mean over {seeds} seeds)"
    );
    println!(
        "{:>8} {:>14} | {:>10} {:>10} {:>10} | {:>10}",
        "fabric", "root policy", "UD links", "UD min%", "UD imbal", "ITB itbs"
    );
    let mut rows = Vec::new();
    // Dense: 4 hosts/switch leaves 4 ports for cables; sparse: 6 hosts
    // leaves 2, giving barely-more-than-a-tree fabrics where the root
    // placement dominates.
    for (density, hosts_per_switch) in [("dense", 4usize), ("sparse", 6)] {
        for (name, policy) in [
            ("highest-deg", RootPolicy::HighestDegree),
            ("lowest-id", RootPolicy::LowestId),
            ("worst-case", RootPolicy::WorstCase),
        ] {
            let acc: Vec<(f64, f64, f64, f64)> = (0..seeds)
                .into_par_iter()
                .map(|seed| {
                    let topo = random_irregular(&IrregularSpec {
                        switches,
                        ports_per_switch: 8,
                        hosts_per_switch,
                        seed,
                    });
                    let tree = SpanningTree::compute_with_policy(&topo, policy);
                    let ud = UpDown::compute(&topo, tree);
                    let udt = RouteTable::compute(&topo, &ud, RoutingPolicy::UpDown).unwrap();
                    let itbt = RouteTable::compute(&topo, &ud, RoutingPolicy::Itb).unwrap();
                    let mu = analyze(&topo, &ud, &udt);
                    let mi = analyze(&topo, &ud, &itbt);
                    (
                        mu.mean_links,
                        mu.minimal_fraction * 100.0,
                        mu.channel_imbalance,
                        mi.mean_itbs,
                    )
                })
                .collect();
            let n = acc.len() as f64;
            let mean = |f: fn(&(f64, f64, f64, f64)) -> f64| acc.iter().map(f).sum::<f64>() / n;
            let row = Row {
                density: density.into(),
                policy: name.into(),
                ud_mean_links: mean(|x| x.0),
                ud_minimal_pct: mean(|x| x.1),
                ud_imbalance: mean(|x| x.2),
                itb_mean_itbs: mean(|x| x.3),
            };
            println!(
                "{:>8} {:>14} | {:>10.3} {:>9.1}% {:>10.2} | {:>10.3}",
                row.density,
                row.policy,
                row.ud_mean_links,
                row.ud_minimal_pct,
                row.ud_imbalance,
                row.itb_mean_itbs
            );
            rows.push(row);
        }
    }
    println!();
    println!(
        "Finding: on these random families (near-uniform switch degree, \
         ring-like when sparse) the root placement is second-order — every \
         policy lands within noise. The up*/down* losses the ITB mechanism \
         repairs come from the turn rule itself, not from an unlucky root."
    );
    itb_bench::dump_json("ablation_root", &rows);
}

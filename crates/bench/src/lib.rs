//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each `fig*`/`motivation_*`/`ablation_*` binary prints the rows the paper
//! plots AND writes the raw data as JSON under `results/` so EXPERIMENTS.md
//! numbers stay regenerable artifacts.

#![deny(unsafe_code)]

use serde::Serialize;
use std::path::PathBuf;

/// Directory where result JSON files land (workspace-relative `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ITB_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p)
        // detlint::allow(S001, the bench harness aborts if the results dir cannot be created)
        .unwrap_or_else(|e| panic!("cannot create results dir {}: {e}", p.display()));
    p
}

/// Serialize `value` to `results/<name>.json` and report the path.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let json = serde_json::to_string_pretty(value)
        // detlint::allow(S001, digest structs always serialize; abort is the bench failure mode)
        .unwrap_or_else(|e| panic!("result {name} does not serialize: {e}"));
    dump_text(&format!("{name}.json"), &json);
}

/// Write a pre-rendered artifact (JSONL event dump, Chrome trace, …) to
/// `results/<file>` and report the path. Panics with the offending path on
/// I/O errors, so a mis-set `ITB_RESULTS_DIR` is diagnosable.
pub fn dump_text(file: &str, contents: &str) {
    let path = results_dir().join(file);
    std::fs::write(&path, contents)
        // detlint::allow(S001, the bench harness aborts if the results file cannot be written)
        .unwrap_or_else(|e| panic!("cannot write result file {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
}

/// Stream an artifact to `results/<file>` through a `BufWriter`, for
/// exporters that emit many small writes (timeline JSONL, Chrome traces,
/// health reports). The closure writes into the buffered sink; creation,
/// write and flush errors all panic with the offending path, like
/// [`dump_text`].
pub fn dump_stream(
    file: &str,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) {
    use std::io::Write;
    let path = results_dir().join(file);
    let fail = |e: std::io::Error| -> ! {
        // detlint::allow(S001, the bench harness aborts if the results file cannot be written)
        panic!("cannot write result file {}: {e}", path.display())
    };
    let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap_or_else(|e| fail(e)));
    write(&mut w).unwrap_or_else(|e| fail(e));
    w.flush().unwrap_or_else(|e| fail(e));
    println!("[wrote {}]", path.display());
}

/// Format a right-aligned row of f64 cells with the given width/precision.
pub fn row(cells: &[f64], width: usize, prec: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$.prec$}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render up to four `(label, points)` series as a quick terminal chart —
/// log-scaled x (byte sizes), linear y — so the `fig*` binaries echo the
/// paper's figures visually as well as numerically.
// Grid coordinates are normalized into [0, width) x [0, height) before the
// cast, so the f64 -> usize conversions cannot truncate.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn ascii_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    const MARKS: [char; 4] = ['o', '+', 'x', '*'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (xmin, xmax) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
    let (ymin, ymax) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| {
            (lo.min(y), hi.max(y))
        });
    let lx = |x: f64| x.max(1.0).log2();
    let (lxmin, lxmax) = (lx(xmin), lx(xmax));
    let xs = (lxmax - lxmin).max(1e-9);
    let ys = (ymax - ymin).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        for &(x, y) in pts.iter() {
            let cx = (((lx(x) - lxmin) / xs) * (width - 1) as f64).round() as usize;
            let cy = (((y - ymin) / ys) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            grid[row][cx] = MARKS[si % MARKS.len()];
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{ymax:>9.1} ┐\n"));
    for row in &grid {
        out.push_str("          │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{ymin:>9.1} ┴"));
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "           {:<10} {:>width$}\n",
        format!("{xmin:.0}B"),
        format!("{xmax:.0}B (log x)"),
        width = width.saturating_sub(10),
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("           {} {label}\n", MARKS[si % MARKS.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats() {
        assert_eq!(row(&[1.0, 2.5], 6, 1), "   1.0    2.5");
    }

    #[test]
    fn ascii_chart_places_marks() {
        let a = [(8.0, 1.0), (64.0, 2.0), (4096.0, 10.0)];
        let b = [(8.0, 1.5), (4096.0, 11.0)];
        let s = ascii_chart(&[("ud", &a), ("itb", &b)], 40, 10);
        assert!(s.contains('o'));
        assert!(s.contains('+'));
        assert!(s.contains("ud"));
        assert!(s.contains("itb"));
        assert!(s.contains("8B"));
        assert_eq!(ascii_chart(&[("x", &[])], 10, 5), "(no data)\n");
    }

    // One test covers both the happy path and the error path: the two
    // share the process-global ITB_RESULTS_DIR variable, so they must not
    // run concurrently as separate #[test]s.
    #[test]
    fn dump_json_writes_file_and_errors_name_the_path() {
        use std::io::Write;
        std::env::set_var("ITB_RESULTS_DIR", "/tmp/itb-bench-test-results");
        dump_json("unit_test", &vec![1, 2, 3]);
        dump_text("unit_test.jsonl", "{\"a\":1}\n");
        dump_stream("unit_test_stream.jsonl", |w| {
            w.write_all(b"{\"line\":1}\n")?;
            w.write_all(b"{\"line\":2}\n")
        });
        let s = std::fs::read_to_string("/tmp/itb-bench-test-results/unit_test.json").unwrap();
        assert!(s.contains('1'));
        let s = std::fs::read_to_string("/tmp/itb-bench-test-results/unit_test.jsonl").unwrap();
        assert!(s.ends_with('\n'));
        let s =
            std::fs::read_to_string("/tmp/itb-bench-test-results/unit_test_stream.jsonl").unwrap();
        assert_eq!(s.lines().count(), 2, "buffered writes must be flushed");

        // An unusable results dir (a path under a regular file) must panic
        // with a message that names the offending path.
        std::fs::write("/tmp/itb-bench-test-file", "not a dir").unwrap();
        std::env::set_var("ITB_RESULTS_DIR", "/tmp/itb-bench-test-file/sub");
        let err = std::panic::catch_unwind(|| dump_json("unit_test", &1))
            .expect_err("writing under a file must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(
            msg.contains("/tmp/itb-bench-test-file/sub"),
            "panic must name the path: {msg}"
        );
        // dump_stream hits the same error path on file creation — and must
        // also surface mid-stream write errors from the closure.
        let err = std::panic::catch_unwind(|| dump_stream("s.jsonl", |_| Ok(())))
            .expect_err("creating under a file must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("/tmp/itb-bench-test-file/sub"), "{msg}");
        std::env::set_var("ITB_RESULTS_DIR", "/tmp/itb-bench-test-results");
        let err = std::panic::catch_unwind(|| {
            dump_stream("unit_test_err.jsonl", |_| {
                Err(std::io::Error::other("closure failed"))
            })
        })
        .expect_err("closure errors must panic with the path");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("unit_test_err.jsonl"), "{msg}");
        assert!(msg.contains("closure failed"), "{msg}");
        std::env::remove_var("ITB_RESULTS_DIR");
    }
}

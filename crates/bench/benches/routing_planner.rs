//! Criterion bench: route computation speed — up*/down* BFS vs the ITB
//! planner's (links, ITBs)-lexicographic Dijkstra, and whole-table builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itb_routing::planner::{ItbHostSelection, ItbPlanner};
use itb_routing::updown::shortest_updown;
use itb_routing::{RouteTable, RoutingPolicy};
use itb_topo::builders::{random_irregular, IrregularSpec};
use itb_topo::{HostId, UpDown};
use std::hint::black_box;

fn bench_single_routes(c: &mut Criterion) {
    let topo = random_irregular(&IrregularSpec::evaluation_default(16, 1));
    let ud = UpDown::compute_default(&topo);
    let mut g = c.benchmark_group("single_route");
    g.bench_function("updown_bfs", |b| {
        b.iter(|| {
            let r = shortest_updown(&topo, &ud, HostId(0), HostId(63)).unwrap();
            black_box(r)
        })
    });
    g.bench_function("itb_planner", |b| {
        let mut p = ItbPlanner::new(ItbHostSelection::First);
        b.iter(|| {
            let r = p.route(&topo, &ud, HostId(0), HostId(63)).unwrap();
            black_box(r)
        })
    });
    g.finish();
}

fn bench_full_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_table");
    g.sample_size(10);
    for switches in [8usize, 16, 32] {
        let topo = random_irregular(&IrregularSpec::evaluation_default(switches, 1));
        let ud = UpDown::compute_default(&topo);
        for policy in [RoutingPolicy::UpDown, RoutingPolicy::Itb] {
            g.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), switches),
                &switches,
                |b, _| {
                    b.iter(|| {
                        let t = RouteTable::compute(&topo, &ud, policy).unwrap();
                        black_box(t)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_single_routes, bench_full_tables);
criterion_main!(benches);

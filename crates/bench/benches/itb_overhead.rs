//! Criterion bench: wall-clock cost of simulating the Figure-8 paths — the
//! UD loop path versus the in-transit-buffer path (harness performance; the
//! simulated 1.3 µs overhead is produced by the `fig8` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use itb_core::experiments::ping_pong;
use itb_core::{ClusterSpec, McpFlavor};
use itb_routing::figures;
use std::hint::black_box;

fn round(itb_path: bool, size: u32) -> f64 {
    let base = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    let tb = base.testbed.clone().expect("testbed");
    let forward = if itb_path {
        figures::fig8_itb_route(&tb)
    } else {
        figures::fig8_ud_route(&tb)
    };
    let spec = base
        .with_route_override(forward)
        .with_route_override(figures::fig8_return_route(&tb));
    let r = ping_pong(&spec, tb.host1, tb.host2, &[size], 3, 1);
    r.points[0].half_rtt_ns.mean()
}

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_path_sim");
    g.sample_size(20);
    g.bench_function("ud_loop_path", |b| b.iter(|| black_box(round(false, 256))));
    g.bench_function("itb_path", |b| b.iter(|| black_box(round(true, 256))));
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);

//! Criterion bench: wall-clock cost of simulating one Figure-7-style
//! ping-pong round under each MCP flavour (harness performance; the
//! simulated-time overhead itself is produced by the `fig7` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use itb_core::experiments::ping_pong;
use itb_core::{ClusterSpec, McpFlavor, RoutingPolicy};
use std::hint::black_box;

fn round(flavor: McpFlavor, size: u32) -> f64 {
    let spec = ClusterSpec::fig6_testbed()
        .with_mcp(flavor)
        .with_routing(RoutingPolicy::UpDown);
    let tb = spec.testbed.clone().expect("testbed");
    let r = ping_pong(&spec, tb.host1, tb.host2, &[size], 3, 1);
    r.points[0].half_rtt_ns.mean()
}

fn bench_mcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("mcp_pingpong_sim");
    g.sample_size(20);
    for (label, flavor) in [("original", McpFlavor::Original), ("itb", McpFlavor::Itb)] {
        g.bench_function(label, |b| b.iter(|| black_box(round(flavor, 256))));
    }
    g.finish();
}

criterion_group!(benches, bench_mcp);
criterion_main!(benches);

//! Criterion bench: simulator engine performance — events processed per
//! wall-clock second for a loaded irregular network. This is a harness
//! performance metric (how fast the reproduction runs), not a paper metric.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use itb_core::experiments::{summarize_window, LoadSweep};
use itb_core::{ClusterSpec, RoutingPolicy};
use itb_gm::AppBehavior;
use itb_sim::{run_until, EventQueue, SimDuration, SimTime};
use std::hint::black_box;

fn simulate_window(policy: RoutingPolicy) -> u64 {
    let spec = ClusterSpec::irregular(8, 1).with_routing(policy);
    let sweep = LoadSweep::default();
    let n = spec.num_hosts();
    let behaviors = vec![
        AppBehavior::Poisson {
            size: 512,
            mean_gap: SimDuration::from_us(60),
            limit: 0,
        };
        n
    ];
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    run_until(&mut cluster, &mut q, SimTime::from_ms(2));
    let pt = summarize_window(
        &cluster,
        SimTime::ZERO,
        SimTime::from_ms(2),
        sweep.window,
        0.0,
    );
    black_box(pt.delivered);
    q.events_dispatched()
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_sim");
    g.sample_size(10);
    // Report throughput in simulated events per wall second.
    let events = simulate_window(RoutingPolicy::UpDown);
    g.throughput(Throughput::Elements(events));
    g.bench_function("updown_2ms_window", |b| {
        b.iter(|| black_box(simulate_window(RoutingPolicy::UpDown)))
    });
    let events = simulate_window(RoutingPolicy::Itb);
    g.throughput(Throughput::Elements(events));
    g.bench_function("itb_2ms_window", |b| {
        b.iter(|| black_box(simulate_window(RoutingPolicy::Itb)))
    });
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);

//! In-flight packet bookkeeping.

use itb_routing::wire::Header;
use itb_sim::{narrow, SimTime};
use itb_topo::HostId;
use serde::{Deserialize, Serialize};

/// One instrumented moment in a packet's life (recorded only when
/// `NetConfig::record_timelines` is on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// What happened ("inject", "route", "head", "tail", "reinject",
    /// "nic.early_recv", "nic.recv_finish", "nic.deliver", ...).
    pub tag: &'static str,
    /// Context (switch or host index, 0 when unused).
    pub value: u32,
    /// When.
    pub t: SimTime,
}

/// Globally unique in-flight packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// What a NIC hands the network when injecting a packet.
#[derive(Debug, Clone)]
pub struct PacketDesc {
    /// Encoded header (route bytes, types, …). Rides on the wire and is
    /// consumed hop by hop.
    pub header: Header,
    /// Payload length in bytes (payload content is virtual; only the tag
    /// travels for integrity checks).
    pub payload_len: u32,
    /// Integrity tag — delivered unchanged iff the simulator moved the
    /// packet correctly.
    pub tag: u64,
    /// Originating host (for audits).
    pub src: HostId,
}

/// Central registry entry for an in-flight packet. The header is shared
/// between traversal stages: switches strip route bytes from it and the
/// in-transit NIC strips the `ITB | Length` group before re-injection.
#[derive(Debug)]
pub struct PacketState {
    /// Immutable identity & payload info.
    pub desc: PacketDesc,
    /// When the first byte entered the network.
    pub injected_at: SimTime,
    /// Route bytes consumed so far (diagnostic).
    pub route_bytes_consumed: u32,
    /// In-transit hops performed so far (diagnostic).
    pub itb_hops: u32,
    /// Fault injection: the packet's CRC was damaged in flight. Checked by
    /// the receiving NIC at completion (cut-through stages forward it
    /// unverified, as real hardware must).
    pub corrupted: bool,
    /// Instrumented life events (empty unless timelines are enabled).
    pub timeline: Vec<TimelineEntry>,
}

impl PacketState {
    /// Bytes currently remaining on the wire for a fresh traversal stage:
    /// current header + payload + CRC byte.
    pub fn wire_len(&self) -> u32 {
        narrow::<u32, _>(self.desc.header.len()) + self.desc.payload_len + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_routing::path::{Hop, SourceRoute};
    use itb_topo::SwitchId;

    #[test]
    fn wire_len_counts_header_payload_crc() {
        let r = SourceRoute::direct(
            HostId(0),
            HostId(1),
            vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
        );
        let header = Header::encode(&r); // 2 route bytes + 2 type bytes
        let st = PacketState {
            desc: PacketDesc {
                header,
                payload_len: 100,
                tag: 7,
                src: HostId(0),
            },
            injected_at: SimTime::ZERO,
            route_bytes_consumed: 0,
            itb_hops: 0,
            corrupted: false,
            timeline: Vec::new(),
        };
        assert_eq!(st.wire_len(), 4 + 100 + 1);
    }
}

//! Network-level counters.

use serde::{Deserialize, Serialize};

/// Counters maintained by [`crate::Network`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Packets injected by hosts.
    pub injected: u64,
    /// Packets re-injected by in-transit hosts.
    pub reinjected: u64,
    /// Packets fully delivered into a host.
    pub delivered: u64,
    /// Wire bytes delivered into hosts.
    pub bytes_delivered: u64,
    /// Packets garbled by a probabilistic drop fault (the packet completes
    /// its traversal but the destination's CRC check discards it).
    pub fault_drops: u64,
    /// Packets CRC-corrupted by a probabilistic corruption fault.
    pub fault_corrupts: u64,
    /// Packets lost to a scheduled link-down window.
    pub link_down_drops: u64,
    /// Packets CRC-damaged on direct request (the model checker's
    /// deterministic drop action; never incremented by seeded fault plans).
    pub forced_corrupts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = NetStats::default();
        assert_eq!(s.injected, 0);
        assert_eq!(s.reinjected, 0);
        assert_eq!(s.delivered, 0);
        assert_eq!(s.bytes_delivered, 0);
        assert_eq!(s.fault_drops, 0);
        assert_eq!(s.fault_corrupts, 0);
        assert_eq!(s.link_down_drops, 0);
        assert_eq!(s.forced_corrupts, 0);
    }
}

//! Declarative fault schedules for chaos experiments.
//!
//! A [`FaultPlan`] describes everything that can go wrong in one run:
//! seeded per-link drop/corrupt probabilities, scheduled link-down
//! windows, and in-transit host crash windows. The network applies the
//! link-level faults itself (see [`crate::Network::set_fault_plan`]); host
//! crashes are carried in the plan but executed by the integrating cluster,
//! which owns the NICs.
//!
//! All faults manifest the way real Myrinet faults do: the packet still
//! traverses the wire (wormhole switches cannot un-route a worm mid-flight)
//! but arrives with a damaged CRC, so the destination NIC discards it at
//! the tail check and GM's go-back-N recovers it. In-transit hosts forward
//! damaged packets unverified — cut-through cannot check the CRC before
//! re-injecting — exactly as the paper observes.

use itb_sim::SimTime;
use itb_topo::{HostId, LinkId};
use serde::{Deserialize, Serialize};

/// Per-link override of the plan-wide fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// The cable (both directions) the override applies to.
    pub link: LinkId,
    /// Probability a packet entering this link is dropped.
    pub drop_prob: f64,
    /// Probability a packet entering this link has its CRC damaged.
    pub corrupt_prob: f64,
}

/// A scheduled outage of one cable: every packet whose head arrives over
/// the link inside `[from, until)` is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDownWindow {
    /// The cable that goes down (both directions).
    pub link: LinkId,
    /// Outage start (inclusive).
    pub from: SimTime,
    /// Outage end (exclusive).
    pub until: SimTime,
}

/// A scheduled crash of one host's NIC: at `at` the firmware dies, flushing
/// every in-transit packet it holds; until `until` all arriving packets are
/// discarded; at `until` the NIC comes back clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCrash {
    /// The host whose NIC crashes.
    pub host: HostId,
    /// Crash instant.
    pub at: SimTime,
    /// Recovery instant.
    pub until: SimTime,
}

/// A complete seeded fault schedule for one run.
///
/// The default plan is a no-op: zero probabilities, no windows, no crashes.
/// Deterministic by construction — the same plan (same seed) produces the
/// same faults event for event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed of the fault-decision RNG (independent of the traffic seed).
    pub seed: u64,
    /// Plan-wide probability a packet entering any link is dropped.
    pub drop_prob: f64,
    /// Plan-wide probability a packet entering any link is CRC-corrupted.
    pub corrupt_prob: f64,
    /// Per-link probability overrides.
    pub link_overrides: Vec<LinkFault>,
    /// Scheduled cable outages.
    pub down_windows: Vec<LinkDownWindow>,
    /// Scheduled NIC crashes (executed by the cluster layer).
    pub crashes: Vec<HostCrash>,
}

impl FaultPlan {
    /// A clean plan with the given RNG seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the plan-wide drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.drop_prob = p;
        self
    }

    /// Set the plan-wide corruption probability.
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.corrupt_prob = p;
        self
    }

    /// Override the probabilities of one link.
    pub fn with_link_override(mut self, f: LinkFault) -> Self {
        self.link_overrides.push(f);
        self
    }

    /// Schedule a cable outage.
    pub fn with_down_window(mut self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty down window");
        self.down_windows.push(LinkDownWindow { link, from, until });
        self
    }

    /// Schedule a NIC crash.
    pub fn with_crash(mut self, host: HostId, at: SimTime, until: SimTime) -> Self {
        assert!(at < until, "empty crash window");
        self.crashes.push(HostCrash { host, at, until });
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self
                .link_overrides
                .iter()
                .all(|f| f.drop_prob == 0.0 && f.corrupt_prob == 0.0)
            && self.down_windows.is_empty()
            && self.crashes.is_empty()
    }

    /// The effective `(drop, corrupt)` probabilities for one link.
    pub fn probs_for(&self, link: LinkId) -> (f64, f64) {
        self.link_overrides
            .iter()
            .rev()
            .find(|f| f.link == link)
            .map(|f| (f.drop_prob, f.corrupt_prob))
            .unwrap_or((self.drop_prob, self.corrupt_prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_sim::SimTime;

    #[test]
    fn default_is_noop() {
        assert!(FaultPlan::default().is_noop());
        assert!(FaultPlan::seeded(42).is_noop());
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::seeded(7)
            .with_drop_prob(0.01)
            .with_corrupt_prob(0.005)
            .with_link_override(LinkFault {
                link: LinkId(2),
                drop_prob: 0.5,
                corrupt_prob: 0.0,
            })
            .with_down_window(LinkId(1), SimTime::from_us(10), SimTime::from_us(20))
            .with_crash(HostId(1), SimTime::from_us(30), SimTime::from_us(40));
        assert!(!p.is_noop());
        assert_eq!(p.probs_for(LinkId(0)), (0.01, 0.005));
        assert_eq!(p.probs_for(LinkId(2)), (0.5, 0.0));
        assert_eq!(p.down_windows.len(), 1);
        assert_eq!(p.crashes.len(), 1);
    }

    #[test]
    fn last_override_wins() {
        let p = FaultPlan::default()
            .with_link_override(LinkFault {
                link: LinkId(3),
                drop_prob: 0.1,
                corrupt_prob: 0.0,
            })
            .with_link_override(LinkFault {
                link: LinkId(3),
                drop_prob: 0.9,
                corrupt_prob: 0.2,
            });
        assert_eq!(p.probs_for(LinkId(3)), (0.9, 0.2));
    }

    #[test]
    fn plan_serializes_deterministically() {
        let p = FaultPlan::seeded(9).with_drop_prob(0.25).with_down_window(
            LinkId(0),
            SimTime::ZERO,
            SimTime::from_ns(5),
        );
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("\"seed\":9"));
        assert!(json.contains("down_windows"));
        // Equal plans must serialize byte-for-byte identically (the CI
        // determinism check compares artifacts with cmp).
        assert_eq!(json, serde_json::to_string(&p.clone()).unwrap());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_rejected() {
        let _ = FaultPlan::default().with_drop_prob(1.5);
    }
}

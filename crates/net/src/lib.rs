//! # itb-net — the Myrinet wormhole network model
//!
//! An event-driven, flit-granular model of the physical network of the
//! paper's testbed:
//!
//! * full-duplex **links** serializing bytes at 160 MB/s with cable
//!   propagation delay;
//! * **Stop&Go flow control** — each switch input port has a slack buffer
//!   with STOP/GO thresholds; STOP pauses the upstream sender after its
//!   current flit, exactly like Myrinet's control bytes;
//! * **cut-through crossbar switches** — the head flit's route byte selects
//!   (and is consumed by) the output port after a fall-through delay that
//!   depends on the port kinds involved (the paper notes switch latency
//!   depends on whether LAN or SAN ports are traversed); body flits stream
//!   through as they arrive, and a blocked worm backs up link by link;
//! * **host ports** — injection is paced at link rate from a per-host queue
//!   (the send-DMA serialization), and ejection raises indications the NIC
//!   layer consumes ([`HostIndication`]); availability can grow while a
//!   packet is still being received, which is what lets the ITB firmware
//!   re-inject a packet virtual-cut-through style.
//!
//! The network schedules its own follow-up events through the [`NetSched`]
//! trait so the integrating crate can embed [`NetEvent`] in its union event
//! type.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod fault;
pub mod flow;
pub mod network;
pub mod packet;
pub mod slab;
pub mod stats;

pub use config::{FallThrough, NetConfig};
pub use fault::{FaultPlan, HostCrash, LinkDownWindow, LinkFault};
pub use flow::{Flow, FlowCompletion, FlowNet};
pub use network::{HostIndication, NetEvent, NetHandoff, NetSched, Network};
pub use packet::{PacketDesc, PacketId};

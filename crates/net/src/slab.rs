//! Sliding-window packet registry.
//!
//! Packet ids are allocated monotonically ([`crate::Network::allocate_packet_id`])
//! and live only briefly: a packet is registered at injection and removed at
//! retire. A `HashMap<u64, _>` pays a hash and a probe on every one of the
//! several map touches per simulation event. This slab exploits the id
//! discipline instead: live ids cluster in a narrow window
//! `[base, base + slots.len())`, so a lookup is a bounds check and an index
//! into a `VecDeque` — O(1), no hashing, and iteration order is id order
//! (deterministic by construction, unlike `RandomState` maps).
//!
//! Ids are *reserved* before they are inserted (the NIC allocates the id when
//! a send is queued, but registers the packet only when the DMA is
//! programmed), and reservations resolve out of order. The window therefore
//! distinguishes `Reserved` from `Vacant`: the front of the window only
//! advances past vacated slots, never past an outstanding reservation.

use std::collections::VecDeque;

/// One window slot.
enum Slot<T> {
    /// No live entry; the window front may slide past this.
    Vacant,
    /// Id handed out but not yet inserted; pins the window front.
    Reserved,
    /// Live entry.
    Occupied(T),
}

impl<T> Slot<T> {
    fn as_ref(&self) -> Option<&T> {
        match self {
            Slot::Occupied(v) => Some(v),
            _ => None,
        }
    }

    fn as_mut(&mut self) -> Option<&mut T> {
        match self {
            Slot::Occupied(v) => Some(v),
            _ => None,
        }
    }
}

/// Sliding-window map from monotonically allocated `u64` ids to values.
pub struct IdSlab<T> {
    /// Id of `slots[0]`.
    base: u64,
    slots: VecDeque<Slot<T>>,
    /// Number of `Occupied` slots.
    live: usize,
}

impl<T> Default for IdSlab<T> {
    fn default() -> Self {
        IdSlab {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }
}

// Window offsets `(id - base) as usize` are bounded by the live window
// length (slots.len()), which always fits in memory, so the casts cannot
// truncate in practice; lookups bound-check against the deque anyway.
#[allow(clippy::cast_possible_truncation)]
impl<T> IdSlab<T> {
    /// Index of `id` within the window, growing the window if `id` is past
    /// its end. Panics if `id` predates the window (an id is only below
    /// `base` once its slot has been vacated, so this is a reuse bug).
    fn slot_index(&mut self, id: u64) -> usize {
        assert!(id >= self.base, "packet id {id} re-used after retire");
        let ix = (id - self.base) as usize;
        while self.slots.len() <= ix {
            self.slots.push_back(Slot::Vacant);
        }
        ix
    }

    /// Mark `id` as handed out: the window front will not slide past it
    /// until it is inserted and removed.
    pub fn reserve(&mut self, id: u64) {
        let ix = self.slot_index(id);
        debug_assert!(matches!(self.slots[ix], Slot::Vacant), "id reserved twice");
        self.slots[ix] = Slot::Reserved;
    }

    /// Register `value` under `id` (previously reserved or brand new).
    pub fn insert(&mut self, id: u64, value: T) {
        let ix = self.slot_index(id);
        debug_assert!(
            !matches!(self.slots[ix], Slot::Occupied(_)),
            "id {id} inserted twice"
        );
        self.slots[ix] = Slot::Occupied(value);
        self.live += 1;
    }

    /// Shared access to a live entry.
    #[inline]
    pub fn get(&self, id: u64) -> Option<&T> {
        if id < self.base {
            return None;
        }
        self.slots.get((id - self.base) as usize)?.as_ref()
    }

    /// Exclusive access to a live entry.
    #[inline]
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        if id < self.base {
            return None;
        }
        self.slots.get_mut((id - self.base) as usize)?.as_mut()
    }

    /// Remove and return the entry under `id`, sliding the window front
    /// past any leading vacated slots.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        if id < self.base {
            return None;
        }
        let ix = (id - self.base) as usize;
        let slot = self.slots.get_mut(ix)?;
        let value = match std::mem::replace(slot, Slot::Vacant) {
            Slot::Occupied(v) => {
                self.live -= 1;
                Some(v)
            }
            other => {
                *slot = other;
                None
            }
        };
        while matches!(self.slots.front(), Some(Slot::Vacant)) {
            self.slots.pop_front();
            self.base += 1;
        }
        value
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Ids of live entries, ascending.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|_| self.base + i as u64))
    }

    /// Live `(id, entry)` pairs in id order — one linear window scan, no
    /// per-id bounds check. This is the bulk-sweep primitive the flow
    /// solver leans on: at 100k live entries, `ids().collect()` followed
    /// by per-id `get` costs a second deque probe per entry this avoids.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let base = self.base;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|v| (base + i as u64, v)))
    }

    /// Mutable variant of [`iter`](IdSlab::iter), id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        let base = self.base;
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, s)| s.as_mut().map(|v| (base + i as u64, v)))
    }

    /// Visit every live entry in id order, removing those for which `f`
    /// returns `false`; the window front slides past vacated slots once
    /// at the end. The combined sweep-and-remove keeps a round-service
    /// pass over 100k entries to one linear scan instead of a collect of
    /// the id set plus a windowed `remove` per completion.
    pub fn retain_with_id<F: FnMut(u64, &mut T) -> bool>(&mut self, mut f: F) {
        let base = self.base;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Slot::Occupied(v) = slot {
                if !f(base + i as u64, v) {
                    *slot = Slot::Vacant;
                    self.live -= 1;
                }
            }
        }
        while matches!(self.slots.front(), Some(Slot::Vacant)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: IdSlab<&str> = IdSlab::default();
        s.insert(0, "a");
        s.insert(1, "b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Some(&"a"));
        *s.get_mut(1).unwrap() = "B";
        assert_eq!(s.remove(0), Some("a"));
        assert_eq!(s.get(0), None, "window slid past removed id");
        assert_eq!(s.remove(0), None);
        assert_eq!(s.get(1), Some(&"B"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn out_of_order_removal_slides_window_lazily() {
        let mut s: IdSlab<u32> = IdSlab::default();
        for id in 0..4 {
            s.insert(id, id as u32);
        }
        // Remove from the middle first: front can't slide yet.
        assert_eq!(s.remove(2), Some(2));
        assert_eq!(s.get(3), Some(&3));
        assert_eq!(s.remove(0), Some(0));
        assert_eq!(s.remove(1), Some(1));
        // Now 0..=2 are vacant, so the window front is at 3.
        assert_eq!(s.get(3), Some(&3));
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![3]);
        assert_eq!(s.remove(3), Some(3));
        assert!(s.is_empty());
    }

    #[test]
    fn reservation_pins_the_window_front() {
        let mut s: IdSlab<u32> = IdSlab::default();
        s.reserve(0); // allocated, DMA not yet programmed
        s.insert(1, 10);
        assert_eq!(s.remove(1), Some(10));
        // Id 0 is still reserved: a late insert must land correctly.
        s.insert(0, 99);
        assert_eq!(s.get(0), Some(&99));
        assert_eq!(s.remove(0), Some(99));
        assert!(s.is_empty());
    }

    #[test]
    fn ids_are_ascending_and_skip_holes() {
        let mut s: IdSlab<()> = IdSlab::default();
        for id in [5u64, 2, 9, 0] {
            s.insert(id, ());
        }
        s.remove(5);
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![0, 2, 9]);
    }

    #[test]
    fn iteration_matches_ids_and_skips_holes() {
        let mut s: IdSlab<u32> = IdSlab::default();
        for id in [5u64, 2, 9, 0] {
            s.insert(id, id as u32 * 10);
        }
        s.remove(5);
        assert_eq!(
            s.iter().map(|(id, &v)| (id, v)).collect::<Vec<_>>(),
            vec![(0, 0), (2, 20), (9, 90)]
        );
        for (_, v) in s.iter_mut() {
            *v += 1;
        }
        assert_eq!(s.get(9), Some(&91));
    }

    #[test]
    fn retain_with_id_removes_and_slides_the_window() {
        let mut s: IdSlab<u32> = IdSlab::default();
        for id in 0..6u64 {
            s.insert(id, id as u32);
        }
        // Drop the evens; window front must slide past vacated id 0.
        s.retain_with_id(|id, _| id % 2 == 1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(s.get(0), None, "vacated and slid past");
        assert_eq!(s.get(3), Some(&3));
        // Retained entries stay mutable through the sweep.
        s.retain_with_id(|_, v| {
            *v += 100;
            true
        });
        assert_eq!(s.get(5), Some(&105));
    }

    #[test]
    #[should_panic(expected = "re-used after retire")]
    fn reusing_a_retired_id_panics() {
        let mut s: IdSlab<u32> = IdSlab::default();
        s.insert(0, 1);
        s.remove(0);
        s.insert(0, 2);
    }
}

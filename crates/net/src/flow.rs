//! Flow-level network model for the hybrid flow/packet engine.
//!
//! Where the flit model (`network.rs`) spends one event per flit per hop,
//! [`FlowNet`] replaces a long-lived transfer with a single *flow*: a
//! (source host, destination host, byte count) triple routed over the
//! shortest deterministic path, served at the rate a global **max-min
//! fair** allocation grants it, and advanced in coarse sim-time rounds.
//! A 100 000-flow fabric costs one rate solve plus one array sweep per
//! round instead of hundreds of millions of flit events — the trade is
//! that transient contention (worm blocking, Stop&Go backpressure, ITB
//! ejection) is averaged away, which is exactly why the hybrid engine
//! only assigns *uncongested, ITB-free* regions to this model and
//! escalates anything else to packet fidelity.
//!
//! ## Determinism
//!
//! Everything is a pure function of the topology and the flow set:
//!
//! * routes come from per-root BFS in switch-id/port order (no RNG, no
//!   hash iteration);
//! * the max-min solver pops bottleneck channels in `(saturation level,
//!   channel index)` order under `f64::total_cmp` and freezes flows in id
//!   order within each channel, so its f64 operations execute in a fixed
//!   sequence — IEEE 754 arithmetic is deterministic when the operation
//!   order is;
//! * each solved rate crosses to integer picoseconds exactly once via
//!   [`ByteInterval::from_rate`]; rounds, completions and byte counts are
//!   integer arithmetic from there on.
//!
//! Repeated runs therefore produce byte-identical flow schedules, and the
//! engine's state digests can cover flow state directly.

use crate::slab::IdSlab;
use itb_sim::{narrow, ByteInterval, SimDuration};
use itb_topo::{HostId, Node, SwitchId, Topology};

/// Directed-channel index: link `lid` carries channel `lid*2` in its
/// `a → b` orientation and `lid*2 + 1` in `b → a` — the same convention
/// the flit model uses for its per-direction channel array.
type Chan = u32;

const NO_PRED: u16 = u16::MAX;

/// One in-flight flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Bytes still to deliver.
    pub remaining: u64,
    /// Quantised service interval from the last solve.
    pub interval: ByteInterval,
    /// Directed channels the flow crosses, in path order.
    route: Vec<Chan>,
    /// Solver scratch: true once the flow's rate froze this solve.
    frozen: bool,
}

impl Flow {
    /// The directed channels the flow crosses, in path order (source
    /// host uplink first, destination host downlink last).
    pub fn route(&self) -> &[Chan] {
        &self.route
    }
}

/// A completion produced by [`FlowNet::advance`]: flow `id` finished
/// `offset` after the start of the advanced round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCompletion {
    /// The flow's id (the caller's message id).
    pub id: u64,
    /// Completion instant as an offset from the round start. Always at
    /// most the advanced window.
    pub offset: SimDuration,
}

/// The flow-level fabric: deterministic shortest routes, max-min fair
/// rate allocation, coarse-round service.
pub struct FlowNet {
    switches: usize,
    /// Flat `switches × switches` BFS predecessor matrix: `pred[root *
    /// switches + v]` is the switch preceding `v` on the root→v path.
    pred: Vec<u16>,
    /// Directed channel taken on the last hop of root→v, parallel to
    /// `pred`.
    hop_chan: Vec<Chan>,
    /// Per-host attachment: switch index and the host-link uplink /
    /// downlink channels.
    host_switch: Vec<u16>,
    host_up: Vec<Chan>,
    host_down: Vec<Chan>,
    /// Per-channel capacity in bytes/ns (uniform per link direction,
    /// from the configured link bandwidth).
    cap: Vec<f64>,
    flows: IdSlab<Flow>,
    /// Live flows per directed channel, maintained on open/close/complete.
    /// This — not utilisation — is the escalation signal: a work-conserving
    /// max-min solve drives every busy flow's bottleneck to 100% by
    /// construction, so "links near capacity" carries no information, but
    /// many worms sharing one channel is exactly the regime where the
    /// fluid model averages away HOL blocking and Stop&Go backpressure.
    occupancy: Vec<u32>,
    /// Rates allocated by the last solve, in bytes/ns per channel
    /// (reporting + diagnostics).
    alloc: Vec<f64>,
    /// Solver scratch: unfrozen flows per channel during a solve.
    load: Vec<u32>,
    /// Solver scratch, reused across solves so the steady-state hot path
    /// allocates nothing: live flow ids, CSR offsets/cursor/items for the
    /// channel→flow adjacency, and the bottleneck heap's backing store.
    scratch_ids: Vec<u64>,
    scratch_off: Vec<u32>,
    scratch_cursor: Vec<u32>,
    scratch_items: Vec<u32>,
    scratch_heap: std::collections::BinaryHeap<ChanSat>,
    total_delivered: u64,
    solves: u64,
}

impl FlowNet {
    /// Build the flow fabric for `topo`, with every channel serving
    /// `link_bytes_per_ns` (0.16 for the 160 MB/s Myrinet link).
    ///
    /// Runs one BFS per switch to fill the predecessor matrix — O(V·E),
    /// a few milliseconds at 1024 switches — so route lookup afterwards
    /// is a pure parent walk with no allocation beyond the route buffer.
    pub fn new(topo: &Topology, link_bytes_per_ns: f64) -> Self {
        let n = topo.num_switches();
        assert!(n > 0, "flow fabric needs at least one switch");
        let channels = topo.num_links() * 2;

        let mut pred = vec![NO_PRED; n * n];
        let mut hop_chan = vec![0 as Chan; n * n];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n {
            let base = root * n;
            queue.clear();
            queue.push_back(root);
            pred[base + root] = narrow::<u16, _>(root);
            while let Some(u) = queue.pop_front() {
                for (_, lid, v) in topo.switch_neighbors(SwitchId(narrow(u))) {
                    let vi = v.idx();
                    if vi != u && pred[base + vi] == NO_PRED {
                        pred[base + vi] = narrow::<u16, _>(u);
                        hop_chan[base + vi] =
                            directed_chan(topo, lid, Node::Switch(SwitchId(narrow(u))));
                        queue.push_back(vi);
                    }
                }
            }
        }

        let mut host_switch = Vec::with_capacity(topo.num_hosts());
        let mut host_up = Vec::with_capacity(topo.num_hosts());
        let mut host_down = Vec::with_capacity(topo.num_hosts());
        for h in topo.host_ids() {
            let (s, _) = topo.host_attachment(h);
            let lid = topo.host_link(h);
            host_switch.push(narrow::<u16, _>(s.idx()));
            host_up.push(directed_chan(topo, lid, Node::Host(h)));
            host_down.push(directed_chan(topo, lid, Node::Switch(s)));
        }

        FlowNet {
            switches: n,
            pred,
            hop_chan,
            host_switch,
            host_up,
            host_down,
            cap: vec![link_bytes_per_ns; channels],
            flows: IdSlab::default(),
            occupancy: vec![0; channels],
            alloc: vec![0.0; channels],
            load: vec![0; channels],
            scratch_ids: Vec::new(),
            scratch_off: Vec::new(),
            scratch_cursor: Vec::new(),
            scratch_items: Vec::new(),
            scratch_heap: std::collections::BinaryHeap::new(),
            total_delivered: 0,
            solves: 0,
        }
    }

    /// Open flow `id` (the caller's message id; ids must be roughly
    /// increasing, per the [`IdSlab`] sliding-window contract) carrying
    /// `bytes` from `src` to `dst`. The route is fixed at open time.
    ///
    /// The new flow serves at a stalled rate until the next [`solve`] —
    /// callers re-solve at the round boundary after admitting arrivals.
    ///
    /// [`solve`]: FlowNet::solve
    pub fn open(&mut self, id: u64, src: HostId, dst: HostId, bytes: u64) {
        let route = self.route_of(src, dst);
        for &c in &route {
            self.occupancy[c as usize] += 1;
        }
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                remaining: bytes,
                interval: ByteInterval::from_rate(0.0),
                route,
                frozen: false,
            },
        );
    }

    /// Close flow `id` early (escalation hand-back), returning it so the
    /// caller can re-inject the remaining bytes through the packet path.
    pub fn close(&mut self, id: u64) -> Option<Flow> {
        let flow = self.flows.remove(id)?;
        for &c in &flow.route {
            self.occupancy[c as usize] -= 1;
        }
        Some(flow)
    }

    /// The switch path a `src → dst` flow takes, as directed channels:
    /// source uplink, inter-switch hops (BFS shortest path), destination
    /// downlink. Intra-switch flows cross just the two host links.
    fn route_of(&self, src: HostId, dst: HostId) -> Vec<Chan> {
        let s0 = usize::from(self.host_switch[src.idx()]);
        let s1 = usize::from(self.host_switch[dst.idx()]);
        let mut rev = Vec::new();
        rev.push(self.host_down[dst.idx()]);
        let base = s0 * self.switches;
        let mut v = s1;
        while v != s0 {
            let p = self.pred[base + v];
            assert!(p != NO_PRED, "validated topologies are connected");
            rev.push(self.hop_chan[base + v]);
            v = usize::from(p);
        }
        rev.push(self.host_up[src.idx()]);
        rev.reverse();
        rev
    }

    /// The switches flow `id`'s path crosses (attachment switches
    /// included), for region-fidelity checks. Deterministic path order.
    pub fn switches_of(&self, src: HostId, dst: HostId) -> Vec<SwitchId> {
        let s0 = usize::from(self.host_switch[src.idx()]);
        let s1 = usize::from(self.host_switch[dst.idx()]);
        let base = s0 * self.switches;
        let mut rev = vec![SwitchId(narrow(s1))];
        let mut v = s1;
        while v != s0 {
            v = usize::from(self.pred[base + v]);
            rev.push(SwitchId(narrow(v)));
        }
        rev.reverse();
        rev
    }

    /// Max-min fair allocation over the current flow set, computed
    /// bottleneck-first. Conceptually it is progressive water filling —
    /// every unfrozen flow's rate rises in lockstep until a channel
    /// saturates, the flows crossing it freeze at that level, and the
    /// filling continues on the rest — but the implementation exploits
    /// the lockstep invariant: all unfrozen flows always share one rate
    /// level λ, and a channel's *saturation level*
    /// `s_c = (cap_c − Σ frozen rates on c) / unfrozen_load_c`
    /// does not move while λ rises; only a freeze (which changes the
    /// channel's load and frozen sum) perturbs it. A lazy min-heap keyed
    /// by `(s_c, c)` therefore finds every bottleneck without touching
    /// the active flow set, and each flow is visited exactly once — when
    /// it freezes. Total cost is `O(Σ route length · log channels)` per
    /// solve instead of the naive `O(bottleneck levels × active flows)`,
    /// which is the difference between milliseconds and minutes at the
    /// 100k-flow gauntlet scale.
    ///
    /// Determinism: heap order is `f64::total_cmp` on the saturation
    /// level with ties to the lowest channel index, per-channel flow
    /// lists are in flow-id order, and a popped snapshot whose channel
    /// has since risen is re-pushed at the recomputed level rather than
    /// acted on — every f64 operation executes in a fixed sequence. Each
    /// flow's solved rate is quantised through [`ByteInterval::from_rate`]
    /// — the engine's single float→time crossing — before any completion
    /// arithmetic happens.
    ///
    /// The heap is deliberately *lazy on update*: freezing a flow changes
    /// the saturation level of every channel on its route, but pushing a
    /// fresh snapshot per touched channel (as a textbook decrease-key
    /// substitute would) costs a heap push per flow×hop — the dominant
    /// wall-clock term at 100k flows. Instead a channel's level is
    /// recomputed from `(cap − alloc) / load` only when its entry
    /// surfaces at the heap top; stale surfacings re-push once at the
    /// current level. Levels are non-decreasing across freezes, so every
    /// loaded channel always has at least one heap entry at or below its
    /// true level, which is exactly the invariant the pop order needs.
    pub fn solve(&mut self) {
        self.solves += 1;
        for a in self.alloc.iter_mut() {
            *a = 0.0;
        }
        for l in self.load.iter_mut() {
            *l = 0;
        }
        // Unfrozen load per channel + total route touches, one linear
        // window sweep.
        let FlowNet {
            flows,
            load,
            scratch_ids,
            ..
        } = self;
        scratch_ids.clear();
        let mut touches = 0usize;
        for (id, f) in flows.iter_mut() {
            f.frozen = false;
            touches += f.route.len();
            for &c in &f.route {
                load[c as usize] += 1;
            }
            scratch_ids.push(id);
        }
        if self.scratch_ids.is_empty() {
            return;
        }
        // Channel → flow-index adjacency in CSR layout, flow-id order
        // within each channel. Rebuilt per solve into persistent scratch;
        // each flow freezes exactly once, so the freeze sweep below is
        // O(touches) total.
        let nch = self.cap.len();
        self.scratch_off.clear();
        self.scratch_off.push(0);
        for c in 0..nch {
            let prev = self.scratch_off[c];
            self.scratch_off.push(prev + self.load[c]);
        }
        self.scratch_cursor.clear();
        self.scratch_cursor
            .extend_from_slice(&self.scratch_off[..nch]);
        self.scratch_items.clear();
        self.scratch_items.resize(touches, 0);
        {
            let FlowNet {
                flows,
                scratch_cursor,
                scratch_items,
                ..
            } = self;
            for (fi, (_, f)) in flows.iter().enumerate() {
                for &c in &f.route {
                    scratch_items[scratch_cursor[c as usize] as usize] = narrow(fi);
                    scratch_cursor[c as usize] += 1;
                }
            }
        }
        let heap = &mut self.scratch_heap;
        heap.clear();
        for c in 0..nch {
            if self.load[c] > 0 {
                let s = self.cap[c] / f64::from(self.load[c]);
                heap.push(ChanSat { s, c: narrow(c) });
            }
        }
        let mut lambda = 0.0f64;
        let mut active = self.scratch_ids.len();
        while active > 0 {
            let Some(top) = heap.pop() else { break };
            let c = top.c as usize;
            if self.load[c] == 0 {
                continue; // drained by freezes on other bottlenecks
            }
            let s_now = (self.cap[c] - self.alloc[c]).max(0.0) / f64::from(self.load[c]);
            if s_now.total_cmp(&top.s).is_gt() {
                // Stale snapshot: the channel rose since this entry was
                // pushed. Re-queue it at the current level and move on.
                heap.push(ChanSat { s: s_now, c: top.c });
                continue;
            }
            // Saturation levels are non-decreasing along the pop order in
            // exact arithmetic; the max guards against f64 rounding dips.
            lambda = lambda.max(s_now);
            for i in self.scratch_off[c]..self.scratch_off[c + 1] {
                let fi = self.scratch_items[i as usize] as usize;
                // detlint::allow(S001, ids were swept from the slab above)
                let f = self.flows.get_mut(self.scratch_ids[fi]).expect("live flow");
                if f.frozen {
                    continue;
                }
                f.frozen = true;
                f.interval = ByteInterval::from_rate(lambda);
                active -= 1;
                for &c2 in &f.route {
                    let c2 = c2 as usize;
                    self.alloc[c2] += lambda;
                    self.load[c2] -= 1;
                }
            }
        }
    }

    /// Serve every flow for one `window`-long round. Byte progress is the
    /// integer `interval.bytes_in(window)` (sub-byte residue truncates —
    /// the documented coarseness of the flow model); flows that drain
    /// complete at the exact integer offset `interval.time_for(needed)`.
    /// Completions return in flow-id order and are removed from the set.
    pub fn advance(&mut self, window: SimDuration) -> Vec<FlowCompletion> {
        let mut done = Vec::new();
        let FlowNet {
            flows,
            occupancy,
            total_delivered,
            ..
        } = self;
        flows.retain_with_id(|id, f| {
            let served = f.interval.bytes_in(window);
            if served >= f.remaining {
                let offset = f.interval.time_for(f.remaining);
                *total_delivered += f.remaining;
                done.push(FlowCompletion { id, offset });
                for &c in &f.route {
                    occupancy[c as usize] -= 1;
                }
                false
            } else {
                *total_delivered += served;
                f.remaining -= served;
                true
            }
        });
        done
    }

    /// Live flow count.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are in flight.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Live flow ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.flows.ids()
    }

    /// Look up a live flow.
    pub fn get(&self, id: u64) -> Option<&Flow> {
        self.flows.get(id)
    }

    /// Total bytes delivered across all completed service.
    pub fn bytes_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Number of solver runs so far.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Post-solve allocation per directed channel (bytes/ns).
    pub fn channel_allocation(&self) -> &[f64] {
        &self.alloc
    }

    /// Deepest sharing (live flows on one directed channel) over the
    /// given link set — the hybrid engine's escalation signal. Unlike
    /// utilisation (always 1.0 at some bottleneck whenever any flow is
    /// busy, by max-min construction) this measures how far the fluid
    /// approximation is being stretched: one or two worms per channel is
    /// the regime the model is honest in; deep sharing means wormhole
    /// HOL blocking the fluid model cannot see.
    pub fn peak_contention(&self, links: impl Iterator<Item = u32>) -> u32 {
        let mut peak = 0;
        for lid in links {
            for c in [lid as usize * 2, lid as usize * 2 + 1] {
                peak = peak.max(self.occupancy[c]);
            }
        }
        peak
    }

    /// Capacity per directed channel (bytes/ns).
    pub fn channel_capacity(&self) -> &[f64] {
        &self.cap
    }

    /// Highest post-solve utilisation (allocation/capacity) over the
    /// directed channels of the given link set, 0.0 when unloaded.
    pub fn peak_utilization(&self, links: impl Iterator<Item = u32>) -> f64 {
        let mut peak = 0.0f64;
        for lid in links {
            for c in [lid as usize * 2, lid as usize * 2 + 1] {
                let u = self.alloc[c] / self.cap[c];
                if u > peak {
                    peak = u;
                }
            }
        }
        peak
    }
}

/// Solver heap entry: channel `c` saturates when the lockstep rate level
/// reaches `s`. The ordering is deliberately reversed — `BinaryHeap` is a
/// max-heap and the solver pops the *lowest* saturation level first, with
/// ties resolving to the lowest channel index. `f64::total_cmp` keeps the
/// order total and deterministic.
#[derive(Debug, Clone, Copy)]
struct ChanSat {
    s: f64,
    c: u32,
}

impl PartialEq for ChanSat {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}
impl Eq for ChanSat {}
impl PartialOrd for ChanSat {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ChanSat {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.s.total_cmp(&self.s).then(other.c.cmp(&self.c))
    }
}

/// The directed channel of `lid` whose traffic departs `from`.
fn directed_chan(topo: &Topology, lid: itb_topo::LinkId, from: Node) -> Chan {
    let link = topo.link(lid);
    let idx = narrow::<u32, _>(lid.idx());
    if link.a.node == from {
        idx * 2
    } else {
        debug_assert!(link.b.node == from, "link does not touch node");
        idx * 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_topo::builders;

    const LINK: f64 = 0.16; // 160 MB/s in bytes/ns

    fn chain_net() -> (itb_topo::Topology, FlowNet) {
        let topo = builders::chain(4, 2);
        let net = FlowNet::new(&topo, LINK);
        (topo, net)
    }

    #[test]
    fn routes_are_shortest_and_deterministic() {
        let (topo, net) = chain_net();
        let hosts: Vec<HostId> = topo.host_ids().collect();
        let a = hosts[0]; // switch 0
        let b = *hosts.last().unwrap(); // switch 3
                                        // 2 host links + 3 inter-switch hops.
        let r1 = net.route_of(a, b);
        assert_eq!(r1.len(), 5);
        assert_eq!(net.route_of(a, b), r1);
        let sw = net.switches_of(a, b);
        assert_eq!(sw, vec![SwitchId(0), SwitchId(1), SwitchId(2), SwitchId(3)]);
        // Same-switch flows cross only the two host links.
        assert_eq!(net.route_of(hosts[0], hosts[1]).len(), 2);
    }

    #[test]
    fn single_flow_gets_the_full_link() {
        let (topo, mut net) = chain_net();
        let hosts: Vec<HostId> = topo.host_ids().collect();
        net.open(1, hosts[0], hosts[6], 1600);
        net.solve();
        let f = net.get(1).unwrap();
        // Full link rate, exactly: 0.16 bytes/ns = 6250 ps/byte.
        assert_eq!(f.interval.ps_per_byte(), 6_250);
        // 1600 bytes at 6250 ps/byte = 10 us exactly.
        let done = net.advance(SimDuration::from_us(20));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert_eq!(done[0].offset, SimDuration::from_us(10));
        assert!(net.is_empty());
        assert_eq!(net.bytes_delivered(), 1600);
    }

    #[test]
    fn shared_bottleneck_splits_fairly() {
        let (topo, mut net) = chain_net();
        let hosts: Vec<HostId> = topo.host_ids().collect();
        // Two flows from different sources into the SAME destination
        // host: its downlink is the bottleneck, each side gets half.
        net.open(1, hosts[0], hosts[6], 8_000);
        net.open(2, hosts[2], hosts[6], 8_000);
        net.solve();
        let i1 = net.get(1).unwrap().interval;
        let i2 = net.get(2).unwrap().interval;
        assert_eq!(i1, i2, "equal demand, equal share");
        assert_eq!(i1.ps_per_byte(), 12_500, "half of 6250 ps/byte rate");
    }

    #[test]
    fn max_min_gives_unbottlenecked_flows_the_rest() {
        let (topo, mut net) = chain_net();
        let hosts: Vec<HostId> = topo.host_ids().collect();
        // Flows 1+2 share a destination downlink (½ link each); flow 3
        // runs the chain the *other way* — reverse-direction channels are
        // disjoint from forward ones, so it must get the full link rate —
        // the defining property separating max-min from proportional.
        net.open(1, hosts[0], hosts[6], 8_000);
        net.open(2, hosts[2], hosts[6], 8_000);
        net.open(3, hosts[4], hosts[1], 8_000);
        net.solve();
        assert_eq!(net.get(1).unwrap().interval.ps_per_byte(), 12_500);
        assert_eq!(net.get(2).unwrap().interval.ps_per_byte(), 12_500);
        assert_eq!(net.get(3).unwrap().interval.ps_per_byte(), 6_250);
        // Utilisation on the shared destination link is 1.0.
        let dst_link = topo.host_link(hosts[6]);
        let peak = net.peak_utilization(std::iter::once(narrow(dst_link.idx())));
        assert!((peak - 1.0).abs() < 1e-9, "{peak}");
    }

    #[test]
    fn advance_rounds_serve_and_complete_in_id_order() {
        let (topo, mut net) = chain_net();
        let hosts: Vec<HostId> = topo.host_ids().collect();
        net.open(1, hosts[0], hosts[6], 800);
        net.open(2, hosts[2], hosts[6], 400);
        net.solve();
        // ½ link rate each (12.5 ns/byte): in a 6 us round flow 2 (400 B,
        // 5 us) completes, flow 1 (800 B, 10 us) survives with 480 served.
        let done = net.advance(SimDuration::from_us(6));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 2);
        assert_eq!(done[0].offset, SimDuration::from_us(5));
        assert_eq!(net.get(1).unwrap().remaining, 800 - 480);
        // Freed capacity only helps after a re-solve (round boundary).
        net.solve();
        assert_eq!(net.get(1).unwrap().interval.ps_per_byte(), 6_250);
    }

    #[test]
    fn escalation_close_returns_remaining_bytes() {
        let (topo, mut net) = chain_net();
        let hosts: Vec<HostId> = topo.host_ids().collect();
        net.open(7, hosts[0], hosts[6], 2_000);
        net.solve();
        net.advance(SimDuration::from_us(5)); // 800 bytes at full rate
        let f = net.close(7).expect("flow is live");
        assert_eq!(f.remaining, 1_200);
        assert!(net.is_empty());
    }

    #[test]
    fn contention_tracks_live_flows_per_channel() {
        let (topo, mut net) = chain_net();
        let hosts: Vec<HostId> = topo.host_ids().collect();
        let dst_link = narrow::<u32, _>(topo.host_link(hosts[6]).idx());
        assert_eq!(net.peak_contention(std::iter::once(dst_link)), 0);
        // Three flows converge on one destination downlink.
        net.open(1, hosts[0], hosts[6], 800);
        net.open(2, hosts[2], hosts[6], 400);
        net.open(3, hosts[4], hosts[6], 400);
        assert_eq!(net.peak_contention(std::iter::once(dst_link)), 3);
        net.solve();
        // Completions release their channels; an early close does too.
        let done = net.advance(SimDuration::from_ms(1));
        assert_eq!(done.len(), 3);
        assert_eq!(net.peak_contention(std::iter::once(dst_link)), 0);
        net.open(4, hosts[0], hosts[6], 800);
        net.close(4).expect("flow is live");
        assert_eq!(net.peak_contention(std::iter::once(dst_link)), 0);
    }

    #[test]
    fn solver_is_deterministic_across_runs() {
        let run = || {
            let topo = builders::irregular_big(12, 7);
            let mut net = FlowNet::new(&topo, LINK);
            let hosts: Vec<HostId> = topo.host_ids().collect();
            for i in 0..40u64 {
                let s = hosts[(i as usize * 7) % hosts.len()];
                let d = hosts[(i as usize * 13 + 5) % hosts.len()];
                if s != d {
                    net.open(i, s, d, 4_096);
                }
            }
            net.solve();
            net.ids()
                .map(|id| net.get(id).unwrap().interval.ps_per_byte())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}

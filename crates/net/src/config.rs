//! Network timing configuration.

use itb_sim::{Bandwidth, SimDuration};
use itb_topo::PortKind;
use serde::{Deserialize, Serialize};

/// Output-port arbitration among input ports waiting for the same output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Arbitration {
    /// First-come first-served (request order).
    #[default]
    Fifo,
    /// Rotating priority: after a grant to input port *p*, the next grant
    /// prefers the waiting input with the smallest port index cyclically
    /// after *p* — the classic round-robin crossbar arbiter.
    RoundRobin,
}

/// Switch fall-through latencies by port kind. The paper (§5) notes that
/// "the latency through a switch depends on the type of traversed ports",
/// which is why both Figure 8 paths were built over the same kind multiset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FallThrough {
    /// Head routing delay when both input and output are SAN ports.
    pub san_san: SimDuration,
    /// Extra delay contributed by each LAN-side port involved.
    pub lan_penalty: SimDuration,
}

impl FallThrough {
    /// Delay for a head crossing from a port of kind `input` to one of kind
    /// `output`.
    pub fn delay(&self, input: PortKind, output: PortKind) -> SimDuration {
        let mut d = self.san_san;
        if input == PortKind::Lan {
            d += self.lan_penalty;
        }
        if output == PortKind::Lan {
            d += self.lan_penalty;
        }
        d
    }
}

/// All physical-layer constants of the network model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetConfig {
    /// Link serialization rate (Myrinet: 160 MB/s each direction).
    pub link_bw: Bandwidth,
    /// Streaming granularity in bytes. Smaller is more precise and slower to
    /// simulate; 4 matches the LANai's early-receive threshold exactly.
    pub flit_bytes: u32,
    /// One-way latency of a STOP/GO control byte back to the sender.
    pub ctrl_latency: SimDuration,
    /// Slack-buffer occupancy (bytes) at which an input port sends STOP.
    pub stop_threshold: u32,
    /// Occupancy at which a stopped input port sends GO.
    pub go_threshold: u32,
    /// Hard slack capacity; exceeding it is a model/configuration bug
    /// (checked with a debug assertion, as real hardware would drop bytes).
    pub slack_capacity: u32,
    /// Switch head fall-through latencies.
    pub fall_through: FallThrough,
    /// Fault injection: corrupt the CRC of every Nth injected packet
    /// (`None` = clean fabric). Deterministic, so failure tests reproduce.
    pub corrupt_every: Option<u64>,
    /// Output-port arbitration discipline.
    pub arbitration: Arbitration,
    /// Record per-packet timelines (inject / route / head / tail moments)
    /// for latency-breakdown experiments. Off by default: it allocates.
    pub record_timelines: bool,
}

impl Default for NetConfig {
    /// Values calibrated for the paper's testbed hardware (see DESIGN.md §5).
    fn default() -> Self {
        NetConfig {
            link_bw: Bandwidth::from_mbytes_per_sec(160),
            flit_bytes: 4,
            ctrl_latency: SimDuration::from_ns(20),
            stop_threshold: 56,
            go_threshold: 40,
            slack_capacity: 512,
            fall_through: FallThrough {
                san_san: SimDuration::from_ns(100),
                lan_penalty: SimDuration::from_ns(150),
            },
            corrupt_every: None,
            arbitration: Arbitration::Fifo,
            record_timelines: false,
        }
    }
}

impl NetConfig {
    /// Config tuned for big loaded-network sweeps: coarser flits trade
    /// timing granularity for event count.
    pub fn coarse() -> Self {
        NetConfig {
            flit_bytes: 16,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fall_through_kind_dependence() {
        let ft = NetConfig::default().fall_through;
        let ss = ft.delay(PortKind::San, PortKind::San);
        let sl = ft.delay(PortKind::San, PortKind::Lan);
        let ls = ft.delay(PortKind::Lan, PortKind::San);
        let ll = ft.delay(PortKind::Lan, PortKind::Lan);
        assert_eq!(ss, SimDuration::from_ns(100));
        assert_eq!(sl, ls);
        assert_eq!(sl, SimDuration::from_ns(250));
        assert_eq!(ll, SimDuration::from_ns(400));
    }

    #[test]
    fn default_is_sane() {
        let c = NetConfig::default();
        assert!(c.go_threshold < c.stop_threshold);
        assert!(c.stop_threshold < c.slack_capacity);
        assert_eq!(c.link_bw.ps_per_byte(), 6250);
        assert!(c.flit_bytes >= 4, "early-receive needs 4 bytes in one flit");
    }

    #[test]
    fn coarse_only_changes_flits() {
        let c = NetConfig::coarse();
        let d = NetConfig::default();
        assert_eq!(c.flit_bytes, 16);
        assert_eq!(c.link_bw, d.link_bw);
    }
}

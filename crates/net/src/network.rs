//! The wormhole network state machine.
//!
//! All mutable network state lives in [`Network`]; time passes through
//! [`NetEvent`]s scheduled via the [`NetSched`] trait. See the crate docs
//! for the modelling rules.

use crate::config::{Arbitration, NetConfig};
use crate::fault::FaultPlan;
use crate::packet::{PacketDesc, PacketId, PacketState, TimelineEntry};
use crate::slab::IdSlab;
use crate::stats::NetStats;
use itb_obs::{LinkLoad, PacketTracer, Stage};
use itb_sim::stats::Accum;
use itb_sim::{narrow, FxHashMap, SimDuration, SimRng, SimTime};
use itb_topo::{HostId, Node, Partition, PortIx, SwitchId, Topology};
use std::collections::VecDeque;

/// Scheduling hook: the embedding world turns these into entries of its own
/// event queue.
pub trait NetSched {
    /// Schedule `ev` to be handed back to [`Network::handle`] at time `t`.
    fn at(&mut self, t: SimTime, ev: NetEvent);
}

impl NetSched for itb_sim::EventQueue<NetEvent> {
    fn at(&mut self, t: SimTime, ev: NetEvent) {
        self.schedule(t, ev);
    }
}

/// Network-internal events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A channel finished serializing one flit.
    TxDone {
        /// Channel index.
        ch: u32,
    },
    /// A flit lands at the far end of a channel.
    RxFlit {
        /// Channel index.
        ch: u32,
        /// Packet the flit belongs to.
        packet: PacketId,
        /// Bytes in this flit.
        bytes: u32,
        /// First flit of the packet at this traversal stage.
        head: bool,
        /// Last flit of the packet at this traversal stage.
        tail: bool,
    },
    /// A switch input port finished its head fall-through and routes its
    /// front packet.
    RouteReady {
        /// Switch.
        sw: SwitchId,
        /// Input port on that switch.
        port: PortIx,
    },
    /// A STOP (`stop = true`) or GO control byte reaches a channel's sender.
    Ctrl {
        /// Channel whose sender is being paused/resumed.
        ch: u32,
        /// STOP when true, GO when false.
        stop: bool,
    },
}

impl NetEvent {
    /// Fold this event (variant tag + payload) into a model-checker digest.
    pub fn digest_into(&self, d: &mut itb_sim::Digest) {
        match *self {
            NetEvent::TxDone { ch } => {
                d.u8(0);
                d.u32(ch);
            }
            NetEvent::RxFlit {
                ch,
                packet,
                bytes,
                head,
                tail,
            } => {
                d.u8(1);
                d.u32(ch);
                d.u64(packet.0);
                d.u32(bytes);
                d.bool(head);
                d.bool(tail);
            }
            NetEvent::RouteReady { sw, port } => {
                d.u8(2);
                d.u16(sw.0);
                d.u8(port.0);
            }
            NetEvent::Ctrl { ch, stop } => {
                d.u8(3);
                d.u32(ch);
                d.bool(stop);
            }
        }
    }
}

/// What the network tells the NIC layer. Drained with
/// [`Network::take_indications`] after each handled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostIndication {
    /// First flit (≥ 4 bytes) of a packet reached the host — the trigger
    /// condition of the modified MCP's *Early Recv Packet* event.
    HeadArrived {
        /// Receiving host.
        host: HostId,
        /// The packet.
        packet: PacketId,
    },
    /// More bytes arrived; `received` is the running total at this host.
    BytesArrived {
        /// Receiving host.
        host: HostId,
        /// The packet.
        packet: PacketId,
        /// Total bytes received so far at this traversal stage.
        received: u32,
    },
    /// The tail arrived; the packet is fully in NIC memory.
    PacketComplete {
        /// Receiving host.
        host: HostId,
        /// The packet.
        packet: PacketId,
        /// Total wire bytes received.
        received: u32,
    },
    /// The host's send serializer (send DMA) finished injecting a packet.
    InjectionComplete {
        /// Sending host.
        host: HostId,
        /// The packet.
        packet: PacketId,
    },
}

/// Who feeds a directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChanSource {
    SwitchOut { sw: SwitchId, port: PortIx },
    HostTx(HostId),
}

/// Who consumes a directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChanSink {
    SwitchIn { sw: SwitchId, port: PortIx },
    HostRx(HostId),
}

/// One directed channel (half of a full-duplex cable).
#[derive(Debug)]
struct Channel {
    source: ChanSource,
    sink: ChanSink,
    prop: SimDuration,
    tx_busy: bool,
    paused: bool,
    /// Last flit of the current packet is in the serializer.
    finishing: bool,
    /// For `SwitchOut` sources: the granted input port.
    grant: Option<PortIx>,
    /// Most recently granted input port (round-robin arbitration state).
    last_granted: Option<PortIx>,
    /// Input ports queued for this output.
    waiting: VecDeque<PortIx>,
    /// Stats.
    bytes_sent: u64,
    paused_since: Option<SimTime>,
    paused_total: SimDuration,
}

/// A packet queued at a host's send serializer.
#[derive(Debug)]
struct HostTxPkt {
    id: PacketId,
    total: u32,
    avail: u32,
    sent: u32,
}

/// A packet currently streaming into a host.
#[derive(Debug)]
struct HostRxPkt {
    id: PacketId,
    received: u32,
}

#[derive(Debug)]
struct HostPort {
    tx_chan: u32,
    /// Channel delivering into this host (paused by NIC backpressure).
    rx_chan: u32,
    tx_queue: VecDeque<HostTxPkt>,
    rx_current: Option<HostRxPkt>,
}

/// A packet inside a switch input port's slack buffer.
#[derive(Debug)]
struct InPkt {
    id: PacketId,
    routed: bool,
    granted: bool,
    out_port: Option<PortIx>,
    received: u32,
    forwarded: u32,
    tail_seen: bool,
}

#[derive(Debug)]
struct InputPort {
    /// Channel feeding this port (where STOP/GO is sent).
    in_chan: u32,
    occupancy: u32,
    stopped: bool,
    route_pending: bool,
    queue: VecDeque<InPkt>,
}

/// Compiled link-fault state (built from a [`FaultPlan`]).
struct FaultState {
    rng: SimRng,
    /// `(drop, corrupt)` probabilities, indexed by link.
    probs: Vec<(f64, f64)>,
    /// Outage windows `(from, until)`, indexed by link.
    down: Vec<Vec<(SimTime, SimTime)>>,
}

/// A cross-shard network effect captured during a parallel window: an event
/// that must fire on another shard, optionally carrying the packet's
/// registry state (shipped with the head flit the first time a worm crosses
/// a cut cable). Opaque outside this crate: the parallel cluster driver
/// moves these between shards and hands them back through
/// [`Network::adopt_handoff`].
#[derive(Debug)]
pub struct NetHandoff {
    fire_at: SimTime,
    /// Clock of the event that produced this effect (the sequential
    /// schedule rank).
    rank_time: SimTime,
    /// Source-shard capture sequence (FIFO among one shard's handoffs).
    seq: u64,
    ev: NetEvent,
    /// Registry state travelling with a head flit over a cut cable.
    state: Option<Box<PacketState>>,
}

impl NetHandoff {
    /// Absolute time the event fires on the destination shard.
    pub fn fire_at(&self) -> SimTime {
        self.fire_at
    }

    /// Schedule rank: the clock of the producing event on the source shard.
    pub fn rank_time(&self) -> SimTime {
        self.rank_time
    }

    /// Source-shard capture sequence.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Sharded-execution context (parallel runs only; `None` keeps every
/// sequential code path byte-for-byte unchanged).
struct NetShardCtx {
    /// This shard's id.
    me: u32,
    /// Total shard count — also the packet-id stride: shard `s` allocates
    /// ids `s, s + stride, s + 2·stride, …` so allocations on different
    /// shards can never collide.
    stride: u64,
    /// Shard owning each channel's *source* node (mutator of its state).
    chan_src_shard: Vec<u32>,
    /// Shard owning each channel's *sink* node.
    chan_sink_shard: Vec<u32>,
    /// Per-destination-shard handoff buffers for the current window.
    outboxes: Vec<Vec<NetHandoff>>,
    /// Capture sequence for this shard's handoffs.
    out_seq: u64,
}

impl NetShardCtx {
    /// Buffer `ev` for shard `dst` instead of scheduling it locally.
    fn handoff(
        &mut self,
        dst: u32,
        fire_at: SimTime,
        rank_time: SimTime,
        ev: NetEvent,
        state: Option<Box<PacketState>>,
    ) {
        self.out_seq += 1;
        self.outboxes[dst as usize].push(NetHandoff {
            fire_at,
            rank_time,
            seq: self.out_seq,
            ev,
            state,
        });
    }
}

/// The complete network model. See crate docs.
pub struct Network {
    // detlint::allow(T003, per-run wiring: the topology is fixed before the first event and never mutated)
    topo: Topology,
    // detlint::allow(T003, per-run timing/arbitration configuration: fixed before the first event and never mutated)
    cfg: NetConfig,
    chans: Vec<Channel>,
    /// `[switch][port]` — input-port state for cabled ports.
    inputs: Vec<Vec<Option<InputPort>>>,
    /// `[switch][port]` — outgoing channel index for cabled ports.
    // detlint::allow(T003, derived routing index: rebuilt from the digested topology and never mutated)
    out_chan: Vec<Vec<Option<u32>>>,
    hosts: Vec<HostPort>,
    /// Registry of live packets. Ids are monotonic and short-lived, so a
    /// sliding-window slab makes every per-flit lookup an index, not a hash.
    packets: IdSlab<PacketState>,
    next_packet: u64,
    indications: Vec<HostIndication>,
    /// Timelines of retired packets (kept only when timelines are on).
    // detlint::allow(T003, observability sidecar: retired-packet timelines are exported, never read by a transition)
    retired_timelines: Vec<(PacketId, Vec<TimelineEntry>)>,
    // detlint::allow(T003, diagnostics counters: never read by a transition)
    stats: NetStats,
    /// Shared packet-lifecycle tracer: the network owns it because every
    /// layer (NIC firmware, GM host software) holds `&mut Network` at its
    /// instrumentation points. Disabled by default.
    // detlint::allow(T003, observability sidecar: trace records are exported, never read by a transition)
    tracer: PacketTracer,
    /// Durations of individual STOP-pause intervals, any channel (ns).
    // detlint::allow(T003, diagnostics accumulator: never read by a transition)
    blocking: Accum,
    /// Link-fault injection state (None = clean fabric).
    // detlint::allow(T003, probabilistic fault stream: exercised only by the chaos soak; checker runs drive faults through the digested forced-down overlay)
    faults: Option<FaultState>,
    /// Links held down by direct request ([`Network::set_link_forced_down`]),
    /// indexed by link. Orthogonal to any [`FaultPlan`] outage windows: the
    /// model checker drives this overlay to explore link-down interleavings
    /// without a probabilistic plan.
    forced_down: Vec<bool>,
    /// Sharded-execution context (None = sequential run).
    shard: Option<NetShardCtx>,
    /// Packets owned by another shard that are currently traversing this
    /// one (adopted from a head-flit handoff). Kept out of the [`IdSlab`]:
    /// its sliding window forbids re-registering an id, and foreign ids
    /// don't belong to this shard's stride anyway.
    foreign: FxHashMap<u64, PacketState>,
}

impl Network {
    /// Build the model for `topo` under `cfg`.
    pub fn new(topo: Topology, cfg: NetConfig) -> Self {
        assert!(
            cfg.flit_bytes >= 4,
            "head flit must carry the 4-byte early-recv window"
        );
        let nl = topo.num_links();
        let mut chans = Vec::with_capacity(nl * 2);
        for lid in topo.link_ids() {
            let link = topo.link(lid);
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                let source = match from.node {
                    Node::Switch(sw) => ChanSource::SwitchOut {
                        sw,
                        port: from.port,
                    },
                    Node::Host(h) => ChanSource::HostTx(h),
                };
                let sink = match to.node {
                    Node::Switch(sw) => ChanSink::SwitchIn { sw, port: to.port },
                    Node::Host(h) => ChanSink::HostRx(h),
                };
                chans.push(Channel {
                    source,
                    sink,
                    prop: link.propagation,
                    tx_busy: false,
                    paused: false,
                    finishing: false,
                    grant: None,
                    last_granted: None,
                    waiting: VecDeque::new(),
                    bytes_sent: 0,
                    paused_since: None,
                    paused_total: SimDuration::ZERO,
                });
            }
        }
        let mut inputs: Vec<Vec<Option<InputPort>>> = topo
            .switch_ids()
            .map(|s| (0..topo.switch_port_count(s)).map(|_| None).collect())
            .collect();
        let mut out_chan: Vec<Vec<Option<u32>>> =
            inputs.iter().map(|v| vec![None; v.len()]).collect();
        let mut host_tx: Vec<Option<u32>> = vec![None; topo.num_hosts()];
        let mut host_rx: Vec<Option<u32>> = vec![None; topo.num_hosts()];
        for (ci, c) in chans.iter().enumerate() {
            match c.sink {
                ChanSink::HostRx(h) => host_rx[h.idx()] = Some(narrow(ci)),
                ChanSink::SwitchIn { sw, port } => {
                    inputs[sw.idx()][port.idx()] = Some(InputPort {
                        in_chan: narrow(ci),
                        occupancy: 0,
                        stopped: false,
                        route_pending: false,
                        queue: VecDeque::new(),
                    });
                }
            }
            match c.source {
                ChanSource::SwitchOut { sw, port } => {
                    out_chan[sw.idx()][port.idx()] = Some(narrow(ci));
                }
                ChanSource::HostTx(h) => host_tx[h.idx()] = Some(narrow(ci)),
            }
        }
        let hosts = host_tx
            .into_iter()
            .zip(host_rx)
            .map(|(tx, rx)| HostPort {
                // detlint::allow(S001, build wires a channel pair for every host port)
                tx_chan: tx.expect("every host is wired"),
                // detlint::allow(S001, build wires a channel pair for every host port)
                rx_chan: rx.expect("every host is wired"),
                tx_queue: VecDeque::new(),
                rx_current: None,
            })
            .collect();
        Network {
            topo,
            cfg,
            chans,
            inputs,
            out_chan,
            hosts,
            packets: IdSlab::default(),
            next_packet: 0,
            indications: Vec::new(),
            retired_timelines: Vec::new(),
            stats: NetStats::default(),
            tracer: PacketTracer::default(),
            blocking: Accum::new(),
            faults: None,
            forced_down: vec![false; nl],
            shard: None,
            foreign: FxHashMap::default(),
        }
    }

    /// Enter sharded-parallel mode: this instance models shard `me` of
    /// `part` and buffers cross-shard effects into per-destination outboxes
    /// (drained by [`Network::take_net_outbox`], delivered through
    /// [`Network::adopt_handoff`]).
    ///
    /// Must be called on a freshly built network, before any injection, and
    /// only for configurations whose event flow is shard-independent:
    /// faults, forced corruption and per-packet timelines key off global
    /// packet-id arithmetic or global RNG draws and would diverge from the
    /// sequential run under strided ids.
    ///
    /// # Panics
    /// Panics on any violated precondition.
    pub fn set_shard_ctx(&mut self, me: u32, part: &Partition) {
        assert!(me < part.shards, "shard id out of range");
        assert!(
            self.packets.is_empty() && self.next_packet == 0,
            "shard context must be installed before any injection"
        );
        assert!(
            self.faults.is_none(),
            "parallel mode requires a no-fault plan"
        );
        assert!(
            self.cfg.corrupt_every.is_none(),
            "parallel mode forbids corrupt_every (global packet-id arithmetic)"
        );
        assert!(
            !self.cfg.record_timelines,
            "parallel mode forbids per-packet timelines"
        );
        assert!(
            !self.tracer.is_enabled(),
            "parallel mode forbids the lifecycle tracer"
        );
        let chan_src_shard = self
            .chans
            .iter()
            .map(|c| match c.source {
                ChanSource::SwitchOut { sw, .. } => part.shard_of(sw),
                ChanSource::HostTx(h) => part.host_shard(h),
            })
            .collect();
        let chan_sink_shard = self
            .chans
            .iter()
            .map(|c| match c.sink {
                ChanSink::SwitchIn { sw, .. } => part.shard_of(sw),
                ChanSink::HostRx(h) => part.host_shard(h),
            })
            .collect();
        // Host cables never cross shards (hosts shard with their switch).
        debug_assert!(self.chans.iter().all(|c| {
            match (c.source, c.sink) {
                (ChanSource::HostTx(h), ChanSink::SwitchIn { sw, .. })
                | (ChanSource::SwitchOut { sw, .. }, ChanSink::HostRx(h)) => {
                    part.host_shard(h) == part.shard_of(sw)
                }
                _ => true,
            }
        }));
        self.next_packet = u64::from(me);
        self.shard = Some(NetShardCtx {
            me,
            stride: u64::from(part.shards),
            chan_src_shard,
            chan_sink_shard,
            outboxes: (0..part.shards).map(|_| Vec::new()).collect(),
            out_seq: 0,
        });
    }

    /// Allocate a capture-sequence number from this shard's *single*
    /// envelope counter. Cross-shard delivery notices (captured by the GM
    /// layer) draw from the same counter as net handoffs, so every envelope
    /// a shard emits carries a globally unique
    /// `(fire time, rank time, shard, seq)` merge key — the uniqueness the
    /// parallel merge order is documented to rely on.
    ///
    /// # Panics
    /// Panics outside sharded mode (sequential runs never capture).
    pub fn alloc_handoff_seq(&mut self) -> u64 {
        // detlint::allow(S001, callers capture cross-shard envelopes, which only exist after set_shard_ctx installed the context)
        let s = self.shard.as_mut().expect("sharded mode only");
        s.out_seq += 1;
        s.out_seq
    }

    /// Drain the handoffs captured for shard `dst` during the current
    /// window, in capture (= deterministic execution) order.
    pub fn take_net_outbox(&mut self, dst: u32) -> Vec<NetHandoff> {
        match self.shard.as_mut() {
            Some(s) => std::mem::take(&mut s.outboxes[dst as usize]),
            None => Vec::new(),
        }
    }

    /// Accept a handoff from another shard: adopt any carried packet state
    /// and return the event, which the caller schedules with the handoff's
    /// rank (see `EventQueue::schedule_ranked`).
    pub fn adopt_handoff(&mut self, h: NetHandoff) -> NetEvent {
        if let Some(state) = h.state {
            let NetEvent::RxFlit { packet, .. } = h.ev else {
                unreachable!("only head-flit handoffs carry packet state");
            };
            let prev = self.foreign.insert(packet.0, *state);
            debug_assert!(prev.is_none(), "packet {packet:?} adopted twice");
        }
        h.ev
    }

    /// Registry lookup spanning both owned (slab) and adopted (foreign)
    /// packets. Sequential runs hit the slab only — same code, zero cost.
    #[inline]
    fn pkt_get(&self, id: u64) -> Option<&PacketState> {
        let key = match &self.shard {
            None => id,
            Some(s) if id % s.stride == u64::from(s.me) => id / s.stride,
            Some(_) => return self.foreign.get(&id),
        };
        self.packets.get(key).or_else(|| self.foreign.get(&id))
    }

    /// Exclusive [`Network::pkt_get`].
    #[inline]
    fn pkt_get_mut(&mut self, id: u64) -> Option<&mut PacketState> {
        let key = match &self.shard {
            None => id,
            Some(s) if id % s.stride == u64::from(s.me) => id / s.stride,
            Some(_) => return self.foreign.get_mut(&id),
        };
        match self.packets.get_mut(key) {
            Some(p) => Some(p),
            None => self.foreign.get_mut(&id),
        }
    }

    /// Remove a packet from whichever registry holds it.
    #[inline]
    fn pkt_remove(&mut self, id: u64) -> Option<PacketState> {
        let key = match &self.shard {
            None => id,
            Some(s) if id % s.stride == u64::from(s.me) => id / s.stride,
            Some(_) => return self.foreign.remove(&id),
        };
        match self.packets.remove(key) {
            Some(p) => Some(p),
            None => self.foreign.remove(&id),
        }
    }

    /// Install the link-level faults of `plan` (seeded probabilistic
    /// drop/corruption per link, scheduled outage windows). Host crashes in
    /// the plan are ignored here — the cluster layer executes them against
    /// the NICs it owns. A no-op plan clears any previous fault state.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_noop() {
            self.faults = None;
            return;
        }
        let nl = self.topo.num_links();
        let probs = self
            .topo
            .link_ids()
            .map(|lid| plan.probs_for(lid))
            .collect();
        let mut down = vec![Vec::new(); nl];
        for w in &plan.down_windows {
            assert!(
                w.link.idx() < nl,
                "down window names unknown link {:?}",
                w.link
            );
            down[w.link.idx()].push((w.from, w.until));
        }
        self.faults = Some(FaultState {
            rng: SimRng::new(plan.seed),
            probs,
            down,
        });
    }

    /// Hold `link` down (or bring it back up) by direct request, independent
    /// of any fault plan. While down, every head flit arriving over the link
    /// is marked corrupted, exactly like a [`FaultPlan`] outage window — the
    /// worm still occupies the wire and is discarded by the destination
    /// NIC's CRC check. The model checker uses this to enumerate link-down
    /// interleavings deterministically.
    pub fn set_link_forced_down(&mut self, link: itb_topo::LinkId, down: bool) {
        self.forced_down[link.idx()] = down;
    }

    /// Whether `link` is currently held down by
    /// [`Network::set_link_forced_down`].
    pub fn link_forced_down(&self, link: itb_topo::LinkId) -> bool {
        self.forced_down[link.idx()]
    }

    /// Damage the CRC of a live packet by direct request — the model
    /// checker's deterministic drop action. The packet keeps traversing the
    /// wire and is discarded at the destination NIC's completion check, the
    /// same downstream path every probabilistic fault takes. Returns whether
    /// the packet existed and was not already corrupted (counted under
    /// `NetStats::forced_corrupts`).
    pub fn force_corrupt(&mut self, id: PacketId, now: SimTime) -> bool {
        match self.pkt_get_mut(id.0) {
            Some(pkt) if !pkt.corrupted => {
                pkt.corrupted = true;
                self.stats.forced_corrupts += 1;
                self.note(id, "fault.forced", 0, now);
                true
            }
            _ => false,
        }
    }

    /// Roll the probabilistic link faults for a packet whose head is being
    /// put onto channel `ch` (the sender-side garbling point). A hit marks
    /// the packet corrupted: it still occupies the wire to its destination,
    /// where the CRC tail check discards it.
    fn roll_link_faults(&mut self, ch: u32, id: PacketId, now: SimTime) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        // Channels are laid out pairwise per link: lid*2 fwd, lid*2+1 rev.
        let lid = (ch / 2) as usize;
        let (drop_p, corrupt_p) = f.probs[lid];
        if drop_p <= 0.0 && corrupt_p <= 0.0 {
            return;
        }
        let roll = f.rng.f64();
        // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
        let pkt = self.pkt_get_mut(id.0).expect("packet exists");
        if roll < drop_p {
            if !pkt.corrupted {
                pkt.corrupted = true;
                self.stats.fault_drops += 1;
                self.note(id, "fault.drop", ch, now);
            }
        } else if roll < drop_p + corrupt_p && !pkt.corrupted {
            pkt.corrupted = true;
            self.stats.fault_corrupts += 1;
            self.note(id, "fault.corrupt", ch, now);
        }
    }

    /// Check the scheduled outage windows — and the forced-down overlay —
    /// for a head flit arriving over channel `ch` at `now`; on a downed
    /// link the packet is lost (marked corrupted, counted separately).
    fn check_link_down(&mut self, ch: u32, id: PacketId, now: SimTime) {
        let lid = (ch / 2) as usize;
        let forced = self.forced_down[lid];
        let windowed = self.faults.as_ref().is_some_and(|f| {
            f.down[lid]
                .iter()
                .any(|&(from, until)| from <= now && now < until)
        });
        if !forced && !windowed {
            return;
        }
        // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
        let pkt = self.pkt_get_mut(id.0).expect("packet exists");
        if !pkt.corrupted {
            pkt.corrupted = true;
            self.stats.link_down_drops += 1;
            self.note(id, "fault.link_down", ch, now);
        }
    }

    /// The wired topology (shared with higher layers).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The shared packet-lifecycle tracer (read side).
    pub fn tracer(&self) -> &PacketTracer {
        &self.tracer
    }

    /// The shared packet-lifecycle tracer; enable/clear through this. Other
    /// layers also record their firmware stages through it (the network owns
    /// the tracer because every layer holds `&mut Network` at its
    /// instrumentation points).
    pub fn tracer_mut(&mut self) -> &mut PacketTracer {
        &mut self.tracer
    }

    /// Record a lifecycle stage for a packet (single branch when disabled).
    #[inline]
    pub fn trace(&mut self, id: PacketId, stage: Stage, node: u32, t: SimTime) {
        self.tracer.record(id.0, stage, node, t);
    }

    /// Distribution of individual STOP-pause interval lengths across all
    /// channels, in nanoseconds (always on; one sample per resume).
    pub fn blocking_times(&self) -> &Accum {
        &self.blocking
    }

    /// Append a timeline entry for `id` (no-op unless
    /// `NetConfig::record_timelines` is set). Public so the NIC layer can
    /// record firmware moments into the same per-packet timeline.
    pub fn note(&mut self, id: PacketId, tag: &'static str, value: u32, t: SimTime) {
        if !self.cfg.record_timelines {
            return;
        }
        if let Some(p) = self.pkt_get_mut(id.0) {
            p.timeline.push(TimelineEntry { tag, value, t });
        }
    }

    /// Drain pending host indications (in emission order).
    pub fn take_indications(&mut self) -> Vec<HostIndication> {
        std::mem::take(&mut self.indications)
    }

    /// Drain pending host indications into `buf` (cleared first), keeping
    /// `buf`'s capacity. The steady-state event loop calls this once per
    /// event; swapping buffers instead of allocating keeps the loop
    /// allocation-free.
    pub fn drain_indications_into(&mut self, buf: &mut Vec<HostIndication>) {
        buf.clear();
        std::mem::swap(&mut self.indications, buf);
    }

    /// Number of packets still registered (in flight or awaiting retire),
    /// counting adopted foreign packets in parallel runs.
    pub fn in_flight(&self) -> usize {
        self.packets.len() + self.foreign.len()
    }

    /// Inspect an in-flight packet (panics on unknown id).
    pub fn packet(&self, id: PacketId) -> &PacketState {
        // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
        self.pkt_get(id.0).expect("packet exists")
    }

    /// The two-byte packet type currently at the head of a packet's header,
    /// if the packet is positioned at a NIC.
    pub fn packet_type(&self, id: PacketId) -> Option<u16> {
        self.pkt_get(id.0)
            // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
            .expect("packet exists")
            .desc
            .header
            .packet_type()
    }

    /// Strip the `ITB | Length` group from a packet parked at an in-transit
    /// NIC (the MCP does this before reprogramming the send DMA).
    pub fn strip_itb_group(&mut self, id: PacketId) -> u8 {
        // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
        let p = self.pkt_get_mut(id.0).expect("packet exists");
        p.itb_hops += 1;
        p.desc.header.strip_itb_group()
    }

    /// Remove a fully delivered packet from the registry, returning its
    /// final state (header should start with the GM type).
    pub fn retire(&mut self, id: PacketId) -> PacketState {
        // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
        let st = self.pkt_remove(id.0).expect("packet exists");
        if self.cfg.record_timelines {
            self.retired_timelines.push((id, st.timeline.clone()));
        }
        st
    }

    /// Drain the timelines of retired packets (empty unless
    /// `NetConfig::record_timelines` is on).
    pub fn take_retired_timelines(&mut self) -> Vec<(PacketId, Vec<TimelineEntry>)> {
        std::mem::take(&mut self.retired_timelines)
    }

    /// Whether the host's send serializer has work queued or in progress.
    pub fn host_tx_busy(&self, host: HostId) -> bool {
        !self.hosts[host.idx()].tx_queue.is_empty()
    }

    /// NIC receive flow control: pause (`true`) or resume (`false`) the
    /// channel delivering into `host` — what the LANai does when no receive
    /// buffer is programmed for the next reception. Backpressure then
    /// propagates upstream through the ordinary Stop&Go machinery.
    pub fn set_host_rx_paused(
        &mut self,
        host: HostId,
        paused: bool,
        now: SimTime,
        sched: &mut impl NetSched,
    ) {
        let ch = self.hosts[host.idx()].rx_chan;
        self.on_ctrl(ch, paused, now, sched);
    }

    /// Reserve the next packet id without injecting anything. Lets the NIC
    /// layer record `host.inject` (and other pre-wire stages) against the
    /// same stable id the packet will carry through the network; pass the id
    /// to [`Network::inject_allocated`] when the send DMA is programmed.
    pub fn allocate_packet_id(&mut self) -> PacketId {
        let id = PacketId(self.next_packet);
        // Sharded runs stride the id space (shard `s` allocates `s`,
        // `s + stride`, …) and keep the slab dense by dividing the stride
        // back out of the key.
        let (step, key) = match &self.shard {
            None => (1, id.0),
            Some(s) => (s.stride, id.0 / s.stride),
        };
        self.next_packet += step;
        // Pin the registry window: the packet may be registered well after
        // later-allocated ids have come and gone.
        self.packets.reserve(key);
        id
    }

    /// Slab key of a locally allocated packet id (identity in sequential
    /// runs; stride divided out in sharded runs).
    ///
    /// # Panics
    /// Panics if `id` belongs to another shard's stride — only this shard's
    /// allocations may be registered here.
    fn own_slab_key(&self, id: u64) -> u64 {
        match &self.shard {
            None => id,
            Some(s) => {
                assert!(
                    id % s.stride == u64::from(s.me),
                    "packet id {id} allocated on another shard"
                );
                id / s.stride
            }
        }
    }

    /// Inject a packet at `host`. `avail` bytes are sendable immediately
    /// (pass the packet's full wire length for ordinary sends); more can be
    /// released later with [`Network::extend_available`]. Returns the packet
    /// id.
    pub fn inject(
        &mut self,
        host: HostId,
        desc: PacketDesc,
        avail: u32,
        now: SimTime,
        sched: &mut impl NetSched,
    ) -> PacketId {
        let id = self.allocate_packet_id();
        self.inject_allocated(id, host, desc, avail, now, sched);
        id
    }

    /// [`Network::inject`] with a pre-reserved id from
    /// [`Network::allocate_packet_id`].
    pub fn inject_allocated(
        &mut self,
        id: PacketId,
        host: HostId,
        desc: PacketDesc,
        avail: u32,
        now: SimTime,
        sched: &mut impl NetSched,
    ) {
        let corrupted = self
            .cfg
            .corrupt_every
            .is_some_and(|n| (id.0 + 1).is_multiple_of(n));
        let st = PacketState {
            desc,
            injected_at: now,
            route_bytes_consumed: 0,
            itb_hops: 0,
            corrupted,
            timeline: Vec::new(),
        };
        let total = st.wire_len();
        self.packets.insert(self.own_slab_key(id.0), st);
        self.stats.injected += 1;
        self.note(id, "inject", u32::from(host.0), now);
        self.trace(id, Stage::NetInject, u32::from(host.0), now);
        let hp = &mut self.hosts[host.idx()];
        hp.tx_queue.push_back(HostTxPkt {
            id,
            total,
            avail: avail.min(total),
            sent: 0,
        });
        let ch = hp.tx_chan;
        self.try_send(ch, now, sched);
    }

    /// Re-inject a packet parked at an in-transit host. The `ITB | Length`
    /// group must already have been stripped ([`Network::strip_itb_group`]).
    /// `avail` is the number of wire bytes already on hand (received − 3);
    /// extend as reception progresses.
    pub fn reinject(
        &mut self,
        host: HostId,
        id: PacketId,
        avail: u32,
        now: SimTime,
        sched: &mut impl NetSched,
    ) {
        // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
        let total = self.pkt_get(id.0).expect("packet exists").wire_len();
        self.note(id, "reinject", u32::from(host.0), now);
        self.trace(id, Stage::NetReinject, u32::from(host.0), now);
        let hp = &mut self.hosts[host.idx()];
        hp.tx_queue.push_back(HostTxPkt {
            id,
            total,
            avail: avail.min(total),
            sent: 0,
        });
        self.stats.reinjected += 1;
        let ch = hp.tx_chan;
        self.try_send(ch, now, sched);
    }

    /// Raise the sendable-byte watermark of a queued packet to `avail`
    /// (absolute, monotonic; clamped to the packet's length).
    pub fn extend_available(
        &mut self,
        host: HostId,
        id: PacketId,
        avail: u32,
        now: SimTime,
        sched: &mut impl NetSched,
    ) {
        let hp = &mut self.hosts[host.idx()];
        let mut is_front = false;
        if let Some(pos) = hp.tx_queue.iter().position(|p| p.id == id) {
            let p = &mut hp.tx_queue[pos];
            p.avail = avail.min(p.total).max(p.avail);
            is_front = pos == 0;
        }
        if is_front {
            let ch = hp.tx_chan;
            self.try_send(ch, now, sched);
        }
    }

    /// Main event dispatcher.
    pub fn handle(&mut self, now: SimTime, ev: NetEvent, sched: &mut impl NetSched) {
        match ev {
            NetEvent::TxDone { ch } => self.on_tx_done(ch, now, sched),
            NetEvent::RxFlit {
                ch,
                packet,
                bytes,
                head,
                tail,
            } => self.on_rx_flit(ch, packet, bytes, head, tail, now, sched),
            NetEvent::RouteReady { sw, port } => self.on_route_ready(sw, port, now, sched),
            NetEvent::Ctrl { ch, stop } => self.on_ctrl(ch, stop, now, sched),
        }
    }

    /// Attempt to put the next flit of the current packet on channel `ch`.
    fn try_send(&mut self, ch: u32, now: SimTime, sched: &mut impl NetSched) {
        let c = &self.chans[ch as usize];
        if c.tx_busy || c.paused {
            return;
        }
        let flit = self.cfg.flit_bytes;
        // Work out (packet, bytes, head, tail) from the source, mutating the
        // source-side accounting.
        let pulled = match c.source {
            ChanSource::HostTx(h) => {
                let hp = &mut self.hosts[h.idx()];
                let Some(front) = hp.tx_queue.front_mut() else {
                    return;
                };
                let pullable = front.avail.min(front.total) - front.sent;
                if pullable == 0 {
                    return;
                }
                let bytes = pullable.min(flit);
                let head = front.sent == 0;
                front.sent += bytes;
                let tail = front.sent == front.total;
                Some((front.id, bytes, head, tail))
            }
            ChanSource::SwitchOut { sw, .. } => {
                let Some(in_port) = c.grant else {
                    return;
                };
                let inp = self.inputs[sw.idx()][in_port.idx()]
                    .as_mut()
                    // detlint::allow(S001, arbitration granted this input so it is occupied)
                    .expect("granted input exists");
                let Some(front) = inp.queue.front_mut() else {
                    return;
                };
                debug_assert!(front.routed && front.granted);
                let pullable = front.received - front.forwarded;
                if pullable == 0 {
                    return;
                }
                let bytes = pullable.min(flit);
                let head = front.forwarded == 0;
                front.forwarded += bytes;
                let tail = front.tail_seen && front.forwarded == front.received;
                let id = front.id;
                inp.occupancy -= bytes;
                // GO when the buffer drains below threshold. The control
                // byte travels to the channel's *source* node, which may
                // live on another shard (direct field borrows keep `inp`
                // usable alongside `self.shard`).
                if inp.stopped && inp.occupancy <= self.cfg.go_threshold {
                    inp.stopped = false;
                    let up = inp.in_chan;
                    let fire = now + self.cfg.ctrl_latency;
                    let ev = NetEvent::Ctrl {
                        ch: up,
                        stop: false,
                    };
                    match &mut self.shard {
                        Some(s) if s.chan_src_shard[up as usize] != s.me => {
                            let dst = s.chan_src_shard[up as usize];
                            s.handoff(dst, fire, now, ev, None);
                        }
                        _ => sched.at(fire, ev),
                    }
                }
                if tail {
                    inp.queue.pop_front();
                    // Next packet (if its head is here) can start routing now.
                    self.schedule_front_routing(sw, in_port, now, sched);
                }
                Some((id, bytes, head, tail))
            }
        };
        let Some((id, bytes, head, tail)) = pulled else {
            return;
        };
        if head {
            self.roll_link_faults(ch, id, now);
        }
        let c = &mut self.chans[ch as usize];
        c.tx_busy = true;
        c.finishing = tail;
        c.bytes_sent += u64::from(bytes);
        let prop = c.prop;
        let ser = self.cfg.link_bw.transfer_time(u64::from(bytes));
        sched.at(now + ser, NetEvent::TxDone { ch });
        let fire = now + ser + prop;
        let ev = NetEvent::RxFlit {
            ch,
            packet: id,
            bytes,
            head,
            tail,
        };
        let cross_dst = match &self.shard {
            Some(s) if s.chan_sink_shard[ch as usize] != s.me => {
                Some(s.chan_sink_shard[ch as usize])
            }
            _ => None,
        };
        match cross_dst {
            Some(dst) => {
                // The head flit carries the packet's registry state to the
                // sink shard; the worm's body needs no registry access on
                // this side after that.
                let state = if head {
                    let st = self
                        .pkt_remove(id.0)
                        // detlint::allow(S001, the head flit of a live worm is always registered)
                        .expect("crossing packet is registered");
                    Some(Box::new(st))
                } else {
                    None
                };
                // detlint::allow(S001, cross_dst is only Some when the shard ctx exists)
                let s = self.shard.as_mut().expect("shard ctx present");
                s.handoff(dst, fire, now, ev, state);
            }
            None => sched.at(fire, ev),
        }
    }

    fn on_tx_done(&mut self, ch: u32, now: SimTime, sched: &mut impl NetSched) {
        let c = &mut self.chans[ch as usize];
        c.tx_busy = false;
        if c.finishing {
            c.finishing = false;
            match c.source {
                ChanSource::HostTx(h) => {
                    let hp = &mut self.hosts[h.idx()];
                    // detlint::allow(S001, tx-finish events fire only while a packet is in the queue)
                    let done = hp.tx_queue.pop_front().expect("finishing implies a packet");
                    debug_assert_eq!(done.sent, done.total);
                    self.indications.push(HostIndication::InjectionComplete {
                        host: h,
                        packet: done.id,
                    });
                }
                ChanSource::SwitchOut { sw, .. } => {
                    c.grant = None;
                    // Hand the output to the next waiting input per the
                    // configured arbitration discipline.
                    let next = match self.cfg.arbitration {
                        Arbitration::Fifo => {
                            if c.waiting.is_empty() {
                                None
                            } else {
                                c.waiting.pop_front()
                            }
                        }
                        Arbitration::RoundRobin => {
                            let last = c.last_granted.map(|p| p.0).unwrap_or(0);
                            let pick = c
                                .waiting
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, p)| p.0.wrapping_sub(last + 1) & 0x3F)
                                .map(|(i, _)| i);
                            pick.and_then(|i| c.waiting.remove(i))
                        }
                    };
                    if let Some(next_in) = next {
                        self.assign_grant(ch, sw, next_in, now);
                    }
                }
            }
        }
        self.try_send(ch, now, sched);
    }

    /// Give output channel `ch` (on switch `sw`) to input port `in_port`.
    fn assign_grant(&mut self, ch: u32, sw: SwitchId, in_port: PortIx, now: SimTime) {
        let inp = self.inputs[sw.idx()][in_port.idx()]
            .as_mut()
            // detlint::allow(S001, the waiting list only holds occupied inputs)
            .expect("waiting input exists");
        let front = inp
            .queue
            .front_mut()
            // detlint::allow(S001, a requesting input always has a queued front packet)
            .expect("requesting input has a front packet");
        debug_assert!(front.routed && !front.granted);
        front.granted = true;
        let id = front.id;
        let c = &mut self.chans[ch as usize];
        c.grant = Some(in_port);
        c.last_granted = Some(in_port);
        self.trace(id, Stage::NetLinkAcquire, u32::from(sw.0), now);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the RxFlit event fields
    fn on_rx_flit(
        &mut self,
        ch: u32,
        packet: PacketId,
        bytes: u32,
        head: bool,
        tail: bool,
        now: SimTime,
        sched: &mut impl NetSched,
    ) {
        if head {
            self.check_link_down(ch, packet, now);
        }
        match self.chans[ch as usize].sink {
            ChanSink::SwitchIn { sw, port } => {
                let cfg_stop = self.cfg.stop_threshold;
                let inp = self.inputs[sw.idx()][port.idx()]
                    .as_mut()
                    // detlint::allow(S001, flits only travel over cabled ports)
                    .expect("flit arrives at a cabled port");
                if head {
                    inp.queue.push_back(InPkt {
                        id: packet,
                        routed: false,
                        granted: false,
                        out_port: None,
                        received: 0,
                        forwarded: 0,
                        tail_seen: false,
                    });
                }
                let is_front = inp.queue.front().map(|p| p.id) == Some(packet);
                let pkt = inp
                    .queue
                    .iter_mut()
                    .rev()
                    .find(|p| p.id == packet)
                    // detlint::allow(S001, an in-flight flit always belongs to a queued packet)
                    .expect("flit belongs to a queued packet");
                pkt.received += bytes;
                if tail {
                    pkt.tail_seen = true;
                }
                let (routed, granted, out_port) = (pkt.routed, pkt.granted, pkt.out_port);
                inp.occupancy += bytes;
                debug_assert!(
                    inp.occupancy <= self.cfg.slack_capacity,
                    "slack overrun at {sw}:{port} ({} bytes)",
                    inp.occupancy
                );
                if !inp.stopped && inp.occupancy >= cfg_stop {
                    inp.stopped = true;
                    let up = inp.in_chan;
                    let fire = now + self.cfg.ctrl_latency;
                    let ev = NetEvent::Ctrl { ch: up, stop: true };
                    // STOP travels upstream to the channel's source node,
                    // which may live on another shard.
                    match &mut self.shard {
                        Some(s) if s.chan_src_shard[up as usize] != s.me => {
                            let dst = s.chan_src_shard[up as usize];
                            s.handoff(dst, fire, now, ev, None);
                        }
                        _ => sched.at(fire, ev),
                    }
                }
                if head && is_front && !inp.route_pending {
                    self.schedule_front_routing(sw, port, now, sched);
                } else if is_front && routed && granted {
                    // Body bytes for the worm being forwarded: kick the
                    // output serializer in case it idled out of bytes.
                    // detlint::allow(S001, the route step just set the out port)
                    let out = self.out_chan[sw.idx()][out_port.expect("routed has out port").idx()]
                        // detlint::allow(S001, routing only selects cabled ports)
                        .expect("routed to a cabled port");
                    self.try_send(out, now, sched);
                }
            }
            ChanSink::HostRx(h) => {
                let received = {
                    let hp = &mut self.hosts[h.idx()];
                    if head {
                        debug_assert!(hp.rx_current.is_none(), "host channel is packet-serial");
                        hp.rx_current = Some(HostRxPkt {
                            id: packet,
                            received: 0,
                        });
                    }
                    // detlint::allow(S001, rx events fire only during an active reception)
                    let rx = hp.rx_current.as_mut().expect("rx in progress");
                    debug_assert_eq!(rx.id, packet);
                    rx.received += bytes;
                    let received = rx.received;
                    if tail {
                        hp.rx_current = None;
                    }
                    received
                };
                if head {
                    self.indications
                        .push(HostIndication::HeadArrived { host: h, packet });
                    self.note(packet, "head", u32::from(h.0), now);
                    self.trace(packet, Stage::NetHead, u32::from(h.0), now);
                }
                self.indications.push(HostIndication::BytesArrived {
                    host: h,
                    packet,
                    received,
                });
                if tail {
                    self.stats.delivered += 1;
                    self.stats.bytes_delivered += u64::from(received);
                    self.indications.push(HostIndication::PacketComplete {
                        host: h,
                        packet,
                        received,
                    });
                    self.note(packet, "tail", u32::from(h.0), now);
                    self.trace(packet, Stage::NetTail, u32::from(h.0), now);
                }
            }
        }
    }

    /// If the front packet of input `(sw, port)` has its head here and is
    /// not yet routed, start its fall-through timer.
    fn schedule_front_routing(
        &mut self,
        sw: SwitchId,
        port: PortIx,
        now: SimTime,
        sched: &mut impl NetSched,
    ) {
        let inp = self.inputs[sw.idx()][port.idx()]
            .as_ref()
            // detlint::allow(S001, events only reference ports that exist on the switch)
            .expect("port exists");
        let Some(front) = inp.queue.front() else {
            return;
        };
        if front.routed || inp.route_pending {
            return;
        }
        // Peek the route byte to learn the output kind (kind-dependent
        // fall-through), without consuming it yet.
        let front_id = front.id;
        let hdr = &self
            .pkt_get(front_id.0)
            // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
            .expect("packet exists")
            .desc
            .header;
        let out_port = itb_routing::wire::decode_route_byte(hdr.as_bytes()[0])
            // detlint::allow(S001, headers are stripped hop by hop so a route byte leads at a switch)
            .expect("packet at a switch must lead with a route byte");
        let kin = self.topo.switch_port_kind(sw, port);
        let kout = self.topo.switch_port_kind(sw, out_port);
        let delay = self.cfg.fall_through.delay(kin, kout);
        self.inputs[sw.idx()][port.idx()]
            .as_mut()
            // detlint::allow(S001, the input was occupied when the fall-through was scheduled)
            .expect("input occupied")
            .route_pending = true;
        sched.at(now + delay, NetEvent::RouteReady { sw, port });
    }

    fn on_route_ready(
        &mut self,
        sw: SwitchId,
        port: PortIx,
        now: SimTime,
        sched: &mut impl NetSched,
    ) {
        let inp = self.inputs[sw.idx()][port.idx()]
            .as_mut()
            // detlint::allow(S001, events only reference ports that exist on the switch)
            .expect("port exists");
        inp.route_pending = false;
        // detlint::allow(S001, routing services only queued packets)
        let front = inp.queue.front_mut().expect("routing a queued packet");
        let id = front.id;
        debug_assert!(!front.routed);
        // The switch strips the route byte from the header: it is gone from
        // the wire from here on.
        front.received -= 1;
        inp.occupancy -= 1;
        front.routed = true;
        // detlint::allow(S001, packet ids stay live in the registry until delivery removes them)
        let pkt = self.pkt_get_mut(id.0).expect("packet exists");
        let out_port = pkt.desc.header.consume_route_byte();
        pkt.route_bytes_consumed += 1;
        let inp = self.inputs[sw.idx()][port.idx()]
            .as_mut()
            // detlint::allow(S001, the input was occupied at route-ready time)
            .expect("input occupied");
        inp.queue
            .front_mut()
            // detlint::allow(S001, the front packet was just routed under the same borrow)
            .expect("queued packet present")
            .out_port = Some(out_port);
        self.note(id, "route", u32::from(sw.0), now);
        self.trace(id, Stage::NetRoute, u32::from(sw.0), now);
        let out = self.out_chan[sw.idx()][out_port.idx()]
            // detlint::allow(S001, a route byte naming an unwired port is a table bug worth aborting on)
            .unwrap_or_else(|| panic!("route byte names unwired port {out_port} at {sw}"));
        let c = &mut self.chans[out as usize];
        if c.grant.is_none() && !c.finishing {
            self.assign_grant(out, sw, port, now);
            self.try_send(out, now, sched);
        } else {
            c.waiting.push_back(port);
            self.trace(id, Stage::NetLinkBlock, u32::from(sw.0), now);
        }
    }

    fn on_ctrl(&mut self, ch: u32, stop: bool, now: SimTime, sched: &mut impl NetSched) {
        let c = &mut self.chans[ch as usize];
        if stop == c.paused {
            return; // duplicate control byte
        }
        c.paused = stop;
        if stop {
            c.paused_since = Some(now);
        } else {
            if let Some(since) = c.paused_since.take() {
                let interval = now - since;
                c.paused_total += interval;
                self.blocking.add(interval.as_ns_f64());
            }
            self.try_send(ch, now, sched);
        }
    }

    /// Total time each channel spent STOPped, summed (diagnostic for
    /// contention experiments).
    pub fn total_paused(&self) -> SimDuration {
        self.chans
            .iter()
            .fold(SimDuration::ZERO, |acc, c| acc + c.paused_total)
    }

    /// Bytes serialized per channel (diagnostic; index = channel).
    pub fn channel_bytes(&self) -> Vec<u64> {
        self.chans.iter().map(|c| c.bytes_sent).collect()
    }

    /// Bytes carried per cable, both directions: `(link, a→b, b→a)`.
    /// Channels are laid out pairwise per link, so this is a fold of
    /// [`Network::channel_bytes`] keyed by the topology's links.
    pub fn link_bytes(&self) -> Vec<(itb_topo::LinkId, u64, u64)> {
        self.topo
            .link_ids()
            .map(|lid| {
                let fwd = self.chans[lid.idx() * 2].bytes_sent;
                let rev = self.chans[lid.idx() * 2 + 1].bytes_sent;
                (lid, fwd, rev)
            })
            .collect()
    }

    /// Per-link traffic and blocking, in the unified observability shape:
    /// one [`LinkLoad`] per cable, named `"<a>-<b>"` with endpoints `h<n>`
    /// (host) or `s<n>` (switch). Forward is the a→b direction.
    pub fn link_load(&self) -> Vec<LinkLoad> {
        fn name(n: Node) -> String {
            match n {
                Node::Host(h) => format!("h{}", h.idx()),
                Node::Switch(s) => format!("s{}", s.idx()),
            }
        }
        self.topo
            .link_ids()
            .map(|lid| {
                let link = self.topo.link(lid);
                let fwd = &self.chans[lid.idx() * 2];
                let rev = &self.chans[lid.idx() * 2 + 1];
                LinkLoad {
                    link: format!("{}-{}", name(link.a.node), name(link.b.node)),
                    fwd_bytes: fwd.bytes_sent,
                    rev_bytes: rev.bytes_sent,
                    fwd_blocked_ns: fwd.paused_total.as_ps() / 1_000,
                    rev_blocked_ns: rev.paused_total.as_ps() / 1_000,
                }
            })
            .collect()
    }

    /// The link names of [`Network::link_load`] alone, in the same order —
    /// the schema half of the frame sampling path. Built once per run; the
    /// per-sample values come from [`Network::fill_link_loads`].
    pub fn link_names(&self) -> Vec<String> {
        fn name(n: Node) -> String {
            match n {
                Node::Host(h) => format!("h{}", h.idx()),
                Node::Switch(s) => format!("s{}", s.idx()),
            }
        }
        self.topo
            .link_ids()
            .map(|lid| {
                let link = self.topo.link(lid);
                format!("{}-{}", name(link.a.node), name(link.b.node))
            })
            .collect()
    }

    /// Numeric half of [`Network::link_load`]: per link, `[fwd_bytes,
    /// rev_bytes, fwd_blocked_ns, rev_blocked_ns]` in
    /// [`Network::link_names`] order, appended to `out`. Allocation-free
    /// when `out` has capacity — this is the per-sample hot path.
    pub fn fill_link_loads(&self, out: &mut Vec<[u64; 4]>) {
        for lid in self.topo.link_ids() {
            let fwd = &self.chans[lid.idx() * 2];
            let rev = &self.chans[lid.idx() * 2 + 1];
            out.push([
                fwd.bytes_sent,
                rev.bytes_sent,
                fwd.paused_total.as_ps() / 1_000,
                rev.paused_total.as_ps() / 1_000,
            ]);
        }
    }

    /// Debug: human-readable location summary of an in-flight packet — is it
    /// queued at a host TX, buffered in a switch input, or being received?
    pub fn locate_packet(&self, id: PacketId) -> String {
        let mut spots = Vec::new();
        for (h, hp) in self.hosts.iter().enumerate() {
            if let Some(pos) = hp.tx_queue.iter().position(|p| p.id == id) {
                let p = &hp.tx_queue[pos];
                spots.push(format!(
                    "host{h} tx_queue[{pos}] sent {}/{} avail {} (chan paused: {})",
                    p.sent, p.total, p.avail, self.chans[hp.tx_chan as usize].paused
                ));
            }
            if hp.rx_current.as_ref().map(|r| r.id) == Some(id) {
                spots.push(format!("host{h} rx_current"));
            }
        }
        for (si, ports) in self.inputs.iter().enumerate() {
            for (pi, inp) in ports.iter().enumerate() {
                let Some(inp) = inp else { continue };
                if let Some(pos) = inp.queue.iter().position(|p| p.id == id) {
                    let p = &inp.queue[pos];
                    spots.push(format!(
                        "sw{si}:p{pi} slot[{pos}] recv {} fwd {} routed {} granted {} tail {}",
                        p.received, p.forwarded, p.routed, p.granted, p.tail_seen
                    ));
                }
            }
        }
        if spots.is_empty() {
            spots.push("not in any queue (awaiting NIC action)".into());
        }
        spots.join("; ")
    }

    /// Packets that are registered but can make no further progress because
    /// the event queue drained — i.e. a wormhole deadlock or a packet parked
    /// at a NIC awaiting action. Used by tests to *observe* deadlock.
    pub fn parked_packets(&self) -> Vec<PacketId> {
        // Slab keys are dense; multiply the stride back in under sharding.
        let (stride, me) = match &self.shard {
            None => (1, 0),
            Some(s) => (s.stride, u64::from(s.me)),
        };
        let mut v: Vec<PacketId> = self
            .packets
            .ids()
            .map(|k| PacketId(k * stride + me))
            .chain(self.foreign.keys().map(|&id| PacketId(id)))
            .collect();
        v.sort();
        v
    }

    /// Fold every *behavioral* field of the network — channel serializer and
    /// flow-control state, switch input buffers, host send/receive ports,
    /// the in-flight packet registry and the forced-down overlay — into `d`.
    ///
    /// Pure diagnostics (byte counters, pause-time accumulators, packet
    /// timelines, the lifecycle tracer) are deliberately excluded: two
    /// worlds that differ only in such counters dispatch identical futures,
    /// and folding them in would make the model checker explore the same
    /// behavior many times over. Probabilistic fault state (`FaultPlan` RNG)
    /// is also excluded — the checker drives faults through the
    /// deterministic [`Network::force_corrupt`] /
    /// [`Network::set_link_forced_down`] hooks instead, and never installs a
    /// plan.
    pub fn state_digest(&self, d: &mut itb_sim::Digest) {
        fn digest_port(d: &mut itb_sim::Digest, p: Option<PortIx>) {
            match p {
                None => d.u8(0),
                Some(px) => {
                    d.u8(1);
                    d.u8(px.0);
                }
            }
        }
        d.usize(self.chans.len());
        for c in &self.chans {
            d.bool(c.tx_busy);
            d.bool(c.paused);
            d.bool(c.finishing);
            digest_port(d, c.grant);
            digest_port(d, c.last_granted);
            d.usize(c.waiting.len());
            for &w in &c.waiting {
                d.u8(w.0);
            }
        }
        for ports in &self.inputs {
            for inp in ports.iter().flatten() {
                d.u32(inp.occupancy);
                d.bool(inp.stopped);
                d.bool(inp.route_pending);
                d.usize(inp.queue.len());
                for p in &inp.queue {
                    d.u64(p.id.0);
                    d.bool(p.routed);
                    d.bool(p.granted);
                    digest_port(d, p.out_port);
                    d.u32(p.received);
                    d.u32(p.forwarded);
                    d.bool(p.tail_seen);
                }
            }
        }
        for hp in &self.hosts {
            d.usize(hp.tx_queue.len());
            for p in &hp.tx_queue {
                d.u64(p.id.0);
                d.u32(p.total);
                d.u32(p.avail);
                d.u32(p.sent);
            }
            match &hp.rx_current {
                None => d.u8(0),
                Some(rx) => {
                    d.u8(1);
                    d.u64(rx.id.0);
                    d.u32(rx.received);
                }
            }
        }
        // The registry, in id order (the slab iterates ids ascending; the
        // checker never runs sharded, so `foreign` is empty).
        d.usize(self.in_flight());
        for id in self.parked_packets() {
            let st = self.packet(id);
            d.u64(id.0);
            let hdr = st.desc.header.as_bytes();
            d.usize(hdr.len());
            d.bytes(hdr);
            d.u32(st.desc.payload_len);
            d.u64(st.desc.tag);
            d.u16(st.desc.src.0);
            d.bool(st.corrupted);
        }
        d.u64(self.next_packet);
        d.usize(self.indications.len());
        for &down in &self.forced_down {
            d.bool(down);
        }
    }
}

//! End-to-end tests of the wormhole network model: cut-through latency
//! composition, blocking, Stop&Go backpressure, and an *observed* wormhole
//! deadlock that ITB-style segmentation would prevent.

use itb_net::{NetConfig, NetEvent, Network, PacketDesc};
use itb_routing::path::{Hop, SourceRoute};
use itb_routing::wire::{Header, TYPE_GM};
use itb_sim::{EventQueue, SimDuration, SimTime};
use itb_topo::builders::{chain, fig6_testbed, ring};
use itb_topo::{HostId, PortKind, SwitchId};

/// Drive the network until the event queue drains or `limit` events fire.
fn run(net: &mut Network, q: &mut EventQueue<NetEvent>, limit: u64) -> u64 {
    let mut n = 0;
    while let Some((t, ev)) = q.pop() {
        net.handle(t, ev, q);
        n += 1;
        if n >= limit {
            break;
        }
    }
    n
}

fn desc_for(route: &SourceRoute, payload: u32, tag: u64) -> PacketDesc {
    PacketDesc {
        header: Header::encode(route),
        payload_len: payload,
        tag,
        src: route.src,
    }
}

/// Collect (host, packet, kind) deliveries from indications.
#[derive(Default)]
struct Deliveries {
    heads: Vec<(HostId, itb_net::PacketId, SimTime)>,
    completes: Vec<(HostId, itb_net::PacketId, u32, SimTime)>,
}

fn drain(net: &mut Network, now: SimTime, d: &mut Deliveries) {
    for ind in net.take_indications() {
        match ind {
            itb_net::HostIndication::HeadArrived { host, packet } => {
                d.heads.push((host, packet, now))
            }
            itb_net::HostIndication::PacketComplete {
                host,
                packet,
                received,
            } => d.completes.push((host, packet, received, now)),
            _ => {}
        }
    }
}

/// Run to completion, draining indications after every event so timestamps
/// are exact.
fn run_collect(net: &mut Network, q: &mut EventQueue<NetEvent>, limit: u64) -> Deliveries {
    let mut d = Deliveries::default();
    let mut n = 0;
    while let Some((t, ev)) = q.pop() {
        net.handle(t, ev, q);
        drain(net, t, &mut d);
        n += 1;
        if n >= limit {
            break;
        }
    }
    d
}

#[test]
fn single_hop_delivery_and_latency_composition() {
    // chain(2,1): h0 at sw0, h1 at sw1.
    let topo = chain(2, 1);
    let cfg = NetConfig::default();
    let mut net = Network::new(topo, cfg);
    let mut q = EventQueue::new();

    let route = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    let payload = 64;
    let desc = desc_for(&route, payload, 0xAB);
    let wire0 = desc.header.len() as u32 + payload + 1;
    let id = net.inject(HostId(0), desc, wire0, SimTime::ZERO, &mut q);

    let d = run_collect(&mut net, &mut q, 100_000);
    assert_eq!(d.completes.len(), 1);
    let (host, pkt, received, t_done) = d.completes[0];
    assert_eq!(host, HostId(1));
    assert_eq!(pkt, id);
    // Two switches each strip one route byte.
    assert_eq!(received, wire0 - 2);
    // Destination NIC sees the GM type in front.
    assert_eq!(net.packet_type(id), Some(TYPE_GM));
    let st = net.retire(id);
    assert_eq!(st.desc.tag, 0xAB);
    assert_eq!(st.route_bytes_consumed, 2);

    // Latency sanity: must exceed pure serialization (wire0 bytes at link
    // rate) and be well under 2x that plus overheads.
    let ser = cfg.link_bw.transfer_time(u64::from(wire0));
    let total = t_done - SimTime::ZERO;
    assert!(total > ser, "total {total} vs serialization {ser}");
    assert!(
        total < ser * 2 + SimDuration::from_us(2),
        "latency implausibly large: {total}"
    );
}

#[test]
fn head_arrives_before_tail_cut_through() {
    // Long payload: head indication must arrive much earlier than complete.
    let topo = chain(2, 1);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    let route = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    let payload = 4096;
    let desc = desc_for(&route, payload, 1);
    let wire = desc.header.len() as u32 + payload + 1;
    net.inject(HostId(0), desc, wire, SimTime::ZERO, &mut q);
    let d = run_collect(&mut net, &mut q, 1_000_000);
    assert_eq!(d.heads.len(), 1);
    assert_eq!(d.completes.len(), 1);
    let head_t = d.heads[0].2;
    let done_t = d.completes[0].3;
    let stream = done_t - head_t;
    // The remaining bytes stream at link rate after the head: ≈ wire * 6.25ns.
    let expect = NetConfig::default()
        .link_bw
        .transfer_time(u64::from(payload));
    assert!(
        stream > expect / 2 && stream < expect * 2,
        "stream time {stream} vs expected ≈{expect}"
    );
}

#[test]
fn two_packets_same_path_are_serialized() {
    let topo = chain(2, 1);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    let route = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    for tag in 0..2 {
        let desc = desc_for(&route, 256, tag);
        let wire = desc.header.len() as u32 + 256 + 1;
        net.inject(HostId(0), desc, wire, SimTime::ZERO, &mut q);
    }
    let d = run_collect(&mut net, &mut q, 1_000_000);
    assert_eq!(d.completes.len(), 2);
    // In order, no interleaving: first complete precedes second head? No —
    // cut-through pipelining lets packet 2 start injecting after packet 1's
    // tail leaves the host, so completes are ordered and distinct.
    assert!(d.completes[0].3 <= d.completes[1].3);
    let p0 = net.retire(d.completes[0].1);
    let p1 = net.retire(d.completes[1].1);
    assert_eq!(p0.desc.tag, 0);
    assert_eq!(p1.desc.tag, 1);
}

#[test]
fn crossing_worms_contend_for_output_port() {
    // chain(3,2): two hosts per switch. Hosts at sw0 (h0, h1) both send to
    // hosts at sw2 (h4, h5): the sw0->sw1 link serializes them.
    let topo = chain(3, 2);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    // chain ports: 0 = left, 1 = right, 2..3 hosts.
    let r0 = SourceRoute::direct(
        HostId(0),
        HostId(4),
        vec![
            Hop::new(SwitchId(0), 1),
            Hop::new(SwitchId(1), 1),
            Hop::new(SwitchId(2), 2),
        ],
    );
    let r1 = SourceRoute::direct(
        HostId(1),
        HostId(5),
        vec![
            Hop::new(SwitchId(0), 1),
            Hop::new(SwitchId(1), 1),
            Hop::new(SwitchId(2), 3),
        ],
    );
    assert!(r0.is_well_formed(net.topology()));
    assert!(r1.is_well_formed(net.topology()));
    let payload = 2048;
    let d0 = desc_for(&r0, payload, 0);
    let w0 = d0.header.len() as u32 + payload + 1;
    let d1 = desc_for(&r1, payload, 1);
    let w1 = d1.header.len() as u32 + payload + 1;
    net.inject(HostId(0), d0, w0, SimTime::ZERO, &mut q);
    net.inject(HostId(1), d1, w1, SimTime::ZERO, &mut q);
    let d = run_collect(&mut net, &mut q, 10_000_000);
    assert_eq!(d.completes.len(), 2, "both worms eventually deliver");
    // The second delivery is roughly one serialization later than the first
    // (they share the sw0->sw1 and sw1->sw2 channels).
    let gap = d.completes[1].3 - d.completes[0].3;
    let ser = NetConfig::default()
        .link_bw
        .transfer_time(u64::from(payload));
    assert!(
        gap > ser / 2,
        "second worm should be delayed by contention (gap {gap}, ser {ser})"
    );
    assert!(
        net.total_paused() > SimDuration::ZERO,
        "Stop&Go must engage"
    );
}

#[test]
fn blocked_worm_backpressures_via_stop_and_go() {
    // Same contention scenario but verify slack buffers never exceed the
    // configured capacity (the debug_assert in on_rx_flit also guards this).
    let topo = chain(3, 2);
    let cfg = NetConfig::default();
    let mut net = Network::new(topo, cfg);
    let mut q = EventQueue::new();
    let mk = |src: u16, dst_port: u8, dst: u16| {
        SourceRoute::direct(
            HostId(src),
            HostId(dst),
            vec![
                Hop::new(SwitchId(0), 1),
                Hop::new(SwitchId(1), 1),
                Hop::new(SwitchId(2), dst_port),
            ],
        )
    };
    // Both aim at the SAME destination host so the final link serializes:
    // the later worm blocks mid-network and must hold in slack buffers.
    let r0 = mk(0, 2, 4);
    let r1 = mk(1, 2, 4);
    for (r, tag) in [(&r0, 0u64), (&r1, 1)] {
        let d = desc_for(r, 8192, tag);
        let w = d.header.len() as u32 + 8192 + 1;
        net.inject(HostId(tag as u16), d, w, SimTime::ZERO, &mut q);
    }
    let d = run_collect(&mut net, &mut q, 50_000_000);
    assert_eq!(d.completes.len(), 2);
    assert!(net.total_paused() > SimDuration::from_us(10));
}

#[test]
fn wormhole_deadlock_is_observable_with_cyclic_routes() {
    // The classic 4-ring cycle: each host sends two hops clockwise. With
    // long packets every worm holds its first link while waiting for the
    // next, and the network wedges — exactly the deadlock up*/down* (and
    // ITB segmentation) exists to prevent.
    let topo = ring(4, 1);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    let mk = |a: u16| {
        let b = (a + 2) % 4;
        let mut hops = Vec::new();
        let mut s = a;
        while s != b {
            hops.push(Hop::new(SwitchId(s), 1));
            s = (s + 1) % 4;
        }
        hops.push(Hop::new(SwitchId(b), 2));
        SourceRoute::direct(HostId(a), HostId(b), hops)
    };
    for a in 0..4u16 {
        let r = mk(a);
        assert!(r.is_well_formed(net.topology()));
        let d = desc_for(&r, 16384, u64::from(a));
        let w = d.header.len() as u32 + 16384 + 1;
        net.inject(HostId(a), d, w, SimTime::ZERO, &mut q);
    }
    let d = run_collect(&mut net, &mut q, 100_000_000);
    // The queue drained (no livelock) but nothing was delivered: deadlock.
    assert!(q.is_empty(), "event queue should drain on deadlock");
    assert_eq!(d.completes.len(), 0, "cyclic worms must deadlock");
    assert_eq!(net.parked_packets().len(), 4);
}

#[test]
fn fig6_ud_five_crossing_route_delivers() {
    let tb = fig6_testbed();
    let route = itb_routing::figures::fig8_ud_route(&tb);
    let mut net = Network::new(tb.topo.clone(), NetConfig::default());
    let mut q = EventQueue::new();
    let desc = desc_for(&route, 128, 9);
    let w = desc.header.len() as u32 + 128 + 1;
    let id = net.inject(tb.host1, desc, w, SimTime::ZERO, &mut q);
    let d = run_collect(&mut net, &mut q, 10_000_000);
    assert_eq!(d.completes.len(), 1);
    assert_eq!(d.completes[0].0, tb.host2);
    let st = net.retire(id);
    assert_eq!(st.route_bytes_consumed, 5, "five switch crossings");
}

#[test]
fn streaming_injection_waits_for_availability() {
    // Inject with zero available bytes; nothing moves until extended.
    let topo = chain(2, 1);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    let route = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    let desc = desc_for(&route, 100, 3);
    let w = desc.header.len() as u32 + 100 + 1;
    let id = net.inject(HostId(0), desc, 0, SimTime::ZERO, &mut q);
    assert!(q.is_empty(), "no bytes available, no events");
    // Release everything at t = 1us.
    net.extend_available(HostId(0), id, w, SimTime::from_us(1), &mut q);
    // Manually bump queue clock by scheduling from t=1us — extend_available
    // already scheduled TxDone events at >= 1us.
    let d = run_collect(&mut net, &mut q, 1_000_000);
    assert_eq!(d.completes.len(), 1);
    assert!(d.completes[0].3 >= SimTime::from_us(1));
}

#[test]
fn lan_ports_cost_more_fall_through() {
    // Same 2-crossing shape through SAN-SAN vs LAN-involved ports on the
    // fig6 testbed: host1 (LAN NIC) -> host2 (SAN) vs itb_host (LAN) path.
    // Simpler: compare fig6 h1->h2 (LAN in, SAN exits) against a pure-SAN
    // chain of the same crossing count and cable delays; the LAN path must
    // be slower.
    let tb = fig6_testbed();
    let route = itb_routing::figures::fig7_route(&tb);
    let mut net = Network::new(tb.topo.clone(), NetConfig::default());
    let mut q = EventQueue::new();
    let desc = desc_for(&route, 32, 1);
    let w = desc.header.len() as u32 + 32 + 1;
    net.inject(tb.host1, desc, w, SimTime::ZERO, &mut q);
    let d = run_collect(&mut net, &mut q, 100_000);
    let lan_t = d.completes[0].3;

    let topo2 = chain(2, 1); // all-SAN, same 2 crossings
    let mut net2 = Network::new(topo2, NetConfig::default());
    let mut q2 = EventQueue::new();
    let route2 = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    let desc2 = desc_for(&route2, 32, 1);
    let w2 = desc2.header.len() as u32 + 32 + 1;
    net2.inject(HostId(0), desc2, w2, SimTime::ZERO, &mut q2);
    let d2 = run_collect(&mut net2, &mut q2, 100_000);
    let san_t = d2.completes[0].3;
    assert!(
        lan_t > san_t,
        "LAN-involved path ({lan_t}) should exceed all-SAN path ({san_t})"
    );
}

#[test]
fn injection_complete_indication_fires() {
    let topo = chain(2, 1);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    let route = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    let desc = desc_for(&route, 64, 5);
    let w = desc.header.len() as u32 + 64 + 1;
    let id = net.inject(HostId(0), desc, w, SimTime::ZERO, &mut q);
    assert!(net.host_tx_busy(HostId(0)));
    let mut saw_injection_complete = false;
    while let Some((t, ev)) = q.pop() {
        net.handle(t, ev, &mut q);
        for ind in net.take_indications() {
            if let itb_net::HostIndication::InjectionComplete { host, packet } = ind {
                assert_eq!(host, HostId(0));
                assert_eq!(packet, id);
                saw_injection_complete = true;
                assert!(!net.host_tx_busy(HostId(0)));
            }
        }
    }
    assert!(saw_injection_complete);
}

#[test]
fn deterministic_under_identical_seeds() {
    // Two identical runs produce identical delivery timestamps.
    let mk_run = || {
        let topo = chain(3, 2);
        let mut net = Network::new(topo, NetConfig::default());
        let mut q = EventQueue::new();
        for (src, dst, port) in [(0u16, 4u16, 2u8), (1, 5, 3), (2, 0, 2)] {
            let hops = if src < 2 {
                vec![
                    Hop::new(SwitchId(0), 1),
                    Hop::new(SwitchId(1), 1),
                    Hop::new(SwitchId(2), port),
                ]
            } else {
                vec![Hop::new(SwitchId(1), 0), Hop::new(SwitchId(0), 2)]
            };
            let r = SourceRoute::direct(HostId(src), HostId(dst), hops);
            let d = desc_for(&r, 512, u64::from(src));
            let w = d.header.len() as u32 + 512 + 1;
            net.inject(HostId(src), d, w, SimTime::ZERO, &mut q);
        }
        run_collect(&mut net, &mut q, 10_000_000)
            .completes
            .iter()
            .map(|&(h, p, r, t)| (h, p, r, t))
            .collect::<Vec<_>>()
    };
    assert_eq!(mk_run(), mk_run());
}

#[test]
fn self_loop_cable_roundtrip() {
    // Route through the fig6 loop cable: out port 4 of sw1, back in port 5.
    let tb = fig6_testbed();
    let (_, h2_port) = tb.topo.host_attachment(tb.host2);
    let route = SourceRoute::direct(
        tb.host1,
        tb.host2,
        vec![
            Hop::new(tb.sw0, 0), // cable A to sw1
            Hop {
                switch: tb.sw1,
                out_port: tb
                    .topo
                    .link(tb.loop_cable)
                    .a
                    .port
                    .min(tb.topo.link(tb.loop_cable).b.port),
            },
            Hop {
                switch: tb.sw1,
                out_port: h2_port,
            },
        ],
    );
    assert!(route.is_well_formed(&tb.topo));
    let mut net = Network::new(tb.topo.clone(), NetConfig::default());
    let mut q = EventQueue::new();
    let desc = desc_for(&route, 64, 7);
    let w = desc.header.len() as u32 + 64 + 1;
    let id = net.inject(tb.host1, desc, w, SimTime::ZERO, &mut q);
    let d = run_collect(&mut net, &mut q, 1_000_000);
    assert_eq!(d.completes.len(), 1);
    let st = net.retire(id);
    assert_eq!(st.route_bytes_consumed, 3);
}

#[test]
fn port_kind_symmetric_paths_have_equal_latency() {
    // The two fig8 paths must cost the same through switches/links alone
    // (no NIC model here): the ITB path parked at the in-transit host is
    // not comparable end to end, but the UD path run twice must be stable,
    // and the port-kind profile equality is asserted in itb-routing. Here
    // we simply pin the UD 5-crossing latency for regression.
    let tb = fig6_testbed();
    let route = itb_routing::figures::fig8_ud_route(&tb);
    let once = || {
        let mut net = Network::new(tb.topo.clone(), NetConfig::default());
        let mut q = EventQueue::new();
        let desc = desc_for(&route, 0, 1);
        let w = desc.header.len() as u32 + 1;
        net.inject(tb.host1, desc, w, SimTime::ZERO, &mut q);
        run_collect(&mut net, &mut q, 100_000).completes[0].3
    };
    assert_eq!(once(), once());
}

#[test]
fn port_kinds_exist_in_testbed() {
    let tb = fig6_testbed();
    assert_eq!(tb.topo.host_nic_kind(tb.host1), PortKind::Lan);
}

#[test]
fn round_robin_arbitration_delivers_all() {
    // Same contention scenario as the FIFO test, under round-robin: all
    // worms deliver, determinism preserved.
    let topo = chain(3, 2);
    let cfg = NetConfig {
        arbitration: itb_net::config::Arbitration::RoundRobin,
        ..NetConfig::default()
    };
    let run = |cfg: NetConfig| {
        let mut net = Network::new(chain(3, 2), cfg);
        let mut q = EventQueue::new();
        for (src, port, tag) in [(0u16, 2u8, 0u64), (1, 3, 1)] {
            let r = SourceRoute::direct(
                HostId(src),
                HostId(4 + src),
                vec![
                    Hop::new(SwitchId(0), 1),
                    Hop::new(SwitchId(1), 1),
                    Hop::new(SwitchId(2), port),
                ],
            );
            let d = desc_for(&r, 2048, tag);
            let w = d.header.len() as u32 + 2048 + 1;
            net.inject(HostId(src), d, w, SimTime::ZERO, &mut q);
        }
        run_collect(&mut net, &mut q, 10_000_000).completes.len()
    };
    let _ = topo;
    assert_eq!(run(cfg), 2);
    assert_eq!(run(cfg), 2, "deterministic under round-robin too");
}

#[test]
fn host_rx_pause_stalls_and_resumes_delivery() {
    // Pause the receiving host's channel mid-stream: the packet stalls
    // (backpressure absorbs in slack buffers), then resumes on unpause.
    let topo = chain(2, 1);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    let route = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    let payload = 512;
    let desc = desc_for(&route, payload, 1);
    let w = desc.header.len() as u32 + payload + 1;
    net.inject(HostId(0), desc, w, SimTime::ZERO, &mut q);
    // Pause immediately; run 50 us; nothing may complete.
    net.set_host_rx_paused(HostId(1), true, SimTime::ZERO, &mut q);
    let mut d = Deliveries::default();
    while let Some(t) = q.peek_time() {
        if t > SimTime::from_us(50) {
            break;
        }
        let (now, ev) = q.pop().unwrap();
        net.handle(now, ev, &mut q);
        drain(&mut net, now, &mut d);
    }
    assert!(
        d.completes.is_empty(),
        "paused host must not complete reception"
    );
    // Resume; the packet lands.
    net.set_host_rx_paused(HostId(1), false, SimTime::from_us(50), &mut q);
    while let Some((now, ev)) = q.pop() {
        net.handle(now, ev, &mut q);
        drain(&mut net, now, &mut d);
    }
    assert_eq!(d.completes.len(), 1);
    assert!(d.completes[0].3 > SimTime::from_us(50));
}

#[test]
fn link_bytes_account_for_traffic() {
    let topo = chain(2, 1);
    let mut net = Network::new(topo, NetConfig::default());
    let mut q = EventQueue::new();
    let route = SourceRoute::direct(
        HostId(0),
        HostId(1),
        vec![Hop::new(SwitchId(0), 1), Hop::new(SwitchId(1), 2)],
    );
    let desc = desc_for(&route, 100, 1);
    let w = desc.header.len() as u32 + 100 + 1;
    net.inject(HostId(0), desc, w, SimTime::ZERO, &mut q);
    run(&mut net, &mut q, 1_000_000);
    let per_link = net.link_bytes();
    // chain(2,1): link0 = sw0-sw1, link1 = h0 uplink, link2 = h1 uplink.
    let total_fwd: u64 = per_link.iter().map(|&(_, f, r)| f + r).sum();
    // Wire bytes shrink by one per switch: w + (w-1) + (w-2).
    assert_eq!(
        total_fwd,
        u64::from(w) + u64::from(w - 1) + u64::from(w - 2)
    );
}

//! Deterministic graph partitioner for the parallel simulation engine.
//!
//! The conservative PDES engine (`itb_sim::par`) shards the cluster by
//! *switch*: each switch, its input ports, its outgoing cables and every
//! host attached to it belong to exactly one shard. Host links are never
//! cut (a host always shards with its switch), so the only cross-shard
//! traffic is switch-to-switch cables — whose propagation delay is the
//! engine's free lookahead bound.
//!
//! The partitioner must be a pure function of `(topology, shards, seed)`:
//! the parallel run's event order depends on the shard assignment, and the
//! determinism contract ("byte-identical to sequential") requires the
//! assignment itself to be reproducible. Everything here iterates in id
//! order or seeded-[`SimRng`] order; no hash-map iteration is involved.
//!
//! Algorithm: seeded-start BFS over the switch graph produces a locality
//! preserving visit order; the order is chunked into `shards` contiguous
//! runs of roughly equal weight (weight = 1 + attached hosts, a proxy for
//! event volume); a bounded greedy refinement pass then moves boundary
//! switches to a neighbouring shard when that strictly reduces the edge
//! cut without unbalancing or emptying a shard.

use crate::{HostId, LinkId, SwitchId, Topology};
use itb_sim::{narrow, SimDuration, SimRng};

/// A shard assignment of every switch and host, plus the cut summary the
/// parallel engine needs to derive its lookahead window.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Number of shards actually used (≤ requested; compact ids `0..shards`).
    pub shards: u32,
    /// Shard of each switch, indexed by `SwitchId::idx()`.
    pub shard_of_switch: Vec<u32>,
    /// Shard of each host, indexed by `HostId::idx()` (always the shard of
    /// the attachment switch).
    pub shard_of_host: Vec<u32>,
    /// Every switch-to-switch link whose endpoints land in different shards,
    /// in link-id order.
    pub cut_links: Vec<LinkId>,
    /// `cut_links.len()` — the metric the refinement pass minimizes.
    pub edge_cut: usize,
    /// Minimum propagation delay over the cut links (`None` when nothing is
    /// cut, i.e. a single shard). Cross-shard events lag the sender by at
    /// least this plus the first flit's serialization time.
    pub min_cut_propagation: Option<SimDuration>,
}

impl Partition {
    /// Shard owning switch `s`.
    #[inline]
    pub fn shard_of(&self, s: SwitchId) -> u32 {
        self.shard_of_switch[s.idx()]
    }

    /// Shard owning host `h`.
    #[inline]
    pub fn host_shard(&self, h: HostId) -> u32 {
        self.shard_of_host[h.idx()]
    }

    /// Per-shard switch weight (1 + attached hosts), for balance reporting.
    pub fn shard_weights(&self, topo: &Topology) -> Vec<u64> {
        let mut w = vec![0u64; self.shards as usize];
        for s in topo.switch_ids() {
            w[self.shard_of(s) as usize] += switch_weight(topo, s);
        }
        w
    }
}

/// Event-volume proxy for one switch: itself plus its attached hosts.
fn switch_weight(topo: &Topology, s: SwitchId) -> u64 {
    1 + topo.hosts_at(s).len() as u64
}

/// Modelling fidelity of one region in the hybrid flow/packet engine.
///
/// `Packet` regions simulate every flit through the cut-through switch model
/// (full contention, ITB ejection/reinjection, CRC checks). `Flow` regions
/// replace per-packet events with a max-min fair per-flow rate allocation
/// advanced in coarse rounds — orders of magnitude fewer events, no
/// per-packet state, but no transient contention either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionFidelity {
    /// Full flit-level fidelity: every packet traverses the switch model.
    Packet,
    /// Flow-level fidelity: analytic max-min rate allocation, coarse rounds.
    Flow,
}

/// A [`Partition`] with a fidelity assignment per region (shard).
///
/// The hybrid engine consults the plan when a message is submitted: if every
/// switch on its route lies in `Flow` regions (and the route crosses no ITB
/// hop), the message is carried by the flow engine; otherwise it takes the
/// packet path. Regions can only *escalate* (`Flow` → `Packet`) at runtime —
/// de-escalation would require reconstructing in-flight per-packet state from
/// aggregate rates, which cannot be done deterministically.
#[derive(Debug, Clone)]
pub struct RegionPlan {
    /// The underlying region decomposition (regions == shards).
    pub part: Partition,
    /// Fidelity of each region, indexed by shard id.
    pub fidelity: Vec<RegionFidelity>,
}

impl RegionPlan {
    /// Plan with every region at full packet fidelity. The hybrid engine is
    /// byte-identical to the classic sequential engine under this plan.
    pub fn all_packet(part: Partition) -> Self {
        let n = part.shards as usize;
        Self {
            part,
            fidelity: vec![RegionFidelity::Packet; n],
        }
    }

    /// Plan with every region at flow-level fidelity.
    pub fn all_flow(part: Partition) -> Self {
        let n = part.shards as usize;
        Self {
            part,
            fidelity: vec![RegionFidelity::Flow; n],
        }
    }

    /// Fidelity of the region owning switch `s`.
    #[inline]
    pub fn fidelity_of_switch(&self, s: SwitchId) -> RegionFidelity {
        self.fidelity[self.part.shard_of(s) as usize]
    }

    /// Escalate region `region` to packet fidelity. Returns `true` when the
    /// call changed the plan (the region was at `Flow`).
    pub fn escalate(&mut self, region: u32) -> bool {
        let slot = &mut self.fidelity[region as usize];
        if *slot == RegionFidelity::Flow {
            *slot = RegionFidelity::Packet;
            true
        } else {
            false
        }
    }

    /// True when every region is at packet fidelity (the hybrid engine can
    /// skip its flow machinery entirely).
    pub fn is_all_packet(&self) -> bool {
        self.fidelity.iter().all(|&f| f == RegionFidelity::Packet)
    }

    /// Number of regions currently at flow fidelity.
    pub fn flow_regions(&self) -> usize {
        self.fidelity
            .iter()
            .filter(|&&f| f == RegionFidelity::Flow)
            .count()
    }
}

/// Partition `topo` into at most `shards` shards, deterministically in
/// `(topo, shards, seed)`.
///
/// `shards` is clamped to `[1, num_switches]`; every produced shard owns at
/// least one switch.
///
/// # Panics
/// Panics if the topology has no switches.
pub fn partition(topo: &Topology, shards: usize, seed: u64) -> Partition {
    let n = topo.num_switches();
    assert!(n > 0, "cannot partition a topology with no switches");
    let k = shards.clamp(1, n);

    let weights: Vec<u64> = topo.switch_ids().map(|s| switch_weight(topo, s)).collect();
    let total: u64 = weights.iter().sum();

    // Seeded-start BFS visit order (locality-preserving, deterministic:
    // neighbour iteration follows port order).
    let mut rng = SimRng::new(seed ^ 0x5048_4152_5449_5431); // "PHARTIT1"
    let start: usize = narrow(rng.below(n as u64));
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut frontier = std::collections::VecDeque::new();
    frontier.push_back(start);
    seen[start] = true;
    while let Some(u) = frontier.pop_front() {
        order.push(u);
        for (_, _, v) in topo.switch_neighbors(SwitchId(narrow(u))) {
            if !seen[v.idx()] {
                seen[v.idx()] = true;
                frontier.push_back(v.idx());
            }
        }
        // Validated topologies are connected, but stay total anyway: pull in
        // the lowest unseen switch if BFS stalls.
        if frontier.is_empty() && order.len() < n {
            if let Some(u) = seen.iter().position(|&s| !s) {
                seen[u] = true;
                frontier.push_back(u);
            }
        }
    }

    // Chunk the BFS order into k contiguous runs of ~equal weight, re-aiming
    // the target from what remains before each run so late shards never
    // starve.
    let mut shard_of_switch = vec![0u32; n];
    let mut cur: u32 = 0;
    let mut acc: u64 = 0;
    let mut remaining = total;
    let mut target = remaining.div_ceil(k as u64);
    for (i, &u) in order.iter().enumerate() {
        let more_switches = n - i; // switches not yet assigned (incl. u)
        let shards_left = k as u64 - u64::from(cur);
        // Open a new shard when the current one met its target — unless
        // every remaining switch is needed to keep later shards non-empty.
        if acc >= target && u64::from(cur) + 1 < k as u64 && more_switches as u64 > shards_left - 1
        {
            cur += 1;
            acc = 0;
            target = remaining.div_ceil(k as u64 - u64::from(cur));
        }
        shard_of_switch[u] = cur;
        acc += weights[u];
        remaining -= weights[u];
    }
    let used = cur + 1;

    // Greedy boundary refinement: move a switch to a neighbouring shard when
    // that strictly cuts fewer links, stays under the balance ceiling and
    // leaves no shard empty. Two passes in switch-id order (deterministic).
    let mut shard_sizes = vec![0usize; used as usize];
    let mut shard_weights = vec![0u64; used as usize];
    for u in 0..n {
        shard_sizes[shard_of_switch[u] as usize] += 1;
        shard_weights[shard_of_switch[u] as usize] += weights[u];
    }
    // Ceiling: 25% over the ideal per-shard weight (integer arithmetic).
    let max_load = (total * 5).div_ceil(4 * u64::from(used));
    for _pass in 0..2 {
        for u in 0..n {
            let a = shard_of_switch[u];
            if shard_sizes[a as usize] <= 1 {
                continue; // would empty shard `a`
            }
            // Count links from `u` into each adjacent shard (self-loops are
            // never cut; skip them).
            let mut ties: Vec<(u32, usize)> = Vec::new();
            let mut to_a = 0usize;
            for (_, _, v) in topo.switch_neighbors(SwitchId(narrow(u))) {
                if v.idx() == u {
                    continue;
                }
                let b = shard_of_switch[v.idx()];
                if b == a {
                    to_a += 1;
                } else if let Some(t) = ties.iter_mut().find(|t| t.0 == b) {
                    t.1 += 1;
                } else {
                    ties.push((b, 1));
                }
            }
            // Best candidate: most links, lowest shard id on ties (the push
            // order above already visits lower ports first, but sort anyway
            // for an explicit deterministic rule).
            ties.sort_by_key(|&(b, cnt)| (std::cmp::Reverse(cnt), b));
            if let Some(&(b, cnt)) = ties.first() {
                if cnt > to_a && shard_weights[b as usize] + weights[u] <= max_load {
                    shard_of_switch[u] = b;
                    shard_sizes[a as usize] -= 1;
                    shard_sizes[b as usize] += 1;
                    shard_weights[a as usize] -= weights[u];
                    shard_weights[b as usize] += weights[u];
                }
            }
        }
    }

    // Hosts follow their attachment switch; host links are never cut.
    let shard_of_host: Vec<u32> = topo
        .host_ids()
        .map(|h| shard_of_switch[topo.host_attachment(h).0.idx()])
        .collect();

    // Cut summary, in link-id order.
    let mut cut_links = Vec::new();
    let mut min_cut_propagation: Option<SimDuration> = None;
    for lid in topo.link_ids() {
        let link = topo.link(lid);
        let (Some(sa), Some(sb)) = (link.a.node.as_switch(), link.b.node.as_switch()) else {
            continue; // host link: never cut
        };
        if shard_of_switch[sa.idx()] != shard_of_switch[sb.idx()] {
            cut_links.push(lid);
            min_cut_propagation = Some(match min_cut_propagation {
                Some(m) if m <= link.propagation => m,
                _ => link.propagation,
            });
        }
    }

    Partition {
        shards: used,
        edge_cut: cut_links.len(),
        shard_of_switch,
        shard_of_host,
        cut_links,
        min_cut_propagation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn single_shard_has_no_cut() {
        let topo = builders::chain(8, 2);
        let p = partition(&topo, 1, 42);
        assert_eq!(p.shards, 1);
        assert_eq!(p.edge_cut, 0);
        assert!(p.cut_links.is_empty());
        assert!(p.min_cut_propagation.is_none());
        assert!(p.shard_of_switch.iter().all(|&s| s == 0));
        assert!(p.shard_of_host.iter().all(|&s| s == 0));
    }

    #[test]
    fn chain_two_shards_cuts_one_link() {
        let topo = builders::chain(8, 1);
        let p = partition(&topo, 2, 7);
        assert_eq!(p.shards, 2);
        assert_eq!(p.edge_cut, 1, "a chain split in two cuts exactly one cable");
        assert!(p.min_cut_propagation.is_some());
    }

    #[test]
    fn every_switch_and_host_assigned_within_bounds() {
        let spec = builders::IrregularSpec::evaluation_default(16, 99);
        let topo = builders::random_irregular(&spec);
        let p = partition(&topo, 4, 3);
        assert!(p.shards <= 4 && p.shards >= 1);
        assert_eq!(p.shard_of_switch.len(), topo.num_switches());
        assert_eq!(p.shard_of_host.len(), topo.num_hosts());
        assert!(p.shard_of_switch.iter().all(|&s| s < p.shards));
        // Hosts shard with their attachment switch.
        for h in topo.host_ids() {
            let (s, _) = topo.host_attachment(h);
            assert_eq!(p.host_shard(h), p.shard_of(s));
        }
        // Every shard owns at least one switch.
        let mut seen = vec![false; p.shards as usize];
        for &s in &p.shard_of_switch {
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_seed_or_shards() {
        let spec = builders::IrregularSpec::evaluation_default(32, 5);
        let topo = builders::random_irregular(&spec);
        let a = partition(&topo, 4, 11);
        let b = partition(&topo, 4, 11);
        assert_eq!(a.shard_of_switch, b.shard_of_switch);
        assert_eq!(a.shard_of_host, b.shard_of_host);
        assert_eq!(a.cut_links, b.cut_links);
        let c = partition(&topo, 2, 11);
        assert!(c.shards <= 2);
    }

    #[test]
    fn shards_clamped_to_switch_count() {
        let topo = builders::chain(3, 1);
        let p = partition(&topo, 16, 0);
        assert!(p.shards <= 3);
        let mut seen = vec![false; p.shards as usize];
        for &s in &p.shard_of_switch {
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "compact shard ids, none empty");
    }

    #[test]
    fn cut_propagation_never_below_global_min_link_latency() {
        let spec = builders::IrregularSpec::evaluation_default(24, 77);
        let topo = builders::random_irregular(&spec);
        let p = partition(&topo, 4, 1);
        if let Some(m) = p.min_cut_propagation {
            let global_min = topo
                .link_ids()
                .map(|l| topo.link(l).propagation)
                .min()
                .expect("topology has links");
            assert!(m >= global_min);
        }
    }

    #[test]
    fn region_plan_escalation_is_one_way() {
        let spec = builders::IrregularSpec::evaluation_default(16, 4);
        let topo = builders::random_irregular(&spec);
        let mut plan = RegionPlan::all_flow(partition(&topo, 4, 9));
        assert!(!plan.is_all_packet());
        assert_eq!(plan.flow_regions(), plan.part.shards as usize);
        for s in topo.switch_ids() {
            assert_eq!(plan.fidelity_of_switch(s), RegionFidelity::Flow);
        }
        assert!(plan.escalate(0), "first escalation flips the region");
        assert!(!plan.escalate(0), "already at packet: no change");
        for s in topo.switch_ids() {
            let expect = if plan.part.shard_of(s) == 0 {
                RegionFidelity::Packet
            } else {
                RegionFidelity::Flow
            };
            assert_eq!(plan.fidelity_of_switch(s), expect);
        }
        for r in 1..plan.part.shards {
            plan.escalate(r);
        }
        assert!(plan.is_all_packet());
        assert_eq!(plan.flow_regions(), 0);

        let all_pkt = RegionPlan::all_packet(partition(&topo, 4, 9));
        assert!(all_pkt.is_all_packet());
    }

    #[test]
    fn weights_roughly_balanced() {
        let spec = builders::IrregularSpec::evaluation_default(64, 2);
        let topo = builders::random_irregular(&spec);
        let p = partition(&topo, 4, 9);
        let w = p.shard_weights(&topo);
        let total: u64 = w.iter().sum();
        let ceiling = (total * 5).div_ceil(4 * u64::from(p.shards)) + 5;
        for &x in &w {
            assert!(
                x <= ceiling,
                "shard weight {x} over ceiling {ceiling}: {w:?}"
            );
        }
    }
}

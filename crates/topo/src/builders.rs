//! Topology constructors: the paper's testbed and synthetic networks.

use crate::graph::Topology;
use crate::ids::{HostId, LinkId, PortKind, SwitchId};
use itb_sim::{narrow, SimRng};

/// Cable delay defaults. SAN cables are short (≈3 m), LAN cables long
/// (≈10 m); at ~5 ns/m these give the propagation delays below.
pub mod cable {
    use itb_sim::SimDuration;
    /// One-way delay of a SAN cable.
    pub const SAN: SimDuration = SimDuration::from_ns(15);
    /// One-way delay of a LAN cable.
    pub const LAN: SimDuration = SimDuration::from_ns(50);
}

/// Port layout of the M2FM-SW8 switch in the testbed: ports 0–3 SAN,
/// ports 4–7 LAN.
pub fn m2fm_sw8_ports() -> Vec<PortKind> {
    let mut v = vec![PortKind::San; 4];
    v.extend([PortKind::Lan; 4]);
    v
}

/// The paper's Figure 6 testbed, wired so both evaluation paths exist:
///
/// * **switch 0** (the paper's "switch 1"): `host1` (LAN NIC, M2L) on LAN
///   port 4, the in-transit host (LAN NIC, M2L) on LAN port 5; SAN cables
///   `cable_a` (port 0) and `cable_b` (port 1) to switch 1.
/// * **switch 1** (the paper's "switch 2"): `host2` (SAN NIC, M2M) on SAN
///   port 2; a LAN **loop cable** joining its ports 4 and 5 (the loop the
///   paper adds so the plain up\*/down\* path also crosses 5 switches).
///
/// The two measured paths (constructed in `itb-routing::figures`):
///
/// * UD (5 crossings): h1 → sw0 → A → sw1 → loop → sw1 → A′ → sw0 → B → sw1 → h2
/// * ITB (5 crossings): h1 → sw0 → A → sw1 → A′ → sw0 → *in-transit host* →
///   sw0 → B → sw1 → h2
///
/// Both traverse the same multiset of (input-kind, output-kind) port pairs,
/// mirroring the paper's care that switch latency differences cancel.
#[derive(Debug, Clone)]
pub struct Fig6Testbed {
    /// The wired topology.
    pub topo: Topology,
    /// Sender/receiver of the ping-pong (LAN NIC).
    pub host1: HostId,
    /// The other ping-pong end (SAN NIC).
    pub host2: HostId,
    /// The host used as in-transit buffer (LAN NIC).
    pub itb_host: HostId,
    /// First inter-switch SAN cable.
    pub cable_a: LinkId,
    /// Second inter-switch SAN cable.
    pub cable_b: LinkId,
    /// The loop cable on switch 1 (LAN ports 4–5).
    pub loop_cable: LinkId,
    /// Switch next to host1 and the in-transit host.
    pub sw0: SwitchId,
    /// Switch next to host2, carrying the loop cable.
    pub sw1: SwitchId,
}

/// Build the Figure 6 testbed.
///
/// ```
/// let tb = itb_topo::builders::fig6_testbed();
/// assert_eq!(tb.topo.num_switches(), 2);
/// assert_eq!(tb.topo.num_hosts(), 3);
/// assert!(tb.topo.link(tb.loop_cable).is_self_loop());
/// ```
pub fn fig6_testbed() -> Fig6Testbed {
    let mut t = Topology::new();
    let sw0 = t.add_switch(m2fm_sw8_ports());
    let sw1 = t.add_switch(m2fm_sw8_ports());
    let host1 = t.add_host(PortKind::Lan);
    let itb_host = t.add_host(PortKind::Lan);
    let host2 = t.add_host(PortKind::San);

    let cable_a = t
        .connect_switches(sw0, 0, sw1, 0, cable::SAN)
        // detlint::allow(S001, the testbed wiring is static and in range)
        .expect("static wiring is in range");
    let cable_b = t
        .connect_switches(sw0, 1, sw1, 1, cable::SAN)
        // detlint::allow(S001, the testbed wiring is static and in range)
        .expect("static wiring is in range");
    let loop_cable = t
        .connect_switches(sw1, 4, sw1, 5, cable::LAN)
        // detlint::allow(S001, the testbed wiring is static and in range)
        .expect("static wiring is in range");
    t.connect_host(host1, sw0, 4, cable::LAN)
        // detlint::allow(S001, the testbed wiring is static and in range)
        .expect("static wiring is in range");
    t.connect_host(itb_host, sw0, 5, cable::LAN)
        // detlint::allow(S001, the testbed wiring is static and in range)
        .expect("static wiring is in range");
    t.connect_host(host2, sw1, 2, cable::SAN)
        // detlint::allow(S001, the testbed wiring is static and in range)
        .expect("static wiring is in range");
    // detlint::allow(S001, validate re-checks the finished testbed graph)
    t.validate().expect("testbed wiring is static and valid");

    Fig6Testbed {
        topo: t,
        host1,
        host2,
        itb_host,
        cable_a,
        cable_b,
        loop_cable,
        sw0,
        sw1,
    }
}

/// A linear chain of `n` switches (SAN cabling) with `hosts_per_switch`
/// SAN-NIC hosts on each. Used by the multi-ITB ablation.
pub fn chain(n: usize, hosts_per_switch: usize) -> Topology {
    assert!(n >= 1);
    let ports = 2 + hosts_per_switch; // left, right, hosts
    let mut t = Topology::new();
    let switches: Vec<_> = (0..n).map(|_| t.add_switch_uniform(ports)).collect();
    for w in switches.windows(2) {
        t.connect_switches(w[0], 1, w[1], 0, cable::SAN)
            // detlint::allow(S001, chain wiring is static and in range)
            .expect("static wiring is in range");
    }
    for &s in &switches {
        for i in 0..hosts_per_switch {
            let h = t.add_host(PortKind::San);
            t.connect_host(h, s, narrow(2 + i), cable::SAN)
                // detlint::allow(S001, chain wiring is static and in range)
                .expect("static wiring is in range");
        }
    }
    // detlint::allow(S001, validate re-checks the finished chain graph)
    t.validate().expect("chain wiring is valid");
    t
}

/// A ring of `n ≥ 3` switches with `hosts_per_switch` hosts each. Rings are
/// the smallest topologies where up\*/down\* forbids some minimal paths, so
/// they exercise the ITB planner with a predictable structure.
pub fn ring(n: usize, hosts_per_switch: usize) -> Topology {
    assert!(n >= 3);
    let ports = 2 + hosts_per_switch;
    let mut t = Topology::new();
    let switches: Vec<_> = (0..n).map(|_| t.add_switch_uniform(ports)).collect();
    for i in 0..n {
        let j = (i + 1) % n;
        t.connect_switches(switches[i], 1, switches[j], 0, cable::SAN)
            // detlint::allow(S001, ring wiring is static and in range)
            .expect("static wiring is in range");
    }
    for &s in &switches {
        for i in 0..hosts_per_switch {
            let h = t.add_host(PortKind::San);
            t.connect_host(h, s, narrow(2 + i), cable::SAN)
                // detlint::allow(S001, ring wiring is static and in range)
                .expect("static wiring is in range");
        }
    }
    // detlint::allow(S001, validate re-checks the finished ring graph)
    t.validate().expect("ring wiring is valid");
    t
}

/// A star: one center switch cabled to `n` leaf switches, each carrying
/// `hosts_per_switch` hosts (the center has none). The canonical "every
/// route crosses the root" stress shape.
pub fn star(leaves: usize, hosts_per_switch: usize) -> Topology {
    assert!(leaves >= 2);
    let mut t = Topology::new();
    let center = t.add_switch_uniform(leaves);
    let leaf_ports = 1 + hosts_per_switch;
    for i in 0..leaves {
        let leaf = t.add_switch_uniform(leaf_ports);
        t.connect_switches(center, narrow(i), leaf, 0, cable::SAN)
            // detlint::allow(S001, star wiring is static and in range)
            .expect("static wiring is in range");
        for j in 0..hosts_per_switch {
            let h = t.add_host(PortKind::San);
            t.connect_host(h, leaf, narrow(1 + j), cable::SAN)
                // detlint::allow(S001, star wiring is static and in range)
                .expect("static wiring is in range");
        }
    }
    // detlint::allow(S001, validate re-checks the finished star graph)
    t.validate().expect("star wiring is valid");
    t
}

/// A dumbbell: two `k`-switch cliques joined by a single bridge cable —
/// the classic bisection bottleneck.
pub fn dumbbell(k: usize, hosts_per_switch: usize) -> Topology {
    assert!(k >= 2);
    let ports = (k - 1) + 1 + hosts_per_switch; // clique + bridge + hosts
    let mut t = Topology::new();
    let switches: Vec<_> = (0..2 * k).map(|_| t.add_switch_uniform(ports)).collect();
    let mut next_port = vec![0u8; 2 * k];
    for side in 0..2 {
        let base = side * k;
        for i in 0..k {
            for j in (i + 1)..k {
                let (a, b) = (base + i, base + j);
                let (pa, pb) = (next_port[a], next_port[b]);
                next_port[a] += 1;
                next_port[b] += 1;
                t.connect_switches(switches[a], pa, switches[b], pb, cable::SAN)
                    // detlint::allow(S001, dumbbell wiring is static and in range)
                    .expect("static wiring is in range");
            }
        }
    }
    // The bridge.
    let (pa, pb) = (next_port[0], next_port[k]);
    t.connect_switches(switches[0], pa, switches[k], pb, cable::SAN)
        // detlint::allow(S001, dumbbell wiring is static and in range)
        .expect("static wiring is in range");
    next_port[0] += 1;
    next_port[k] += 1;
    for (i, &s) in switches.iter().enumerate() {
        for _ in 0..hosts_per_switch {
            let h = t.add_host(PortKind::San);
            t.connect_host(h, s, next_port[i], cable::SAN)
                // detlint::allow(S001, dumbbell wiring is static and in range)
                .expect("static wiring is in range");
            next_port[i] += 1;
        }
    }
    // detlint::allow(S001, validate re-checks the finished dumbbell graph)
    t.validate().expect("dumbbell wiring is valid");
    t
}

/// A 2-D torus of `rows × cols` switches (each with `hosts_per_switch`
/// hosts) — a regular topology treated as irregular by up\*/down\*, rich in
/// forbidden turns.
pub fn torus2d(rows: usize, cols: usize, hosts_per_switch: usize) -> Topology {
    assert!(rows >= 2 && cols >= 2);
    // Ports: 0 = +col (east), 1 = -col in (west), 2 = +row (south),
    // 3 = -row in (north), 4.. hosts.
    let ports = 4 + hosts_per_switch;
    let mut t = Topology::new();
    let idx = |r: usize, c: usize| r * cols + c;
    let switches: Vec<_> = (0..rows * cols)
        .map(|_| t.add_switch_uniform(ports))
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            let east = idx(r, (c + 1) % cols);
            t.connect_switches(switches[idx(r, c)], 0, switches[east], 1, cable::SAN)
                // detlint::allow(S001, torus wiring is static and in range)
                .expect("static wiring is in range");
            let south = idx((r + 1) % rows, c);
            t.connect_switches(switches[idx(r, c)], 2, switches[south], 3, cable::SAN)
                // detlint::allow(S001, torus wiring is static and in range)
                .expect("static wiring is in range");
        }
    }
    for &s in &switches {
        for j in 0..hosts_per_switch {
            let h = t.add_host(PortKind::San);
            t.connect_host(h, s, narrow(4 + j), cable::SAN)
                // detlint::allow(S001, torus wiring is static and in range)
                .expect("static wiring is in range");
        }
    }
    // detlint::allow(S001, validate re-checks the finished torus graph)
    t.validate().expect("torus wiring is valid");
    t
}

/// A three-tier `k`-ary fat tree (Clos folded onto itself), the canonical
/// scalable data-center fabric: `(k/2)²` core switches, `k` pods of `k/2`
/// aggregation plus `k/2` edge switches, and `k³/4` hosts (`k/2` per edge
/// switch). Every switch has exactly `k` ports. Entirely deterministic —
/// no RNG — so the same `k` always wires the identical topology.
///
/// Switch numbering: cores first (`(k/2)²`), then per pod its `k/2`
/// aggregation switches followed by its `k/2` edge switches. Core switch
/// `i·(k/2)+j` serves aggregation index `i` of every pod on its port `p`
/// (one per pod `p`); edge uplinks round-robin across the pod's
/// aggregation layer.
///
/// # Panics
/// Panics unless `k` is even and at least 2.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat tree arity must be even and >= 2"
    );
    let half = k / 2;
    let mut t = Topology::new();
    // Cores: (k/2)^2 switches with k ports, one per pod.
    let cores: Vec<_> = (0..half * half).map(|_| t.add_switch_uniform(k)).collect();
    // Pods: k/2 aggregation + k/2 edge switches each, k ports each.
    let mut aggs: Vec<Vec<SwitchId>> = Vec::with_capacity(k);
    let mut edges: Vec<Vec<SwitchId>> = Vec::with_capacity(k);
    for _pod in 0..k {
        aggs.push((0..half).map(|_| t.add_switch_uniform(k)).collect());
        edges.push((0..half).map(|_| t.add_switch_uniform(k)).collect());
    }
    for pod in 0..k {
        for (e, &edge) in edges[pod].iter().enumerate() {
            // Hosts on the edge switch's low ports.
            for p in 0..half {
                let h = t.add_host(PortKind::San);
                t.connect_host(h, edge, narrow(p), cable::SAN)
                    // detlint::allow(S001, fat-tree port accounting is static and in range)
                    .expect("static wiring is in range");
            }
            // Uplinks: edge port k/2+a to aggregation a's port e.
            for (a, &agg) in aggs[pod].iter().enumerate() {
                t.connect_switches(edge, narrow(half + a), agg, narrow(e), cable::SAN)
                    // detlint::allow(S001, fat-tree port accounting is static and in range)
                    .expect("static wiring is in range");
            }
        }
        // Aggregation a's uplinks: port k/2+j to core a*(k/2)+j, which
        // receives this pod on its port `pod`.
        for (a, &agg) in aggs[pod].iter().enumerate() {
            for j in 0..half {
                t.connect_switches(
                    agg,
                    narrow(half + j),
                    cores[a * half + j],
                    narrow(pod),
                    cable::SAN,
                )
                // detlint::allow(S001, fat-tree port accounting is static and in range)
                .expect("static wiring is in range");
            }
        }
    }
    // detlint::allow(S001, validate re-checks the finished fat-tree graph)
    t.validate().expect("fat-tree wiring is valid");
    t
}

/// A two-tier leaf–spine Clos: every leaf cables one uplink to every spine
/// (round-robin port assignment), hosts hang off the leaves. The flattened
/// building block of [`fat_tree`], parameterized independently so oversubscribed
/// (`spines < hosts_per_leaf`) and rearrangeably non-blocking
/// (`spines >= hosts_per_leaf`) fabrics are both one call away. Entirely
/// deterministic — no RNG.
///
/// Switch numbering: spines first, then leaves. Leaf `l` uses ports
/// `0..hosts_per_leaf` for hosts and port `hosts_per_leaf + s` for spine
/// `s`, which receives leaf `l` on its port `l`.
///
/// # Panics
/// Panics unless there are at least 2 leaves, 1 spine and 1 host per leaf.
pub fn clos(leaves: usize, spines: usize, hosts_per_leaf: usize) -> Topology {
    assert!(leaves >= 2, "need at least two leaves");
    assert!(spines >= 1, "need at least one spine");
    assert!(hosts_per_leaf >= 1, "need at least one host per leaf");
    let mut t = Topology::new();
    let spine_ids: Vec<_> = (0..spines).map(|_| t.add_switch_uniform(leaves)).collect();
    let leaf_ports = hosts_per_leaf + spines;
    for l in 0..leaves {
        let leaf = t.add_switch_uniform(leaf_ports);
        for p in 0..hosts_per_leaf {
            let h = t.add_host(PortKind::San);
            t.connect_host(h, leaf, narrow(p), cable::SAN)
                // detlint::allow(S001, leaf-spine port accounting is static and in range)
                .expect("static wiring is in range");
        }
        for (s, &spine) in spine_ids.iter().enumerate() {
            t.connect_switches(
                leaf,
                narrow(hosts_per_leaf + s),
                spine,
                narrow(l),
                cable::SAN,
            )
            // detlint::allow(S001, leaf-spine port accounting is static and in range)
            .expect("static wiring is in range");
        }
    }
    // detlint::allow(S001, validate re-checks the finished leaf-spine graph)
    t.validate().expect("leaf-spine wiring is valid");
    t
}

/// Canonical seed of the [`irregular1024`] planet-scale preset (recorded
/// like [`IRREGULAR64_SEED`]; deliberately equal to the deadlock audit's
/// fresh-fabric seed so the hybrid gauntlet exercises wiring the static
/// audit has already proven deadlock-free — but with the evaluation host
/// density, see [`irregular_big`]).
pub const IRREGULAR1024_SEED: u64 = 1024;

/// A big seeded irregular in the exact style of [`irregular64`]:
/// [`IrregularSpec::evaluation_default`] geometry (8-port switches, 4
/// hosts each) at an arbitrary switch count. The hybrid flow/packet
/// engine's scaling presets layer on this.
pub fn irregular_big(switches: usize, seed: u64) -> Topology {
    random_irregular(&IrregularSpec::evaluation_default(switches, seed))
}

/// The 1024-switch, 4096-host irregular preset used by the
/// `large_load_1024sw` hybrid gauntlet scenario: [`irregular_big`] at the
/// recorded [`IRREGULAR1024_SEED`].
pub fn irregular1024() -> Topology {
    irregular_big(1024, IRREGULAR1024_SEED)
}

/// Parameters for [`random_irregular`].
#[derive(Debug, Clone)]
pub struct IrregularSpec {
    /// Number of switches.
    pub switches: usize,
    /// Ports per switch (the evaluation papers use 8).
    pub ports_per_switch: usize,
    /// Hosts attached to every switch.
    pub hosts_per_switch: usize,
    /// Seed for the wiring RNG.
    pub seed: u64,
}

impl IrregularSpec {
    /// The configuration used by the motivation experiments: 8-port
    /// switches, 4 hosts each (leaving 4 ports for switch wiring), matching
    /// the simulation setup of the papers this one builds on.
    pub fn evaluation_default(switches: usize, seed: u64) -> Self {
        IrregularSpec {
            switches,
            ports_per_switch: 8,
            hosts_per_switch: 4,
            seed,
        }
    }
}

/// Canonical seed of the [`irregular64`] scaling preset, recorded so the
/// benchmark and any external reproduction build the identical wiring.
pub const IRREGULAR64_SEED: u64 = 64;

/// The 64-switch irregular network used by the parallel-scaling benchmark
/// (`large_load_64sw_par`): [`IrregularSpec::evaluation_default`] geometry
/// (8-port switches, 4 hosts each → 256 hosts) built from a fixed, recorded
/// seed. A preset rather than an ad-hoc call site so every consumer —
/// gauntlet, tests, docs — means the same reproducible topology.
pub fn irregular64() -> Topology {
    random_irregular(&IrregularSpec::evaluation_default(64, IRREGULAR64_SEED))
}

/// Generate a random irregular network in the style of the ITB evaluation
/// papers: hosts fill the first ports of each switch, then the remaining
/// ports are cabled switch-to-switch at random — first a random spanning
/// tree (guaranteeing connectivity), then extra random cables until ports
/// run out. No self-loops, at most one cable per switch pair.
pub fn random_irregular(spec: &IrregularSpec) -> Topology {
    assert!(spec.switches >= 2, "need at least two switches");
    assert!(
        spec.hosts_per_switch < spec.ports_per_switch,
        "no ports left for switch wiring"
    );
    let mut rng = SimRng::new(spec.seed);
    let mut t = Topology::new();
    let switches: Vec<_> = (0..spec.switches)
        .map(|_| t.add_switch_uniform(spec.ports_per_switch))
        .collect();

    // Hosts take the low ports.
    for &s in &switches {
        for i in 0..spec.hosts_per_switch {
            let h = t.add_host(PortKind::San);
            t.connect_host(h, s, narrow(i), cable::SAN)
                // detlint::allow(S001, generator port accounting keeps host ports free)
                .expect("generator keeps a port free");
        }
    }

    let mut free_ports: Vec<u8> =
        vec![narrow(spec.ports_per_switch - spec.hosts_per_switch); spec.switches];
    let mut next_port: Vec<u8> = vec![narrow(spec.hosts_per_switch); spec.switches];
    let mut linked = vec![vec![false; spec.switches]; spec.switches];
    let connect = |t: &mut Topology,
                   free_ports: &mut Vec<u8>,
                   next_port: &mut Vec<u8>,
                   a: usize,
                   b: usize| {
        let (pa, pb) = (next_port[a], next_port[b]);
        next_port[a] += 1;
        next_port[b] += 1;
        free_ports[a] -= 1;
        free_ports[b] -= 1;
        t.connect_switches(switches[a], pa, switches[b], pb, cable::SAN)
            // detlint::allow(S001, generator port accounting keeps switch ports free)
            .expect("generator keeps a port free");
    };

    // Random spanning tree: random join order, each new switch cabled to a
    // random already-connected switch that still has a free port.
    let mut order: Vec<usize> = (0..spec.switches).collect();
    rng.shuffle(&mut order);
    let mut connected = vec![order[0]];
    for &s in &order[1..] {
        let candidates: Vec<usize> = connected
            .iter()
            .copied()
            .filter(|&c| free_ports[c] > 0)
            .collect();
        let &target = rng
            .choose(&candidates)
            // detlint::allow(S001, the port budget check above guarantees a free port)
            .expect("spanning tree always has a free port given h+1 <= p");
        connect(&mut t, &mut free_ports, &mut next_port, s, target);
        linked[s][target] = true;
        linked[target][s] = true;
        connected.push(s);
    }

    // Extra random cables.
    let mut attempts = 0;
    let max_attempts = spec.switches * spec.switches * 8;
    loop {
        let open: Vec<usize> = (0..spec.switches).filter(|&s| free_ports[s] > 0).collect();
        if open.len() < 2 || attempts > max_attempts {
            break;
        }
        attempts += 1;
        // detlint::allow(S001, open has at least two entries inside this branch)
        let a = *rng.choose(&open).expect("open is non-empty");
        // detlint::allow(S001, open has at least two entries inside this branch)
        let b = *rng.choose(&open).expect("open is non-empty");
        if a == b || linked[a][b] {
            continue;
        }
        connect(&mut t, &mut free_ports, &mut next_port, a, b);
        linked[a][b] = true;
        linked[b][a] = true;
    }

    // detlint::allow(S001, the generator only adds cables between free ports)
    t.validate().expect("generator keeps the graph connected");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Node, PortIx};

    #[test]
    fn fig6_shape() {
        let tb = fig6_testbed();
        let t = &tb.topo;
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.num_hosts(), 3);
        // 3 switch cables (A, B, loop) + 3 host cables.
        assert_eq!(t.num_links(), 6);
        assert!(t.link(tb.loop_cable).is_self_loop());
        assert_eq!(t.host_attachment(tb.host1).0, tb.sw0);
        assert_eq!(t.host_attachment(tb.itb_host).0, tb.sw0);
        assert_eq!(t.host_attachment(tb.host2).0, tb.sw1);
        // NIC kinds match the M2L/M2M cards of the paper.
        assert_eq!(t.host_nic_kind(tb.host1), PortKind::Lan);
        assert_eq!(t.host_nic_kind(tb.itb_host), PortKind::Lan);
        assert_eq!(t.host_nic_kind(tb.host2), PortKind::San);
    }

    #[test]
    fn fig6_port_kinds() {
        let tb = fig6_testbed();
        let t = &tb.topo;
        // Loop cable occupies LAN ports.
        let loop_link = t.link(tb.loop_cable);
        assert_eq!(t.switch_port_kind(tb.sw1, loop_link.a.port), PortKind::Lan);
        assert_eq!(t.switch_port_kind(tb.sw1, loop_link.b.port), PortKind::Lan);
        // Inter-switch cables occupy SAN ports.
        for lid in [tb.cable_a, tb.cable_b] {
            let l = t.link(lid);
            assert_eq!(
                t.switch_port_kind(tb.sw0, l.a.port.min(l.b.port)),
                PortKind::San
            );
        }
    }

    #[test]
    fn chain_shape() {
        let t = chain(5, 2);
        assert_eq!(t.num_switches(), 5);
        assert_eq!(t.num_hosts(), 10);
        // 4 inter-switch + 10 host links.
        assert_eq!(t.num_links(), 14);
        // End switches have 1 switch neighbour, middles 2.
        assert_eq!(t.switch_neighbors(SwitchId(0)).count(), 1);
        assert_eq!(t.switch_neighbors(SwitchId(2)).count(), 2);
    }

    #[test]
    fn ring_shape() {
        let t = ring(6, 1);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_hosts(), 6);
        for s in t.switch_ids() {
            assert_eq!(t.switch_neighbors(s).count(), 2);
        }
    }

    #[test]
    fn irregular_is_connected_and_within_ports() {
        for seed in 0..20 {
            let spec = IrregularSpec::evaluation_default(16, seed);
            let t = random_irregular(&spec);
            t.validate().unwrap();
            assert_eq!(t.num_hosts(), 64);
            for s in t.switch_ids() {
                let used = t.switch_ports(s).filter(|(_, _, l)| l.is_some()).count();
                assert!(used <= 8);
                assert_eq!(t.hosts_at(s).len(), 4);
            }
        }
    }

    #[test]
    fn irregular64_preset_is_reproducible() {
        let a = irregular64();
        a.validate().unwrap();
        assert_eq!(a.num_switches(), 64);
        assert_eq!(a.num_hosts(), 256);
        // The preset is the recorded spec, nothing more.
        let b = random_irregular(&IrregularSpec::evaluation_default(64, IRREGULAR64_SEED));
        assert_eq!(a.num_links(), b.num_links());
        for lid in a.link_ids() {
            assert_eq!(a.link(lid).a, b.link(lid).a);
            assert_eq!(a.link(lid).b, b.link(lid).b);
        }
    }

    #[test]
    fn irregular_no_parallel_or_self_links() {
        let spec = IrregularSpec::evaluation_default(12, 99);
        let t = random_irregular(&spec);
        let mut seen = itb_sim::FxHashSet::default();
        for lid in t.link_ids() {
            let l = t.link(lid);
            if let (Node::Switch(a), Node::Switch(b)) = (l.a.node, l.b.node) {
                assert_ne!(a, b, "self loop generated");
                let key = (a.min(b), a.max(b));
                assert!(seen.insert(key), "parallel cable between {a} and {b}");
            }
        }
    }

    #[test]
    fn irregular_deterministic_per_seed() {
        let spec = IrregularSpec::evaluation_default(10, 7);
        let a = random_irregular(&spec);
        let b = random_irregular(&spec);
        assert_eq!(a.num_links(), b.num_links());
        for lid in a.link_ids() {
            assert_eq!(a.link(lid).a, b.link(lid).a);
            assert_eq!(a.link(lid).b, b.link(lid).b);
        }
    }

    #[test]
    fn irregular_seeds_differ() {
        let a = random_irregular(&IrregularSpec::evaluation_default(10, 1));
        let b = random_irregular(&IrregularSpec::evaluation_default(10, 2));
        let differs = a.num_links() != b.num_links()
            || a.link_ids()
                .any(|l| a.link(l).a != b.link(l).a || a.link(l).b != b.link(l).b);
        assert!(differs);
    }

    #[test]
    fn star_shape() {
        let t = star(4, 2);
        assert_eq!(t.num_switches(), 5);
        assert_eq!(t.num_hosts(), 8);
        // Center is switch 0 with 4 switch neighbours and no hosts.
        assert_eq!(t.switch_neighbors(SwitchId(0)).count(), 4);
        assert!(t.hosts_at(SwitchId(0)).is_empty());
        assert_eq!(t.hosts_at(SwitchId(1)).len(), 2);
    }

    #[test]
    fn dumbbell_shape() {
        let t = dumbbell(3, 1);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_hosts(), 6);
        // Clique switches: 2 in-clique links; bridge ends have 3.
        assert_eq!(t.switch_neighbors(SwitchId(1)).count(), 2);
        assert_eq!(t.switch_neighbors(SwitchId(0)).count(), 3);
        assert_eq!(t.switch_neighbors(SwitchId(3)).count(), 3);
        // Exactly one cable crosses the bisection.
        let crossing = t
            .link_ids()
            .filter(|&l| {
                let link = t.link(l);
                match (link.a.node.as_switch(), link.b.node.as_switch()) {
                    (Some(a), Some(b)) => (a.0 < 3) != (b.0 < 3),
                    _ => false,
                }
            })
            .count();
        assert_eq!(crossing, 1);
    }

    #[test]
    fn torus_shape() {
        let t = torus2d(3, 4, 1);
        assert_eq!(t.num_switches(), 12);
        assert_eq!(t.num_hosts(), 12);
        // Every switch has exactly 4 switch neighbours.
        for s in t.switch_ids() {
            assert_eq!(t.switch_neighbors(s).count(), 4, "{s}");
        }
        // 2 links per switch (east + south) = 24 inter-switch links.
        let sw_links = t
            .link_ids()
            .filter(|&l| {
                t.link(l).a.node.as_switch().is_some() && t.link(l).b.node.as_switch().is_some()
            })
            .count();
        assert_eq!(sw_links, 24);
    }

    #[test]
    fn torus_2x2_is_valid_multigraph() {
        // On a 2-wide torus the wraparound gives parallel cables; the
        // builder must still wire legally.
        let t = torus2d(2, 2, 1);
        t.validate().unwrap();
        assert_eq!(t.num_switches(), 4);
    }

    #[test]
    fn fat_tree_k4_shape() {
        let t = fat_tree(4);
        // (k/2)^2 = 4 cores + k pods * k switches = 4 + 16 = 20.
        assert_eq!(t.num_switches(), 20);
        assert_eq!(t.num_hosts(), 16); // k^3/4
        t.validate().unwrap();
        // Cores see k distinct aggregation neighbours.
        for c in 0..4u16 {
            assert_eq!(t.switch_neighbors(SwitchId(c)).count(), 4);
            assert!(t.hosts_at(SwitchId(c)).is_empty());
        }
        // Pod 0: switches 4,5 aggregation (no hosts), 6,7 edge (k/2 hosts).
        assert!(t.hosts_at(SwitchId(4)).is_empty());
        assert_eq!(t.hosts_at(SwitchId(6)).len(), 2);
        assert_eq!(t.switch_neighbors(SwitchId(4)).count(), 4);
        assert_eq!(t.switch_neighbors(SwitchId(6)).count(), 2);
    }

    #[test]
    fn clos_shape() {
        let t = clos(4, 2, 3);
        assert_eq!(t.num_switches(), 6); // 2 spines + 4 leaves
        assert_eq!(t.num_hosts(), 12);
        t.validate().unwrap();
        // Spines are 0..2: one neighbour per leaf, no hosts.
        assert_eq!(t.switch_neighbors(SwitchId(0)).count(), 4);
        assert!(t.hosts_at(SwitchId(0)).is_empty());
        // Leaves are 2..6: one neighbour per spine, 3 hosts.
        assert_eq!(t.switch_neighbors(SwitchId(2)).count(), 2);
        assert_eq!(t.hosts_at(SwitchId(2)).len(), 3);
    }

    #[test]
    fn irregular_big_matches_spec() {
        let a = irregular_big(12, 5);
        let b = random_irregular(&IrregularSpec::evaluation_default(12, 5));
        assert_eq!(a.num_links(), b.num_links());
        for lid in a.link_ids() {
            assert_eq!(a.link(lid).a, b.link(lid).a);
            assert_eq!(a.link(lid).b, b.link(lid).b);
        }
    }

    #[test]
    fn m2fm_layout() {
        let ports = m2fm_sw8_ports();
        assert_eq!(ports.len(), 8);
        assert!(ports[..4].iter().all(|&k| k == PortKind::San));
        assert!(ports[4..].iter().all(|&k| k == PortKind::Lan));
    }

    #[test]
    fn fig6_free_ports_remain() {
        // The testbed uses 4 ports on sw0 and 5 on sw1 of 8 each.
        let tb = fig6_testbed();
        let used0 = tb
            .topo
            .switch_ports(tb.sw0)
            .filter(|(_, _, l)| l.is_some())
            .count();
        let used1 = tb
            .topo
            .switch_ports(tb.sw1)
            .filter(|(_, _, l)| l.is_some())
            .count();
        assert_eq!(used0, 4);
        assert_eq!(used1, 5);
        let _ = PortIx(0);
    }
}

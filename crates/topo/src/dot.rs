//! Graphviz DOT export for debugging topologies.

use crate::graph::Topology;
use crate::ids::Node;

/// Render the topology as a Graphviz `graph` for inspection.
///
/// Switches render as boxes, hosts as ellipses; link labels carry the port
/// numbers at each end.
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::from("graph cluster {\n  overlap=false;\n");
    for s in topo.switch_ids() {
        out.push_str(&format!("  \"{s}\" [shape=box];\n"));
    }
    for h in topo.host_ids() {
        out.push_str(&format!("  \"{h}\" [shape=ellipse];\n"));
    }
    for lid in topo.link_ids() {
        let l = topo.link(lid);
        out.push_str(&format!(
            "  \"{}\" -- \"{}\" [label=\"{}:{}\"];\n",
            name(l.a.node),
            name(l.b.node),
            l.a.port,
            l.b.port,
        ));
    }
    out.push_str("}\n");
    out
}

fn name(n: Node) -> String {
    n.to_string()
}

/// Render the topology with a set of links highlighted (e.g. the links a
/// route traverses), for visual debugging of route computations.
pub fn to_dot_highlighted(topo: &Topology, highlight: &[crate::LinkId]) -> String {
    let hot: itb_sim::FxHashSet<u32> = highlight.iter().map(|l| l.0).collect();
    let mut out = String::from("graph cluster {\n  overlap=false;\n");
    for s in topo.switch_ids() {
        out.push_str(&format!("  \"{s}\" [shape=box];\n"));
    }
    for h in topo.host_ids() {
        out.push_str(&format!("  \"{h}\" [shape=ellipse];\n"));
    }
    for lid in topo.link_ids() {
        let l = topo.link(lid);
        let style = if hot.contains(&lid.0) {
            " color=red penwidth=2"
        } else {
            ""
        };
        out.push_str(&format!(
            "  \"{}\" -- \"{}\" [label=\"{}:{}\"{style}];\n",
            name(l.a.node),
            name(l.b.node),
            l.a.port,
            l.b.port,
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::fig6_testbed;

    #[test]
    fn dot_contains_all_entities() {
        let tb = fig6_testbed();
        let dot = to_dot(&tb.topo);
        assert!(dot.starts_with("graph cluster {"));
        assert!(dot.contains("\"sw0\" [shape=box]"));
        assert!(dot.contains("\"sw1\" [shape=box]"));
        assert!(dot.contains("\"host0\" [shape=ellipse]"));
        assert!(dot.contains("\"host2\" [shape=ellipse]"));
        // 6 links → 6 edges.
        assert_eq!(dot.matches(" -- ").count(), 6);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlight_marks_selected_links() {
        let tb = fig6_testbed();
        let dot = to_dot_highlighted(&tb.topo, &[tb.cable_a]);
        assert_eq!(dot.matches("color=red").count(), 1);
        let none = to_dot_highlighted(&tb.topo, &[]);
        assert!(!none.contains("color=red"));
    }

    #[test]
    fn self_loop_renders() {
        let tb = fig6_testbed();
        let dot = to_dot(&tb.topo);
        assert!(dot.contains("\"sw1\" -- \"sw1\""));
    }
}

//! The wiring graph: switches, hosts, links.

use crate::ids::{HostId, LinkId, Node, PortIx, PortKind, SwitchId};
use itb_sim::{narrow, SimDuration};
use serde::{Deserialize, Serialize};

/// One end of a link: a node and the port it plugs into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// Node holding the port.
    pub node: Node,
    /// Port index within the node (hosts always use port 0).
    pub port: PortIx,
}

impl Endpoint {
    /// Switch endpoint shorthand.
    pub fn switch(s: SwitchId, port: u8) -> Self {
        Endpoint {
            node: Node::Switch(s),
            port: PortIx(port),
        }
    }
    /// Host endpoint shorthand.
    pub fn host(h: HostId) -> Self {
        Endpoint {
            node: Node::Host(h),
            port: PortIx(0),
        }
    }
}

/// A full-duplex point-to-point cable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// One end.
    pub a: Endpoint,
    /// Other end.
    pub b: Endpoint,
    /// One-way propagation delay of the cable.
    pub propagation: SimDuration,
}

impl Link {
    /// The endpoint opposite to the one at `node`.
    ///
    /// # Panics
    /// Panics if `node` is on neither end.
    pub fn opposite(&self, node: Node) -> Endpoint {
        if self.a.node == node {
            self.b
        } else if self.b.node == node {
            self.a
        } else {
            // detlint::allow(S001, callers pass a node known to be on the link; a mismatch is a bug)
            panic!("node {node} not on link {self:?}");
        }
    }

    /// Whether `node` is on this link.
    pub fn touches(&self, node: Node) -> bool {
        self.a.node == node || self.b.node == node
    }

    /// Whether this cable joins a switch to itself (a "loop" cable, used in
    /// the paper's Figure 6 to equalize switch-crossing counts).
    pub fn is_self_loop(&self) -> bool {
        self.a.node == self.b.node
    }
}

/// Per-switch data.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SwitchInfo {
    /// Port kind per port index.
    port_kinds: Vec<PortKind>,
    /// Link attached at each port, if any.
    port_links: Vec<Option<LinkId>>,
}

/// Per-host data.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HostInfo {
    /// The host NIC's port kind (M2L cards are LAN, M2M cards are SAN).
    nic_kind: PortKind,
    /// The single link attaching the host to a switch (set on wiring).
    link: Option<LinkId>,
}

/// A complete cluster wiring description.
///
/// Build with the [`crate::builders`] helpers or incrementally with
/// [`Topology::add_switch`], [`Topology::add_host`] and the `connect_*`
/// methods; finish with [`Topology::validate`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    switches: Vec<SwitchInfo>,
    hosts: Vec<HostInfo>,
    links: Vec<Link>,
}

/// Errors reported by [`Topology::validate`] and the wiring methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A port that is already cabled was cabled again.
    PortInUse(Endpoint),
    /// A port index beyond the switch's port count.
    NoSuchPort(Endpoint),
    /// A host was wired twice.
    HostAlreadyWired(HostId),
    /// A host was never wired.
    HostUnwired(HostId),
    /// The switch graph is not connected.
    Disconnected {
        /// Number of switches reachable from switch 0.
        reached: usize,
        /// Total switch count.
        total: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::PortInUse(e) => write!(f, "port already cabled: {}:{}", e.node, e.port),
            TopologyError::NoSuchPort(e) => write!(f, "no such port: {}:{}", e.node, e.port),
            TopologyError::HostAlreadyWired(h) => write!(f, "{h} wired twice"),
            TopologyError::HostUnwired(h) => write!(f, "{h} has no link"),
            TopologyError::Disconnected { reached, total } => {
                write!(f, "switch graph disconnected: {reached}/{total} reachable")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch whose ports have the given kinds (index = port number).
    /// The M2FM-SW8 of the testbed is 4 SAN + 4 LAN ports.
    pub fn add_switch(&mut self, port_kinds: Vec<PortKind>) -> SwitchId {
        let id = SwitchId(narrow(self.switches.len()));
        self.switches.push(SwitchInfo {
            port_links: vec![None; port_kinds.len()],
            port_kinds,
        });
        id
    }

    /// Add a switch with `n` ports, all SAN.
    pub fn add_switch_uniform(&mut self, n: usize) -> SwitchId {
        self.add_switch(vec![PortKind::San; n])
    }

    /// Add a host with the given NIC kind. Wire it with
    /// [`Topology::connect_host`].
    pub fn add_host(&mut self, nic_kind: PortKind) -> HostId {
        let id = HostId(narrow(self.hosts.len()));
        self.hosts.push(HostInfo {
            nic_kind,
            link: None,
        });
        id
    }

    fn claim_switch_port(&mut self, ep: Endpoint, link: LinkId) -> Result<(), TopologyError> {
        // detlint::allow(S001, claim_switch_port is only called with switch endpoints)
        let s = ep.node.as_switch().expect("switch endpoint");
        let info = &mut self.switches[s.idx()];
        let slot = info
            .port_links
            .get_mut(ep.port.idx())
            .ok_or(TopologyError::NoSuchPort(ep))?;
        if slot.is_some() {
            return Err(TopologyError::PortInUse(ep));
        }
        *slot = Some(link);
        Ok(())
    }

    /// Cable two switch ports together.
    pub fn connect_switches(
        &mut self,
        a: SwitchId,
        a_port: u8,
        b: SwitchId,
        b_port: u8,
        propagation: SimDuration,
    ) -> Result<LinkId, TopologyError> {
        let id = LinkId(narrow(self.links.len()));
        let ea = Endpoint::switch(a, a_port);
        let eb = Endpoint::switch(b, b_port);
        self.claim_switch_port(ea, id)?;
        self.claim_switch_port(eb, id).inspect_err(|_| {
            // Roll back the first claim so failed wiring leaves no residue.
            self.switches[a.idx()].port_links[a_port as usize] = None;
        })?;
        self.links.push(Link {
            a: ea,
            b: eb,
            propagation,
        });
        Ok(id)
    }

    /// Cable a host NIC to a switch port.
    pub fn connect_host(
        &mut self,
        h: HostId,
        s: SwitchId,
        s_port: u8,
        propagation: SimDuration,
    ) -> Result<LinkId, TopologyError> {
        if self.hosts[h.idx()].link.is_some() {
            return Err(TopologyError::HostAlreadyWired(h));
        }
        let id = LinkId(narrow(self.links.len()));
        let es = Endpoint::switch(s, s_port);
        self.claim_switch_port(es, id)?;
        self.hosts[h.idx()].link = Some(id);
        self.links.push(Link {
            a: Endpoint::host(h),
            b: es,
            propagation,
        });
        Ok(id)
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }
    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }
    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All switch ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> {
        (0..narrow::<u16, _>(self.switches.len())).map(SwitchId)
    }
    /// All host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> {
        (0..narrow::<u16, _>(self.hosts.len())).map(HostId)
    }
    /// All link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..narrow::<u32, _>(self.links.len())).map(LinkId)
    }

    /// Link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// Ports of `s`: `(port, kind, attached link)` triples.
    pub fn switch_ports(
        &self,
        s: SwitchId,
    ) -> impl Iterator<Item = (PortIx, PortKind, Option<LinkId>)> + '_ {
        let info = &self.switches[s.idx()];
        info.port_kinds
            .iter()
            .zip(&info.port_links)
            .enumerate()
            .map(|(i, (&k, &l))| (PortIx(narrow(i)), k, l))
    }

    /// Number of ports on switch `s`.
    pub fn switch_port_count(&self, s: SwitchId) -> usize {
        self.switches[s.idx()].port_kinds.len()
    }

    /// Kind of a specific switch port.
    pub fn switch_port_kind(&self, s: SwitchId, port: PortIx) -> PortKind {
        self.switches[s.idx()].port_kinds[port.idx()]
    }

    /// The link plugged into a switch port, if any.
    pub fn link_at(&self, s: SwitchId, port: PortIx) -> Option<LinkId> {
        self.switches[s.idx()].port_links[port.idx()]
    }

    /// NIC port kind of a host.
    pub fn host_nic_kind(&self, h: HostId) -> PortKind {
        self.hosts[h.idx()].nic_kind
    }

    /// The host's uplink. Panics if the host is unwired (see
    /// [`Topology::validate`]).
    pub fn host_link(&self, h: HostId) -> LinkId {
        // detlint::allow(S001, validate ensures every host is wired)
        self.hosts[h.idx()].link.expect("host not wired")
    }

    /// The switch (and its port) a host hangs off.
    pub fn host_attachment(&self, h: HostId) -> (SwitchId, PortIx) {
        let link = self.link(self.host_link(h));
        let ep = link.opposite(Node::Host(h));
        (
            // detlint::allow(S001, hosts wire to switches only)
            ep.node.as_switch().expect("host wired to a switch"),
            ep.port,
        )
    }

    /// Hosts attached to switch `s`, in port order.
    pub fn hosts_at(&self, s: SwitchId) -> Vec<HostId> {
        self.switch_ports(s)
            .filter_map(|(_, _, l)| l)
            .filter_map(|l| {
                let link = self.link(l);
                link.a.node.as_host().or(link.b.node.as_host())
            })
            .collect()
    }

    /// Switch-to-switch neighbours of `s`: `(out port, link, neighbour)`.
    /// Self-loop cables appear once per endpoint (two entries with the same
    /// link and neighbour `s`).
    pub fn switch_neighbors(
        &self,
        s: SwitchId,
    ) -> impl Iterator<Item = (PortIx, LinkId, SwitchId)> + '_ {
        self.switch_ports(s).filter_map(move |(port, _, l)| {
            let lid = l?;
            let link = self.link(lid);
            // For a self-loop, "the other end" is the endpoint that is not
            // this (node, port) pair.
            let other = if link.a.node == Node::Switch(s) && link.a.port == port {
                link.b
            } else {
                link.a
            };
            other.node.as_switch().map(|n| (port, lid, n))
        })
    }

    /// The output port on `from` that sends onto `link`, oriented away from
    /// `from` (for self-loops either endpoint works; returns `a`'s port when
    /// both ends are on `from`).
    pub fn out_port(&self, from: SwitchId, link: LinkId) -> PortIx {
        let l = self.link(link);
        if l.a.node == Node::Switch(from) {
            l.a.port
        } else {
            debug_assert_eq!(l.b.node, Node::Switch(from));
            l.b.port
        }
    }

    /// Check structural invariants: all hosts wired and the switch graph
    /// connected.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for h in self.host_ids() {
            if self.hosts[h.idx()].link.is_none() {
                return Err(TopologyError::HostUnwired(h));
            }
        }
        if self.switches.is_empty() {
            return Ok(());
        }
        // BFS over switches.
        let mut seen = vec![false; self.switches.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(SwitchId(0));
        let mut reached = 1;
        while let Some(s) = queue.pop_front() {
            for (_, _, n) in self.switch_neighbors(s) {
                if !seen[n.idx()] {
                    seen[n.idx()] = true;
                    reached += 1;
                    queue.push_back(n);
                }
            }
        }
        if reached != self.switches.len() {
            return Err(TopologyError::Disconnected {
                reached,
                total: self.switches.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch() -> (Topology, SwitchId, SwitchId) {
        let mut t = Topology::new();
        let s0 = t.add_switch_uniform(4);
        let s1 = t.add_switch_uniform(4);
        t.connect_switches(s0, 0, s1, 0, SimDuration::from_ns(10))
            .unwrap();
        (t, s0, s1)
    }

    #[test]
    fn wiring_and_lookup() {
        let (mut t, s0, s1) = two_switch();
        let h = t.add_host(PortKind::Lan);
        t.connect_host(h, s0, 1, SimDuration::from_ns(20)).unwrap();
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.num_hosts(), 1);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.host_attachment(h), (s0, PortIx(1)));
        assert_eq!(t.hosts_at(s0), vec![h]);
        assert!(t.hosts_at(s1).is_empty());
        let nbrs: Vec<_> = t.switch_neighbors(s0).collect();
        assert_eq!(nbrs.len(), 1);
        assert_eq!(nbrs[0].2, s1);
        t.validate().unwrap();
    }

    #[test]
    fn port_reuse_rejected() {
        let (mut t, s0, s1) = two_switch();
        let err = t
            .connect_switches(s0, 0, s1, 1, SimDuration::ZERO)
            .unwrap_err();
        assert_eq!(err, TopologyError::PortInUse(Endpoint::switch(s0, 0)));
        // Failed wiring must not leak a claimed port on the other side.
        t.connect_switches(s0, 1, s1, 1, SimDuration::ZERO).unwrap();
    }

    #[test]
    fn rollback_on_second_endpoint_failure() {
        let (mut t, s0, s1) = two_switch();
        // s1 port 0 is taken; wiring s0:2 -> s1:0 must fail AND free s0:2.
        let err = t
            .connect_switches(s0, 2, s1, 0, SimDuration::ZERO)
            .unwrap_err();
        assert_eq!(err, TopologyError::PortInUse(Endpoint::switch(s1, 0)));
        t.connect_switches(s0, 2, s1, 2, SimDuration::ZERO).unwrap();
    }

    #[test]
    fn bad_port_rejected() {
        let (mut t, s0, s1) = two_switch();
        let err = t
            .connect_switches(s0, 9, s1, 1, SimDuration::ZERO)
            .unwrap_err();
        assert_eq!(err, TopologyError::NoSuchPort(Endpoint::switch(s0, 9)));
    }

    #[test]
    fn host_double_wire_rejected() {
        let (mut t, s0, _) = two_switch();
        let h = t.add_host(PortKind::San);
        t.connect_host(h, s0, 1, SimDuration::ZERO).unwrap();
        let err = t.connect_host(h, s0, 2, SimDuration::ZERO).unwrap_err();
        assert_eq!(err, TopologyError::HostAlreadyWired(h));
    }

    #[test]
    fn unwired_host_fails_validation() {
        let (mut t, _, _) = two_switch();
        let h = t.add_host(PortKind::San);
        assert_eq!(t.validate().unwrap_err(), TopologyError::HostUnwired(h));
    }

    #[test]
    fn disconnected_graph_fails_validation() {
        let mut t = Topology::new();
        t.add_switch_uniform(4);
        t.add_switch_uniform(4);
        assert_eq!(
            t.validate().unwrap_err(),
            TopologyError::Disconnected {
                reached: 1,
                total: 2
            }
        );
    }

    #[test]
    fn self_loop_cable() {
        let mut t = Topology::new();
        let s0 = t.add_switch_uniform(4);
        let l = t
            .connect_switches(s0, 0, s0, 1, SimDuration::from_ns(5))
            .unwrap();
        assert!(t.link(l).is_self_loop());
        let nbrs: Vec<_> = t.switch_neighbors(s0).collect();
        // A loop cable contributes both of its ports.
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.iter().all(|&(_, _, n)| n == s0));
        t.validate().unwrap();
    }

    #[test]
    fn opposite_endpoint() {
        let (t, s0, s1) = two_switch();
        let l = t.link(LinkId(0));
        assert_eq!(l.opposite(Node::Switch(s0)).node, Node::Switch(s1));
        assert_eq!(l.opposite(Node::Switch(s1)).node, Node::Switch(s0));
        assert!(l.touches(Node::Switch(s0)));
        assert!(!l.touches(Node::Host(HostId(0))));
    }

    #[test]
    fn out_port_orientation() {
        let (t, s0, s1) = two_switch();
        assert_eq!(t.out_port(s0, LinkId(0)), PortIx(0));
        assert_eq!(t.out_port(s1, LinkId(0)), PortIx(0));
    }

    #[test]
    fn port_kinds_tracked() {
        let mut t = Topology::new();
        let s = t.add_switch(vec![
            PortKind::San,
            PortKind::San,
            PortKind::Lan,
            PortKind::Lan,
        ]);
        assert_eq!(t.switch_port_kind(s, PortIx(0)), PortKind::San);
        assert_eq!(t.switch_port_kind(s, PortIx(3)), PortKind::Lan);
        assert_eq!(t.switch_port_count(s), 4);
    }
}

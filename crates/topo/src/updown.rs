//! Up\*/down\* link orientation.
//!
//! Each switch-to-switch link gets an *up* end: (1) the end whose switch is
//! closer to the spanning-tree root; (2) on equal depth, the end whose switch
//! has the lower id. Legal up\*/down\* paths never traverse an *up*-direction
//! link after a *down*-direction one, which removes every cycle from the
//! channel-dependency graph (each network cycle contains at least one up link
//! and one down link).
//!
//! For a self-loop cable (both ends on the same switch, as in the paper's
//! Figure 6 loop at switch 2) we orient by port number: the lower-numbered
//! port is the up end. Any consistent choice preserves deadlock freedom
//! because a loop cable cannot appear in a (simple) switch-level cycle.

use crate::graph::Topology;
use crate::ids::{LinkId, SwitchId};
use crate::spanning::SpanningTree;

/// The traversal direction of one link hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward the link's up end (toward the root).
    Up,
    /// Away from the link's up end.
    Down,
}

impl Direction {
    /// Whether `next` after `self` violates the up\*/down\* rule.
    #[inline]
    pub fn forbids(self, next: Direction) -> bool {
        self == Direction::Down && next == Direction::Up
    }
}

/// The complete orientation: for every switch-to-switch link, which endpoint
/// switch is the up end.
#[derive(Debug, Clone)]
pub struct UpDown {
    tree: SpanningTree,
    /// `up_switch[link] == Some(s)` when `s` is the up end; `None` for
    /// host links (no orientation).
    up_end: Vec<Option<UpEnd>>,
}

/// Identifies the up end of a link precisely enough to orient self-loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct UpEnd {
    switch: SwitchId,
    port: crate::ids::PortIx,
}

impl UpDown {
    /// Orient every link of `topo` using `tree`.
    pub fn compute(topo: &Topology, tree: SpanningTree) -> Self {
        let mut up_end = Vec::with_capacity(topo.num_links());
        for lid in topo.link_ids() {
            let link = topo.link(lid);
            let up = match (link.a.node.as_switch(), link.b.node.as_switch()) {
                (Some(sa), Some(sb)) => {
                    let chosen = if sa == sb {
                        // Self-loop: lower port is the up end.
                        if link.a.port <= link.b.port {
                            link.a
                        } else {
                            link.b
                        }
                    } else {
                        let (da, db) = (tree.depth(sa), tree.depth(sb));
                        if da < db || (da == db && sa < sb) {
                            link.a
                        } else {
                            link.b
                        }
                    };
                    Some(UpEnd {
                        // detlint::allow(S001, BFS only enqueues switch nodes)
                        switch: chosen.node.as_switch().expect("BFS enqueues switches only"),
                        port: chosen.port,
                    })
                }
                _ => None, // host link
            };
            up_end.push(up);
        }
        UpDown { tree, up_end }
    }

    /// Convenience: default spanning tree, then orient.
    pub fn compute_default(topo: &Topology) -> Self {
        Self::compute(topo, SpanningTree::compute_default(topo))
    }

    /// The spanning tree used for orientation.
    pub fn tree(&self) -> &SpanningTree {
        &self.tree
    }

    /// Direction of traversing `link` out of switch `from` through `out_port`.
    ///
    /// The port matters only for self-loop cables; for ordinary links any
    /// port value is accepted.
    ///
    /// # Panics
    /// Panics if `link` is a host link (host links have no direction) or
    /// `from` is not on the link.
    pub fn direction_from(
        &self,
        topo: &Topology,
        link: LinkId,
        from: SwitchId,
        out_port: crate::ids::PortIx,
    ) -> Direction {
        // detlint::allow(S001, up-down direction is only queried for switch-to-switch links)
        let up = self.up_end[link.idx()].expect("host links have no up/down direction");
        let l = topo.link(link);
        debug_assert!(l.touches(crate::ids::Node::Switch(from)));
        if l.is_self_loop() {
            // Leaving via the up-end port means travelling *away* from the
            // up end (the worm exits that port and re-enters the other), so
            // the traversal is Down; leaving via the other port is Up.
            if up.port == out_port {
                Direction::Down
            } else {
                Direction::Up
            }
        } else if up.switch == from {
            Direction::Down
        } else {
            Direction::Up
        }
    }

    /// The switch at the up end (for ordinary switch-switch links).
    pub fn up_switch(&self, link: LinkId) -> Option<SwitchId> {
        self.up_end[link.idx()].map(|u| u.switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PortIx;
    use itb_sim::SimDuration;

    /// Figure-1-style network: 7 switches, irregular.
    /// Edges: 0-1, 0-2, 1-3, 2-3, 2-4, 3-5, 4-6, 5-6, 1-6.
    fn fig1ish() -> Topology {
        let mut t = Topology::new();
        let s: Vec<_> = (0..7).map(|_| t.add_switch_uniform(8)).collect();
        let d = SimDuration::from_ns(10);
        let edges = [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (1, 6),
        ];
        let mut next_port = [0u8; 7];
        for &(a, b) in &edges {
            let (pa, pb) = (next_port[a], next_port[b]);
            next_port[a] += 1;
            next_port[b] += 1;
            t.connect_switches(s[a], pa, s[b], pb, d).unwrap();
        }
        t
    }

    fn dir(ud: &UpDown, topo: &Topology, link: LinkId, from: SwitchId) -> Direction {
        let port = topo.out_port(from, link);
        ud.direction_from(topo, link, from, port)
    }

    #[test]
    fn tree_edges_point_up_toward_root() {
        let topo = fig1ish();
        let tree = SpanningTree::compute(&topo, SwitchId(0));
        let ud = UpDown::compute(&topo, tree);
        // Link 0 connects 0(d0)-1(d1): up end must be switch 0.
        assert_eq!(ud.up_switch(LinkId(0)), Some(SwitchId(0)));
        assert_eq!(dir(&ud, &topo, LinkId(0), SwitchId(1)), Direction::Up);
        assert_eq!(dir(&ud, &topo, LinkId(0), SwitchId(0)), Direction::Down);
    }

    #[test]
    fn equal_depth_ties_break_by_lower_id() {
        // A triangle gives an equal-depth pair directly.
        let mut t = Topology::new();
        let a = t.add_switch_uniform(4);
        let b = t.add_switch_uniform(4);
        let c = t.add_switch_uniform(4);
        let d = SimDuration::ZERO;
        t.connect_switches(a, 0, b, 0, d).unwrap();
        t.connect_switches(a, 1, c, 0, d).unwrap();
        let bc = t.connect_switches(b, 1, c, 1, d).unwrap();
        let tree = SpanningTree::compute(&t, a);
        let ud = UpDown::compute(&t, tree);
        // b and c both depth 1; up end of b-c is b (lower id).
        assert_eq!(ud.up_switch(bc), Some(b));
        assert_eq!(dir(&ud, &t, bc, c), Direction::Up);
        assert_eq!(dir(&ud, &t, bc, b), Direction::Down);
    }

    #[test]
    fn host_links_have_no_direction() {
        let mut t = Topology::new();
        let s = t.add_switch_uniform(4);
        let _ = s;
        let s2 = t.add_switch_uniform(4);
        t.connect_switches(s, 0, s2, 0, SimDuration::ZERO).unwrap();
        let h = t.add_host(crate::ids::PortKind::San);
        let hl = t.connect_host(h, s, 1, SimDuration::ZERO).unwrap();
        let ud = UpDown::compute_default(&t);
        assert_eq!(ud.up_switch(hl), None);
    }

    #[test]
    fn self_loop_orientation_by_port() {
        let mut t = Topology::new();
        let s = t.add_switch_uniform(4);
        let s2 = t.add_switch_uniform(4);
        t.connect_switches(s, 0, s2, 0, SimDuration::ZERO).unwrap();
        let lp = t.connect_switches(s2, 1, s2, 2, SimDuration::ZERO).unwrap();
        let ud = UpDown::compute_default(&t);
        // Up end is port 1 (lower). Leaving via port 1 is Down; via port 2 Up.
        assert_eq!(ud.direction_from(&t, lp, s2, PortIx(1)), Direction::Down);
        assert_eq!(ud.direction_from(&t, lp, s2, PortIx(2)), Direction::Up);
    }

    #[test]
    fn every_cycle_has_up_and_down() {
        // In any orientation derived from BFS depth + id tie-break, following
        // links only in the Up direction must be acyclic. Verify by toposort.
        let topo = fig1ish();
        let ud = UpDown::compute_default(&topo);
        let n = topo.num_switches();
        // Edges directed down-switch -> up-switch (the Up traversal).
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![vec![]; n];
        for lid in topo.link_ids() {
            let Some(up) = ud.up_switch(lid) else {
                continue;
            };
            let l = topo.link(lid);
            if l.is_self_loop() {
                continue;
            }
            let a = l.a.node.as_switch().unwrap();
            let b = l.b.node.as_switch().unwrap();
            let down = if a == up { b } else { a };
            adj[down.idx()].push(up.idx());
            indeg[up.idx()] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut removed = 0;
        while let Some(v) = stack.pop() {
            removed += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    stack.push(w);
                }
            }
        }
        assert_eq!(removed, n, "Up-direction subgraph has a cycle");
    }

    #[test]
    fn forbidden_transition_is_down_then_up() {
        assert!(Direction::Down.forbids(Direction::Up));
        assert!(!Direction::Up.forbids(Direction::Down));
        assert!(!Direction::Up.forbids(Direction::Up));
        assert!(!Direction::Down.forbids(Direction::Down));
    }
}

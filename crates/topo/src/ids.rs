//! Identifier newtypes for topology entities.
//!
//! Indices are deliberately narrow (`u16`/`u8`) per the hot-type guidance:
//! `Endpoint` and route hops are copied constantly inside the network model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a switch within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u16);

/// Index of a host within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u16);

/// Index of a link within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A port number within a node. Myrinet switch ports are identified by small
/// integers; the leading byte of a source route names the output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortIx(pub u8);

impl SwitchId {
    /// Usize view for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl HostId {
    /// Usize view for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl LinkId {
    /// Usize view for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl PortIx {
    /// Usize view for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}
impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}
impl fmt::Display for PortIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A node at the end of a link: either a switch or a host NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// An 8-port (by default) Myrinet switch.
    Switch(SwitchId),
    /// A host's network interface (single port).
    Host(HostId),
}

impl Node {
    /// The switch id, if this is a switch.
    pub fn as_switch(self) -> Option<SwitchId> {
        match self {
            Node::Switch(s) => Some(s),
            Node::Host(_) => None,
        }
    }
    /// The host id, if this is a host.
    pub fn as_host(self) -> Option<HostId> {
        match self {
            Node::Host(h) => Some(h),
            Node::Switch(_) => None,
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Switch(s) => write!(f, "{s}"),
            Node::Host(h) => write!(f, "{h}"),
        }
    }
}

/// Myrinet port/cable flavour. The paper's testbed mixes both: the M2FM-SW8
/// switch has 4 LAN and 4 SAN ports, and switch fall-through latency depends
/// on which kinds a packet traverses (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// System-area (short, fast) port.
    San,
    /// Local-area (long cable) port.
    Lan,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::San => write!(f, "SAN"),
            PortKind::Lan => write!(f, "LAN"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(SwitchId(3).to_string(), "sw3");
        assert_eq!(HostId(1).to_string(), "host1");
        assert_eq!(Node::Switch(SwitchId(2)).to_string(), "sw2");
        assert_eq!(Node::Host(HostId(0)).to_string(), "host0");
        assert_eq!(PortKind::San.to_string(), "SAN");
        assert_eq!(PortIx(5).to_string(), "p5");
    }

    #[test]
    fn node_projections() {
        assert_eq!(Node::Switch(SwitchId(4)).as_switch(), Some(SwitchId(4)));
        assert_eq!(Node::Switch(SwitchId(4)).as_host(), None);
        assert_eq!(Node::Host(HostId(2)).as_host(), Some(HostId(2)));
        assert_eq!(Node::Host(HostId(2)).as_switch(), None);
    }

    #[test]
    fn ids_are_small() {
        use std::mem::size_of;
        assert_eq!(size_of::<Node>(), 4);
        assert_eq!(size_of::<PortIx>(), 1);
    }
}

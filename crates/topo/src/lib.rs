//! # itb-topo — Myrinet cluster topologies
//!
//! Models the physical wiring layer of the paper's testbed and of the larger
//! irregular networks its motivation section refers to:
//!
//! * [`Topology`] — switches with typed ports (SAN/LAN), single-port hosts,
//!   and point-to-point links;
//! * [`builders`] — the Figure 6 three-host/two-switch testbed, plus chains,
//!   rings and the random irregular generator used by the loaded-network
//!   experiments;
//! * [`partition`] — the deterministic switch-graph partitioner feeding the
//!   sharded parallel engine (`itb_sim::par`): balanced shards, minimized
//!   edge cut, hosts pinned to their attachment switch;
//! * [`spanning`] — BFS spanning trees over the switch graph;
//! * [`updown`] — the up\*/down\* link orientation (up end = closer to the
//!   root; ties broken by lower switch id) that the routing crate enforces.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builders;
pub mod dot;
pub mod graph;
pub mod ids;
pub mod partition;
pub mod spanning;
pub mod updown;

pub use graph::{Endpoint, Link, Topology};
pub use ids::{HostId, LinkId, Node, PortIx, PortKind, SwitchId};
pub use partition::{partition, Partition, RegionFidelity, RegionPlan};
pub use spanning::SpanningTree;
pub use updown::UpDown;

//! BFS spanning trees over the switch graph.
//!
//! Up\*/down\* routing (Autonet, Myrinet) starts from a breadth-first
//! spanning tree rooted at a chosen switch; link directions are derived from
//! tree depth. The mapper in GM computes this from its network map; here we
//! compute it directly from the [`Topology`].

use crate::graph::Topology;
use crate::ids::{LinkId, SwitchId};
use std::collections::VecDeque;

/// How the mapper chooses the spanning-tree root. The root placement shapes
/// the whole up\*/down\* orientation: a central, well-connected root keeps
/// tree paths short, while a peripheral root worsens the detours and the
/// traffic funnel the ITB mechanism exists to fix — making this a natural
/// ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootPolicy {
    /// The switch with the most switch-to-switch cables (ties: lowest id) —
    /// the sensible default.
    HighestDegree,
    /// The lowest-numbered switch, regardless of connectivity (what naive
    /// mappers do).
    LowestId,
    /// The *least*-connected switch (ties: highest id) — the adversarial
    /// placement, used to bound how bad up\*/down\* can get.
    WorstCase,
    /// A specific switch.
    Explicit(SwitchId),
}

impl RootPolicy {
    /// Resolve the policy to a concrete switch.
    pub fn pick(self, topo: &Topology) -> SwitchId {
        match self {
            RootPolicy::HighestDegree => topo
                .switch_ids()
                .max_by_key(|&s| {
                    (
                        topo.switch_neighbors(s).count(),
                        usize::MAX - s.idx(), // prefer lower ids on ties
                    )
                })
                // detlint::allow(S001, spanning trees are built for validated topologies with switches)
                .expect("topology has no switches"),
            RootPolicy::LowestId => SwitchId(0),
            RootPolicy::WorstCase => topo
                .switch_ids()
                .min_by_key(|&s| (topo.switch_neighbors(s).count(), usize::MAX - s.idx()))
                // detlint::allow(S001, spanning trees are built for validated topologies with switches)
                .expect("topology has no switches"),
            RootPolicy::Explicit(s) => s,
        }
    }
}

/// A breadth-first spanning tree over the switch graph.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    root: SwitchId,
    /// BFS depth per switch (root = 0).
    depth: Vec<u32>,
    /// Tree parent per switch (root maps to itself).
    parent: Vec<SwitchId>,
    /// The link to the parent, `None` for the root.
    parent_link: Vec<Option<LinkId>>,
}

impl SpanningTree {
    /// Compute the BFS tree rooted at `root`.
    ///
    /// Neighbour exploration follows ascending port order, which — together
    /// with the deterministic topology builders — makes the tree (and hence
    /// the up\*/down\* orientation) a pure function of the wiring.
    ///
    /// # Panics
    /// Panics if some switch is unreachable from `root`; validate the
    /// topology first.
    pub fn compute(topo: &Topology, root: SwitchId) -> Self {
        let n = topo.num_switches();
        assert!(root.idx() < n, "root {root} out of range");
        let mut depth = vec![u32::MAX; n];
        let mut parent = vec![root; n];
        let mut parent_link = vec![None; n];
        let mut queue = VecDeque::new();
        depth[root.idx()] = 0;
        queue.push_back(root);
        while let Some(s) = queue.pop_front() {
            for (_, link, nbr) in topo.switch_neighbors(s) {
                if depth[nbr.idx()] == u32::MAX {
                    depth[nbr.idx()] = depth[s.idx()] + 1;
                    parent[nbr.idx()] = s;
                    parent_link[nbr.idx()] = Some(link);
                    queue.push_back(nbr);
                }
            }
        }
        assert!(
            depth.iter().all(|&d| d != u32::MAX),
            "switch graph not connected; run Topology::validate first"
        );
        SpanningTree {
            root,
            depth,
            parent,
            parent_link,
        }
    }

    /// Pick the conventional root — the switch of highest degree (most
    /// switch-to-switch cables), ties to the lowest id — and build the tree.
    pub fn compute_default(topo: &Topology) -> Self {
        Self::compute(topo, RootPolicy::HighestDegree.pick(topo))
    }

    /// Build the tree with an explicit root policy.
    pub fn compute_with_policy(topo: &Topology, policy: RootPolicy) -> Self {
        Self::compute(topo, policy.pick(topo))
    }

    /// The tree root.
    pub fn root(&self) -> SwitchId {
        self.root
    }
    /// BFS depth of a switch (root = 0).
    pub fn depth(&self, s: SwitchId) -> u32 {
        self.depth[s.idx()]
    }
    /// Tree parent (root returns itself).
    pub fn parent(&self, s: SwitchId) -> SwitchId {
        self.parent[s.idx()]
    }
    /// Link to the tree parent (`None` at the root).
    pub fn parent_link(&self, s: SwitchId) -> Option<LinkId> {
        self.parent_link[s.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itb_sim::SimDuration;

    /// A 4-switch diamond: 0-1, 0-2, 1-3, 2-3.
    fn diamond() -> Topology {
        let mut t = Topology::new();
        let s: Vec<_> = (0..4).map(|_| t.add_switch_uniform(4)).collect();
        let d = SimDuration::from_ns(10);
        t.connect_switches(s[0], 0, s[1], 0, d).unwrap();
        t.connect_switches(s[0], 1, s[2], 0, d).unwrap();
        t.connect_switches(s[1], 1, s[3], 0, d).unwrap();
        t.connect_switches(s[2], 1, s[3], 1, d).unwrap();
        t
    }

    #[test]
    fn bfs_depths() {
        let t = diamond();
        let tree = SpanningTree::compute(&t, SwitchId(0));
        assert_eq!(tree.root(), SwitchId(0));
        assert_eq!(tree.depth(SwitchId(0)), 0);
        assert_eq!(tree.depth(SwitchId(1)), 1);
        assert_eq!(tree.depth(SwitchId(2)), 1);
        assert_eq!(tree.depth(SwitchId(3)), 2);
    }

    #[test]
    fn parents_follow_port_order() {
        let t = diamond();
        let tree = SpanningTree::compute(&t, SwitchId(0));
        // Switch 3 is discovered from switch 1 (explored before 2).
        assert_eq!(tree.parent(SwitchId(3)), SwitchId(1));
        assert_eq!(tree.parent(SwitchId(0)), SwitchId(0));
        assert!(tree.parent_link(SwitchId(0)).is_none());
        assert!(tree.parent_link(SwitchId(3)).is_some());
    }

    #[test]
    fn default_root_is_highest_degree() {
        // Star: switch 0 center with 3 leaves → center has degree 3.
        let mut t = Topology::new();
        let c = t.add_switch_uniform(8);
        for _ in 0..3 {
            let leaf = t.add_switch_uniform(4);
            let port = t.switch_ports(c).find(|(_, _, l)| l.is_none()).unwrap().0;
            t.connect_switches(c, port.0, leaf, 0, SimDuration::ZERO)
                .unwrap();
        }
        let tree = SpanningTree::compute_default(&t);
        assert_eq!(tree.root(), c);
    }

    #[test]
    fn default_root_ties_break_low() {
        // Two switches, one cable: equal degree → lower id wins.
        let mut t = Topology::new();
        let s0 = t.add_switch_uniform(2);
        let s1 = t.add_switch_uniform(2);
        t.connect_switches(s0, 0, s1, 0, SimDuration::ZERO).unwrap();
        assert_eq!(SpanningTree::compute_default(&t).root(), s0);
    }

    #[test]
    fn determinism() {
        let t = diamond();
        let a = SpanningTree::compute(&t, SwitchId(0));
        let b = SpanningTree::compute(&t, SwitchId(0));
        for s in t.switch_ids() {
            assert_eq!(a.parent(s), b.parent(s));
            assert_eq!(a.depth(s), b.depth(s));
        }
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_panics() {
        let mut t = Topology::new();
        t.add_switch_uniform(2);
        t.add_switch_uniform(2);
        SpanningTree::compute(&t, SwitchId(0));
    }
}

//! Property-based tests for the large-topology generators feeding the
//! hybrid flow/packet engine: fat-trees, folded-Clos fabrics and the big
//! seeded irregulars must be connected, carry the radix/level/host counts
//! their parameters promise, and be byte-for-byte reproducible per seed.

use itb_topo::builders::{clos, fat_tree, irregular_big};
use itb_topo::{SwitchId, Topology};
use proptest::prelude::*;

/// Canonical wire-level serialization of a topology: every link's endpoints
/// and propagation delay in link-id order, plus the switch/host rosters.
/// Two topologies with equal bytes have identical adjacency — the
/// determinism contract the seeded generators must satisfy.
fn adjacency_bytes(topo: &Topology) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(&format!(
        "sw={} hosts={};",
        topo.num_switches(),
        topo.num_hosts()
    ));
    for s in topo.switch_ids() {
        out.push_str(&format!("p{}={};", s.idx(), topo.switch_port_count(s)));
    }
    for lid in topo.link_ids() {
        let l = topo.link(lid);
        out.push_str(&format!(
            "{:?}:{:?}->{:?}:{:?}@{}ps;",
            l.a.node,
            l.a.port,
            l.b.node,
            l.b.port,
            l.propagation.as_ps()
        ));
    }
    out.into_bytes()
}

/// BFS over the switch graph from switch 0: every switch must be reachable.
fn switch_graph_connected(topo: &Topology) -> bool {
    let n = topo.num_switches();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut frontier = vec![0usize];
    seen[0] = true;
    while let Some(u) = frontier.pop() {
        for (_, _, v) in topo.switch_neighbors(SwitchId(u as u16)) {
            if !seen[v.idx()] {
                seen[v.idx()] = true;
                frontier.push(v.idx());
            }
        }
    }
    seen.into_iter().all(|b| b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A k-ary fat-tree has (k/2)^2 cores, k pods of k switches, k^3/4
    /// hosts; cores and aggregations carry k switch links, edges carry k/2
    /// switch links plus k/2 hosts; the switch graph is connected.
    #[test]
    fn fat_tree_shape_and_connectivity(half in 1usize..=4) {
        let k = half * 2;
        let topo = fat_tree(k);
        let cores = half * half;
        prop_assert_eq!(topo.num_switches(), cores + k * k);
        prop_assert_eq!(topo.num_hosts(), k * half * half);
        prop_assert!(switch_graph_connected(&topo));
        for s in topo.switch_ids() {
            let nbrs = topo.switch_neighbors(s).count();
            let hosts = topo.hosts_at(s).len();
            if s.idx() < cores {
                // Core: one downlink per pod, no hosts.
                prop_assert_eq!(nbrs, k);
                prop_assert_eq!(hosts, 0);
            } else {
                // Pods are laid out aggs-then-edges, k/2 of each.
                let in_pod = (s.idx() - cores) % k;
                if in_pod < half {
                    prop_assert_eq!(nbrs, k);
                    prop_assert_eq!(hosts, 0);
                } else {
                    prop_assert_eq!(nbrs, half);
                    prop_assert_eq!(hosts, half);
                }
            }
        }
    }

    /// A folded Clos wires every leaf to every spine exactly once, puts all
    /// hosts on leaves, and is connected whenever both tiers are non-empty.
    #[test]
    fn clos_shape_and_connectivity(
        (leaves, spines, hosts_per_leaf) in (2usize..=8, 1usize..=4, 1usize..=4),
    ) {
        let topo = clos(leaves, spines, hosts_per_leaf);
        prop_assert_eq!(topo.num_switches(), spines + leaves);
        prop_assert_eq!(topo.num_hosts(), leaves * hosts_per_leaf);
        prop_assert_eq!(topo.num_links(), leaves * spines + leaves * hosts_per_leaf);
        prop_assert!(switch_graph_connected(&topo));
        for s in topo.switch_ids() {
            let nbrs = topo.switch_neighbors(s).count();
            let hosts = topo.hosts_at(s).len();
            if s.idx() < spines {
                prop_assert_eq!(nbrs, leaves);
                prop_assert_eq!(hosts, 0);
            } else {
                prop_assert_eq!(nbrs, spines);
                prop_assert_eq!(hosts, hosts_per_leaf);
            }
        }
    }

    /// The seeded irregular generator at evaluation host density: connected,
    /// right roster sizes, and byte-identical adjacency per (size, seed) —
    /// the reproducibility contract the 1024-switch scenario pins.
    #[test]
    fn irregular_big_deterministic_and_connected(
        (switches, seed) in (4usize..=48, any::<u64>()),
    ) {
        let a = irregular_big(switches, seed);
        prop_assert_eq!(a.num_switches(), switches);
        // Evaluation density: 4 hosts per switch.
        prop_assert_eq!(a.num_hosts(), switches * 4);
        prop_assert!(switch_graph_connected(&a));
        let b = irregular_big(switches, seed);
        prop_assert_eq!(adjacency_bytes(&a), adjacency_bytes(&b));
        // A different seed must not (generically) reproduce the same wiring;
        // tiny graphs can collide, so only check at a size with room.
        if switches >= 12 {
            let c = irregular_big(switches, seed ^ 0xD1CE);
            prop_assert!(adjacency_bytes(&a) != adjacency_bytes(&c));
        }
    }

    /// The structured generators are pure functions of their parameters.
    #[test]
    fn structured_generators_deterministic(half in 1usize..=3) {
        let k = half * 2;
        prop_assert_eq!(adjacency_bytes(&fat_tree(k)), adjacency_bytes(&fat_tree(k)));
        prop_assert_eq!(
            adjacency_bytes(&clos(k, half, 2)),
            adjacency_bytes(&clos(k, half, 2))
        );
    }
}

//! Property-based tests for the topology partitioner (proptest): the
//! invariants the sharded PDES engine relies on must hold on arbitrary
//! connected irregular networks, for any shard request.

use itb_topo::builders::{random_irregular, IrregularSpec};
use itb_topo::{partition, Topology};
use proptest::prelude::*;

/// Strategy: irregular-network size/seed plus a shard request (possibly
/// larger than the switch count — the partitioner must clamp).
fn part_case() -> impl Strategy<Value = (usize, u64, usize)> {
    (3usize..=16, any::<u64>(), 1usize..=24)
}

fn build(switches: usize, seed: u64) -> Topology {
    random_irregular(&IrregularSpec::evaluation_default(switches, seed))
}

/// Minimum propagation delay over every link in the topology — a lower
/// bound for any cut's minimum.
fn global_min_prop(topo: &Topology) -> itb_sim::SimDuration {
    topo.link_ids()
        .map(|lid| topo.link(lid).propagation)
        .min()
        .expect("topology has links")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every switch and host lands in exactly one in-range shard, hosts
    /// follow their attachment switch, and no shard is empty.
    #[test]
    fn assignment_is_complete_and_nonempty((switches, seed, shards) in part_case()) {
        let topo = build(switches, seed);
        let part = partition(&topo, shards, seed);
        prop_assert!(part.shards >= 1);
        prop_assert!(part.shards as usize <= shards.min(topo.num_switches()));
        prop_assert_eq!(part.shard_of_switch.len(), topo.num_switches());
        prop_assert_eq!(part.shard_of_host.len(), topo.num_hosts());
        let mut seen = vec![false; part.shards as usize];
        for s in topo.switch_ids() {
            let sh = part.shard_of(s);
            prop_assert!(sh < part.shards);
            seen[sh as usize] = true;
            for h in topo.hosts_at(s) {
                prop_assert_eq!(part.host_shard(h), sh);
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "empty shard: {:?}", seen);
    }

    /// The cut-link list is exactly the set of switch-to-switch links whose
    /// endpoints land in different shards (host cables never cross), and
    /// its recorded minimum propagation — the PDES lookahead input — is
    /// correct and no smaller than the global link minimum.
    #[test]
    fn cut_links_and_lookahead_are_consistent((switches, seed, shards) in part_case()) {
        let topo = build(switches, seed);
        let part = partition(&topo, shards, seed);
        let mut expect_cut = Vec::new();
        let mut min_prop = None;
        for lid in topo.link_ids() {
            let link = topo.link(lid);
            // Host cables can never be cut: both ends share a shard by
            // the host-follows-switch rule.
            if let (Some(a), Some(b)) = (link.a.node.as_switch(), link.b.node.as_switch()) {
                if part.shard_of(a) != part.shard_of(b) {
                    expect_cut.push(lid);
                    min_prop = Some(match min_prop {
                        None => link.propagation,
                        Some(m) if link.propagation < m => link.propagation,
                        Some(m) => m,
                    });
                }
            }
        }
        prop_assert_eq!(&part.cut_links, &expect_cut);
        prop_assert_eq!(part.edge_cut, expect_cut.len());
        prop_assert_eq!(part.min_cut_propagation, min_prop);
        if let Some(m) = part.min_cut_propagation {
            prop_assert!(m >= global_min_prop(&topo));
        }
    }

    /// Same inputs, same partition — the partitioner is a pure function of
    /// (topology, shard request, seed).
    #[test]
    fn partition_is_deterministic((switches, seed, shards) in part_case()) {
        let topo = build(switches, seed);
        let a = partition(&topo, shards, seed);
        let b = partition(&topo, shards, seed);
        prop_assert_eq!(a.shard_of_switch, b.shard_of_switch);
        prop_assert_eq!(a.shard_of_host, b.shard_of_host);
        prop_assert_eq!(a.cut_links, b.cut_links);
        prop_assert_eq!(a.min_cut_propagation, b.min_cut_propagation);
    }
}

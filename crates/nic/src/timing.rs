//! Cycle-cost model of the MCP firmware.
//!
//! The LANai's on-chip RISC processor executes the MCP; we price each
//! handler block in processor cycles at the LANai-7 clock (66 MHz,
//! 15.151 ns/cycle). The defaults are calibrated so the two quantities the
//! paper measures come out at the published values:
//!
//! * **ITB support overhead** (Figure 7): the modified MCP's longer receive
//!   path costs [`McpTiming::itb_support_extra`] cycles on every received
//!   packet (≈ 8 cycles ≈ 121 ns ≈ the paper's 125 ns average), plus
//!   CPU-contention effects for very short packets whose tail arrives while
//!   the Early-Recv handler still runs (the paper's ≤ 300 ns ceiling);
//! * **per-ITB forwarding delay** (Figure 8): detect + reprogram + DMA
//!   start sums to ≈ 1.25 µs at the NIC; with the extra host-cable traversal
//!   the measured path difference lands at the paper's ≈ 1.3 µs.

use itb_sim::{Bandwidth, SimDuration};
use serde::{Deserialize, Serialize};

/// All firmware and host-interface timing constants of one NIC.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct McpTiming {
    /// LANai processor cycle time.
    pub cycle: SimDuration,
    /// Event-handler dispatch latency, in cycles (state save + priority
    /// scan + branch).
    pub dispatch_cycles: u32,
    /// Early-Recv type check, in cycles (read the two type bytes and
    /// compare — the paper's fast ITB detection).
    pub early_check_cycles: u32,
    /// Extra cycles the ITB-enabled firmware spends in the ordinary receive
    /// path (longer dispatch tables/flag checks) — the Figure 7 overhead.
    pub itb_support_extra_cycles: u32,
    /// Programming the send DMA for an in-transit re-injection, in cycles
    /// (header rewrite bookkeeping + DMA registers).
    pub itb_program_cycles: u32,
    /// Programming the send DMA for an ordinary send, in cycles.
    pub send_program_cycles: u32,
    /// Receive-completion bookkeeping (buffer accounting, CRC status,
    /// RDMA programming), in cycles.
    pub recv_finish_cycles: u32,
    /// Completion processing after the last RDMA chunk (recv-token update,
    /// host notification), in cycles.
    pub recv_deliver_cycles: u32,
    /// Send-DMA engine start latency (fetch descriptor, arbitration) —
    /// pure hardware, applies after the programming handler retires.
    pub dma_start: SimDuration,
    /// Host I/O bus (PCI) burst bandwidth for the host DMA engine.
    pub pci_bw: Bandwidth,
    /// Host DMA per-transfer setup cost.
    pub dma_setup: SimDuration,
    /// Host DMA chunk size in bytes (SDMA/RDMA transfers are split into
    /// chunks so send and receive share the engine fairly).
    pub dma_chunk: u32,
    /// SRAM send buffers (stock MCP: 2).
    pub send_buffers: u8,
    /// SRAM receive buffers (stock MCP: 2; the paper's proposed circular
    /// pool is modelled by raising this).
    pub recv_buffers: u8,
    /// LANai SRAM contention: the on-chip processor is the lowest-priority
    /// memory master (§3: host I/O bus > packet DMAs > CPU, two accesses
    /// per clock), so firmware handlers run slower while the host DMA is
    /// moving data. Percentage slowdown applied to handler cycles while a
    /// host-DMA transfer is in flight; 0 disables the effect (the default —
    /// the headline calibration folds average contention into the block
    /// costs, and this knob exposes the mechanism for sensitivity studies).
    pub sram_contention_pct: u32,
    /// What happens when a packet arrives and no receive buffer is free:
    /// `false` (stock GM) = assert receive flow control and stall the wire
    /// until a buffer frees; `true` (the paper's §4 circular-pool policy
    /// for in-transit traffic) = flush the packet and let GM retransmit.
    /// Flushing is mandatory for in-transit pools under load — stalling
    /// would reintroduce the channel dependency the ITB just broke.
    pub flush_on_overflow: bool,
}

impl McpTiming {
    /// Defaults for the testbed NICs (LANai 7 at 66 MHz on 64-bit/33 MHz
    /// PCI). See DESIGN.md §5 for the calibration story.
    pub fn lanai7() -> Self {
        McpTiming {
            cycle: SimDuration::from_ps(15_151),
            dispatch_cycles: 10,   // ≈ 152 ns
            early_check_cycles: 8, // ≈ 121 ns
            itb_support_extra_cycles: 8,
            itb_program_cycles: 48, // ≈ 727 ns
            send_program_cycles: 40,
            recv_finish_cycles: 45, // ≈ 682 ns
            recv_deliver_cycles: 30,
            dma_start: SimDuration::from_ns(230),
            pci_bw: Bandwidth::from_mbytes_per_sec(264),
            dma_setup: SimDuration::from_ns(150),
            dma_chunk: 1024,
            send_buffers: 2,
            recv_buffers: 2,
            flush_on_overflow: false,
            sram_contention_pct: 0,
        }
    }

    /// Cost of `n` cycles.
    #[inline]
    pub fn cycles(&self, n: u32) -> SimDuration {
        self.cycle * u64::from(n)
    }

    /// Expected ITB forwarding latency at an in-transit NIC: Early-Recv
    /// dispatch + type check + send-DMA programming + DMA start. This is
    /// the firmware part of the paper's ~1.3 µs (the rest is the extra host
    /// cable the detour adds).
    pub fn itb_forward_latency(&self) -> SimDuration {
        self.cycles(self.dispatch_cycles + self.early_check_cycles + self.itb_program_cycles)
            + self.dma_start
    }

    /// The constant receive-path cost of merely supporting ITBs — the
    /// Figure 7 overhead.
    pub fn itb_support_overhead(&self) -> SimDuration {
        self.cycles(self.itb_support_extra_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanai7_cycle_time() {
        let t = McpTiming::lanai7();
        // 66 MHz → 15.15 ns.
        assert!((t.cycle.as_ns_f64() - 15.15).abs() < 0.01);
        assert_eq!(t.cycles(2), t.cycle * 2);
    }

    #[test]
    fn calibration_matches_paper_figures() {
        let t = McpTiming::lanai7();
        let support = t.itb_support_overhead().as_ns_f64();
        assert!(
            (support - 125.0).abs() < 15.0,
            "Fig 7 support overhead should be ≈125 ns, got {support}"
        );
        let fwd = t.itb_forward_latency().as_us_f64();
        assert!(
            (1.0..1.35).contains(&fwd),
            "Fig 8 firmware forward latency should be ≈1.25 us, got {fwd}"
        );
    }

    #[test]
    fn stock_buffer_counts() {
        let t = McpTiming::lanai7();
        assert_eq!(t.send_buffers, 2);
        assert_eq!(t.recv_buffers, 2);
    }
}

//! The Myrinet Control Program model: SDMA / Send / Recv / RDMA state
//! machines on one firmware CPU, in original and ITB-extended flavours.
//!
//! Control flow follows the paper's Figures 4 and 5:
//!
//! * **Send path** — a host send request stages the packet into an SRAM
//!   send buffer via chunked host-DMA (SDMA), then the Send machine
//!   programs the packet send DMA and the network serializes the packet.
//! * **Recv path** — an arriving packet streams into a receive buffer; on
//!   the tail the Recv machine runs completion bookkeeping, RDMA drains the
//!   buffer to host memory, and the host is notified.
//! * **ITB path** (flavour [`McpFlavor::Itb`]) — the LANai raises the
//!   *Early Recv Packet* event when the first four bytes arrive; the
//!   handler checks the type bytes. For an ITB packet, if the send DMA is
//!   free the handler immediately reprograms it and re-injection starts
//!   while the packet is still being received (virtual cut-through); if
//!   busy, the *ITB packet pending* flag defers the re-injection to the
//!   moment the send DMA frees, at high priority. Reception continues to
//!   completion regardless, per the paper: if the re-injected packet is
//!   stopped by flow control, the remainder waits in its buffer.

use crate::dma::HostDma;
use crate::events::{CpuWork, DmaJob, NicEvent, NicOutput, NicSched, SendToken};
use crate::stats::NicStats;
use crate::timing::McpTiming;
use itb_net::{HostIndication, NetSched, Network, PacketDesc, PacketId};
use itb_obs::Stage;
use itb_routing::wire::{TYPE_GM, TYPE_ITB};
use itb_sim::{narrow, FxHashMap, SimTime};
use itb_topo::HostId;
use std::collections::VecDeque;

/// Which firmware runs on this NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McpFlavor {
    /// Stock GM-1.2pre16 control program.
    Original,
    /// The paper's modified control program with ITB support.
    Itb,
}

/// A queued host send request.
#[derive(Debug)]
struct SendJob {
    token: SendToken,
    /// Pre-reserved network packet id, so `host.inject` is traced against
    /// the id the packet will carry once it actually enters the wire.
    packet: PacketId,
    desc: Option<PacketDesc>,
    wire_len: u32,
    staged: u32,
    staging: bool,
}

/// Receive-side state of one in-flight packet at this NIC.
#[derive(Debug)]
struct RecvState {
    received: u32,
    complete: bool,
    kind: RecvKind,
    /// Whether this reception holds one of the SRAM receive buffers (false
    /// for flushed/deferred packets, whose bytes go on the floor / wait on
    /// the wire). Keeps buffer accounting exact across crash flushes.
    owns_buffer: bool,
}

#[derive(Debug, PartialEq, Eq)]
enum RecvKind {
    /// Waiting for a receive buffer; the wire into this host is paused
    /// (receive flow control). Admitted when a buffer frees.
    Deferred,
    /// Type not yet examined (head just arrived).
    Unknown,
    /// Ordinary GM packet destined for this host.
    Normal,
    /// In-transit packet being (or about to be) re-injected.
    InTransit { injecting: bool },
    /// Dropped for lack of a receive buffer; bytes are discarded.
    Flushed,
}

/// SRAM buffer accounting of one NIC at a point in time (see
/// [`Nic::buffer_audit`]). The receive-pool invariant every healthy run
/// must satisfy is `recv_free + recv_owned == recv_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicBufferAudit {
    /// Receive-pool capacity.
    pub recv_total: u64,
    /// Free receive buffers.
    pub recv_free: u64,
    /// Receive buffers owned by live receptions (`owns_buffer`).
    pub recv_owned: u64,
    /// Send-pool capacity.
    pub send_total: u64,
    /// Free send buffers.
    pub send_free: u64,
    /// In-transit packets still awaiting the send DMA.
    pub itb_pending: u64,
    /// Arrivals deferred for lack of a receive buffer.
    pub deferred_heads: u64,
}

/// One network adapter: LANai + MCP.
pub struct Nic {
    // detlint::allow(T003, identity: fixed at construction; the digest covers one NIC per host in index order)
    host: HostId,
    // detlint::allow(T003, per-run firmware selection: fixed at construction and never mutated)
    flavor: McpFlavor,
    // detlint::allow(T003, per-run timing constants: fixed at construction and never mutated)
    timing: McpTiming,
    /// Firmware CPU availability (handlers serialize on this).
    cpu_free_at: SimTime,
    dma: HostDma,
    send_queue: VecDeque<SendJob>,
    send_buffers_free: u8,
    recv_buffers_free: u8,
    recv: FxHashMap<u64, RecvState>,
    /// The paper's "ITB packet pending" flag (a queue, since several may
    /// arrive while the send DMA is busy).
    itb_pending: VecDeque<PacketId>,
    /// Packets whose head arrived while no buffer was free (backpressure
    /// mode); admitted in arrival order as buffers free up.
    deferred_heads: VecDeque<PacketId>,
    /// Crashed (fault injection): the firmware is dead; every arriving
    /// packet is discarded until [`Nic::recover`].
    crashed: bool,
    outputs: Vec<NicOutput>,
    // detlint::allow(T003, diagnostics counters: never read by a transition)
    stats: NicStats,
}

impl Nic {
    /// A NIC for `host` running `flavor` firmware with `timing` constants.
    pub fn new(host: HostId, flavor: McpFlavor, timing: McpTiming) -> Self {
        Nic {
            host,
            flavor,
            cpu_free_at: SimTime::ZERO,
            dma: HostDma::new(),
            send_queue: VecDeque::new(),
            send_buffers_free: timing.send_buffers,
            recv_buffers_free: timing.recv_buffers,
            recv: FxHashMap::default(),
            itb_pending: VecDeque::new(),
            deferred_heads: VecDeque::new(),
            crashed: false,
            outputs: Vec::new(),
            timing,
            stats: NicStats::default(),
        }
    }

    /// This NIC's host.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Firmware flavour.
    pub fn flavor(&self) -> McpFlavor {
        self.flavor
    }

    /// Counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Whether this NIC is currently crashed (fault injection).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Point-in-time SRAM buffer accounting for the end-of-run leak audit:
    /// every receive buffer must be either free or owned by a live
    /// reception (`owns_buffer`), through every path including crash
    /// flushes and deferred heads. Send buffers are audited against the
    /// queued/staging send jobs holding them.
    pub fn buffer_audit(&self) -> NicBufferAudit {
        NicBufferAudit {
            recv_total: u64::from(self.timing.recv_buffers),
            recv_free: u64::from(self.recv_buffers_free),
            recv_owned: self.recv.values().filter(|r| r.owns_buffer).count() as u64,
            send_total: u64::from(self.timing.send_buffers),
            send_free: u64::from(self.send_buffers_free),
            itb_pending: self.itb_pending.len() as u64,
            deferred_heads: self.deferred_heads.len() as u64,
        }
    }

    /// Fold every behavioral field of this NIC — CPU availability, DMA
    /// engine, send jobs, receive-pool ownership, pending/deferred queues
    /// and the crash flag — into a model-checker digest. Receptions are
    /// folded in packet-id order so the hash-map iteration order never
    /// leaks in. Pure counters ([`Nic::stats`]) are excluded: they never
    /// influence a future transition.
    pub fn state_digest(&self, d: &mut itb_sim::Digest) {
        d.bool(self.crashed);
        d.u64(self.cpu_free_at.as_ps());
        d.u8(self.send_buffers_free);
        d.u8(self.recv_buffers_free);
        self.dma.state_digest(d);
        d.usize(self.send_queue.len());
        for j in &self.send_queue {
            d.u64(j.token);
            d.u64(j.packet.0);
            d.bool(j.desc.is_some());
            d.u32(j.wire_len);
            d.u32(j.staged);
            d.bool(j.staging);
        }
        let mut ids: Vec<u64> = self.recv.keys().copied().collect();
        ids.sort_unstable();
        d.usize(ids.len());
        for id in ids {
            let st = &self.recv[&id];
            d.u64(id);
            d.u32(st.received);
            d.bool(st.complete);
            match st.kind {
                RecvKind::Deferred => d.u8(0),
                RecvKind::Unknown => d.u8(1),
                RecvKind::Normal => d.u8(2),
                RecvKind::InTransit { injecting } => {
                    d.u8(3);
                    d.bool(injecting);
                }
                RecvKind::Flushed => d.u8(4),
            }
            d.bool(st.owns_buffer);
        }
        d.usize(self.itb_pending.len());
        for p in &self.itb_pending {
            d.u64(p.0);
        }
        d.usize(self.deferred_heads.len());
        for p in &self.deferred_heads {
            d.u64(p.0);
        }
        d.usize(self.outputs.len());
    }

    /// Debug: in-transit packets awaiting the send DMA.
    pub fn pending_itb_len(&self) -> usize {
        self.itb_pending.len()
    }

    /// Debug: queued/staging host sends.
    pub fn send_queue_len(&self) -> usize {
        self.send_queue.len()
    }

    /// Debug: free SRAM send buffers.
    pub fn send_buffers_free(&self) -> u8 {
        self.send_buffers_free
    }

    /// Debug: (token, staging, staged, wire_len, desc_taken) per send job.
    pub fn send_queue_debug(&self) -> Vec<(u64, bool, u32, u32, bool)> {
        self.send_queue
            .iter()
            .map(|j| (j.token, j.staging, j.staged, j.wire_len, j.desc.is_none()))
            .collect()
    }

    /// Debug: receive-side state summary for a packet, if tracked.
    pub fn recv_state_debug(&self, id: itb_net::PacketId) -> Option<String> {
        self.recv.get(&id.0).map(|st| format!("{st:?}"))
    }

    /// Drain outputs for the GM layer.
    pub fn take_outputs(&mut self) -> Vec<NicOutput> {
        std::mem::take(&mut self.outputs)
    }

    /// Append pending outputs to `buf`, keeping this NIC's buffer capacity.
    /// The cluster event loop prefers this over [`Nic::take_outputs`]: no
    /// per-event allocation.
    pub fn drain_outputs_into(&mut self, buf: &mut Vec<NicOutput>) {
        buf.append(&mut self.outputs);
    }

    /// Occupy the CPU for `cycles` starting no earlier than `now`; returns
    /// the completion time. While the host DMA moves data, the processor —
    /// the lowest-priority SRAM master — is slowed by the configured
    /// contention factor.
    fn run_cpu(&mut self, now: SimTime, cycles: u32) -> SimTime {
        let cycles = if self.dma.is_busy() && self.timing.sram_contention_pct > 0 {
            cycles + cycles * self.timing.sram_contention_pct / 100
        } else {
            cycles
        };
        let start = now.max(self.cpu_free_at);
        let done = start + self.timing.cycles(cycles);
        self.cpu_free_at = done;
        done
    }

    // ------------------------------------------------------------------
    // Host (GM) entry points
    // ------------------------------------------------------------------

    /// Submit one packet for transmission. The GM layer has already encoded
    /// the header from its route table.
    pub fn submit_send<S>(
        &mut self,
        token: SendToken,
        desc: PacketDesc,
        now: SimTime,
        net: &mut Network,
        sched: &mut S,
    ) where
        S: NicSched + NetSched,
    {
        let wire_len = narrow::<u32, _>(desc.header.len()) + desc.payload_len + 1;
        let packet = net.allocate_packet_id();
        net.trace(packet, Stage::HostInject, u32::from(self.host.0), now);
        self.send_queue.push_back(SendJob {
            token,
            packet,
            desc: Some(desc),
            wire_len,
            staged: 0,
            staging: false,
        });
        self.pump_sdma(now, sched);
    }

    /// Start staging queued sends into free SRAM buffers (as many as fit).
    fn pump_sdma<S: NicSched>(&mut self, now: SimTime, sched: &mut S) {
        loop {
            if self.send_buffers_free == 0 {
                return;
            }
            let Some(job) = self.send_queue.iter_mut().find(|j| !j.staging) else {
                return;
            };
            self.send_buffers_free -= 1;
            job.staging = true;
            let token = job.token;
            let total = job.wire_len;
            // Queue the SDMA chunks.
            let chunk = self.timing.dma_chunk;
            let mut off = 0;
            while off < total {
                let bytes = chunk.min(total - off);
                off += bytes;
                let jobd = DmaJob::SdmaChunk {
                    token,
                    bytes,
                    last: off == total,
                };
                if let Some((j, done)) = self.dma.submit(jobd, now, &self.timing) {
                    sched.nic_at(
                        done,
                        NicEvent::Dma {
                            host: self.host,
                            job: j,
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection: NIC crash
    // ------------------------------------------------------------------

    /// Crash this NIC: the firmware dies on the spot. Every reception it
    /// holds that is not already committed downstream is flushed — pending
    /// in-transit forwards, unclassified heads and deferred packets — and
    /// until [`Nic::recover`] every arriving packet is discarded. This is
    /// the paper's in-transit host failure scenario: packets parked in the
    /// ITB host's buffers are simply lost and GM retransmission recovers
    /// them. Packets already re-injecting (bytes on the wire, cut-through)
    /// and packets already in the host RDMA path run to completion; a
    /// wormhole cannot be un-sent.
    pub fn crash<S>(&mut self, now: SimTime, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        if self.crashed {
            return;
        }
        self.crashed = true;
        // Pending forwards never happen; their receptions flush below.
        self.itb_pending.clear();
        self.deferred_heads.clear();
        let victims: Vec<u64> = self
            .recv
            .iter()
            .filter(|(_, st)| {
                matches!(
                    st.kind,
                    RecvKind::Unknown
                        | RecvKind::Deferred
                        | RecvKind::InTransit { injecting: false }
                )
            })
            .map(|(&k, _)| k)
            .collect();
        for k in victims {
            self.flush_for_crash(PacketId(k), now, net, sched);
        }
        // A dead NIC exerts no backpressure: bytes stream in and burn.
        net.set_host_rx_paused(self.host, false, now, sched);
    }

    /// Bring a crashed NIC back with empty queues and a full buffer pool
    /// view (the state it crashed with was flushed at crash time).
    pub fn recover(&mut self) {
        self.crashed = false;
    }

    /// Flush one held reception at crash time, recycling its buffer if it
    /// owned one.
    fn flush_for_crash<S>(
        &mut self,
        packet: PacketId,
        now: SimTime,
        net: &mut Network,
        sched: &mut S,
    ) where
        S: NicSched + NetSched,
    {
        let Some(st) = self.recv.get_mut(&packet.0) else {
            return;
        };
        let owned = st.owns_buffer;
        let complete = st.complete;
        st.kind = RecvKind::Flushed;
        st.owns_buffer = false;
        self.stats.crash_flushes += 1;
        self.outputs.push(NicOutput::Flushed {
            host: self.host,
            packet,
        });
        if complete {
            self.recv.remove(&packet.0);
            net.retire(packet);
        }
        if owned {
            self.on_buffer_freed(now, net, sched);
        }
    }

    // ------------------------------------------------------------------
    // Network indications
    // ------------------------------------------------------------------

    /// Route one network indication for this host into the firmware.
    pub fn on_indication<S>(
        &mut self,
        ind: HostIndication,
        now: SimTime,
        net: &mut Network,
        sched: &mut S,
    ) where
        S: NicSched + NetSched,
    {
        match ind {
            HostIndication::HeadArrived { packet, .. } => self.on_head(packet, now, net, sched),
            HostIndication::BytesArrived {
                packet, received, ..
            } => self.on_bytes(packet, received, now, net, sched),
            HostIndication::PacketComplete {
                packet, received, ..
            } => self.on_complete(packet, received, now, net, sched),
            HostIndication::InjectionComplete { packet, .. } => {
                self.on_injection_complete(packet, now, net, sched)
            }
        }
    }

    fn on_head<S>(&mut self, packet: PacketId, now: SimTime, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        // A crashed NIC discards everything that reaches it.
        if self.crashed {
            self.recv.insert(
                packet.0,
                RecvState {
                    received: 0,
                    complete: false,
                    kind: RecvKind::Flushed,
                    owns_buffer: false,
                },
            );
            self.stats.crash_flushes += 1;
            self.outputs.push(NicOutput::Flushed {
                host: self.host,
                packet,
            });
            return;
        }
        // Buffer admission happens at the head.
        if self.recv_buffers_free == 0 {
            if self.timing.flush_on_overflow {
                // The paper's circular-pool policy: drop and let GM resend.
                self.recv.insert(
                    packet.0,
                    RecvState {
                        received: 0,
                        complete: false,
                        kind: RecvKind::Flushed,
                        owns_buffer: false,
                    },
                );
                self.stats.flushed += 1;
                self.outputs.push(NicOutput::Flushed {
                    host: self.host,
                    packet,
                });
            } else {
                // Stock GM: assert receive flow control; the wire stalls
                // until a buffer is programmed.
                self.recv.insert(
                    packet.0,
                    RecvState {
                        received: 0,
                        complete: false,
                        kind: RecvKind::Deferred,
                        owns_buffer: false,
                    },
                );
                self.deferred_heads.push_back(packet);
                self.stats.rx_stalls += 1;
                net.set_host_rx_paused(self.host, true, now, sched);
            }
            return;
        }
        self.recv_buffers_free -= 1;
        self.recv.insert(
            packet.0,
            RecvState {
                received: 0,
                complete: false,
                kind: RecvKind::Unknown,
                owns_buffer: true,
            },
        );
        self.classify(packet, now, net, sched);
    }

    /// Run the head-of-packet firmware path once the packet owns a buffer.
    fn classify<S>(&mut self, packet: PacketId, now: SimTime, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        match self.flavor {
            McpFlavor::Itb => {
                // The LANai raises the high-priority Early Recv Packet event
                // once four bytes are in; the handler checks the type.
                self.stats.early_recv_events += 1;
                let done = self.run_cpu(
                    now,
                    self.timing.dispatch_cycles + self.timing.early_check_cycles,
                );
                sched.nic_at(
                    done,
                    NicEvent::Cpu {
                        host: self.host,
                        work: CpuWork::EarlyRecv { packet },
                    },
                );
            }
            McpFlavor::Original => {
                // Stock firmware classifies the packet when it processes the
                // reception; nothing happens at the head. (It cannot see ITB
                // packets: the mapper never installs ITB routes for it.)
                debug_assert_ne!(
                    net.packet_type(packet),
                    Some(TYPE_ITB),
                    "ITB packet reached an original-MCP NIC"
                );
                let complete = {
                    // detlint::allow(S001, admission inserts the recv state before any event references it)
                    let st = self.recv.get_mut(&packet.0).expect("admitted packet");
                    st.kind = RecvKind::Normal;
                    st.complete
                };
                // A deferred packet may have fully arrived before admission.
                if complete {
                    self.start_recv_finish(packet, now, net, sched);
                }
            }
        }
    }

    /// A receive buffer became free: admit the oldest deferred packet, if
    /// any, and release the receive flow control.
    fn on_buffer_freed<S>(&mut self, now: SimTime, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        self.recv_buffers_free += 1;
        let Some(packet) = self.deferred_heads.pop_front() else {
            return;
        };
        self.recv_buffers_free -= 1;
        if let Some(st) = self.recv.get_mut(&packet.0) {
            debug_assert_eq!(st.kind, RecvKind::Deferred);
            st.kind = RecvKind::Unknown;
            st.owns_buffer = true;
        }
        if self.deferred_heads.is_empty() {
            net.set_host_rx_paused(self.host, false, now, sched);
        }
        self.classify(packet, now, net, sched);
    }

    fn on_bytes<S>(
        &mut self,
        packet: PacketId,
        received: u32,
        now: SimTime,
        net: &mut Network,
        sched: &mut S,
    ) where
        S: NicSched + NetSched,
    {
        let Some(st) = self.recv.get_mut(&packet.0) else {
            return;
        };
        st.received = received;
        if let RecvKind::InTransit { injecting: true } = st.kind {
            // Virtual cut-through: release bytes to the send DMA as they
            // arrive (3 header bytes vanished with the ITB group).
            net.extend_available(self.host, packet, received.saturating_sub(3), now, sched);
        }
    }

    fn on_complete<S>(
        &mut self,
        packet: PacketId,
        received: u32,
        now: SimTime,
        net: &mut Network,
        sched: &mut S,
    ) where
        S: NicSched + NetSched,
    {
        let Some(st) = self.recv.get_mut(&packet.0) else {
            return;
        };
        st.received = received;
        st.complete = true;
        match st.kind {
            RecvKind::Flushed => {
                // Bytes fully discarded; forget the packet entirely.
                self.recv.remove(&packet.0);
                net.retire(packet);
            }
            RecvKind::InTransit { .. } => {
                // Nothing: the send side finishes the forward. Final extend
                // already happened via on_bytes.
            }
            RecvKind::Unknown | RecvKind::Deferred => {
                // Either a very short packet whose tail beat the Early-Recv
                // handler, or a packet still awaiting a buffer: the
                // classification path picks the tail processing up.
            }
            RecvKind::Normal => {
                self.start_recv_finish(packet, now, net, sched);
            }
        }
    }

    fn on_injection_complete<S>(
        &mut self,
        packet: PacketId,
        now: SimTime,
        net: &mut Network,
        sched: &mut S,
    ) where
        S: NicSched + NetSched,
    {
        // Either a fresh send finished or an in-transit forward finished.
        if let Some(st) = self.recv.get(&packet.0) {
            if matches!(st.kind, RecvKind::InTransit { .. }) {
                debug_assert!(st.complete, "forward cannot outrun reception");
                self.recv.remove(&packet.0);
                self.stats.itb_forwards += 1;
                self.on_buffer_freed(now, net, sched);
                self.maybe_start_pending_itb(now, net, sched);
                return;
            }
        }
        // Fresh send: find and retire the job.
        if let Some(pos) = self
            .send_queue
            .iter()
            .position(|j| j.staging && j.desc.is_none())
        {
            // detlint::allow(S001, pos was found by position in this queue)
            let job = self.send_queue.remove(pos).expect("position valid");
            self.send_buffers_free += 1;
            self.outputs.push(NicOutput::SendComplete {
                host: self.host,
                token: job.token,
            });
            self.stats.sends += 1;
            // A freed send buffer may unblock staging; a freed send DMA may
            // unblock a pending ITB forward (high priority — check first).
            self.maybe_start_pending_itb(now, net, sched);
            self.pump_sdma(now, sched);
        }
    }

    /// Tail processing of a normal packet: CRC verification, Recv-machine
    /// completion bookkeeping, then RDMA. The ITB firmware's longer receive
    /// path costs a little extra on every packet — the Figure 7 overhead.
    fn start_recv_finish<S>(
        &mut self,
        packet: PacketId,
        now: SimTime,
        net: &mut Network,
        sched: &mut S,
    ) where
        S: NicSched + NetSched,
    {
        // The LANai checks the trailing CRC once the tail is in; a damaged
        // packet is discarded here and GM's retransmission recovers it.
        if net.packet(packet).corrupted {
            self.recv.remove(&packet.0);
            self.on_buffer_freed(now, net, sched);
            net.retire(packet);
            self.stats.crc_drops += 1;
            self.outputs.push(NicOutput::Flushed {
                host: self.host,
                packet,
            });
            return;
        }
        let mut cycles = self.timing.recv_finish_cycles;
        if self.flavor == McpFlavor::Itb {
            cycles += self.timing.itb_support_extra_cycles;
        }
        let done = self.run_cpu(now, cycles);
        // Timeline note at handler completion, so breakdowns see the CPU cost.
        net.note(packet, "nic.recv_finish", u32::from(self.host.0), done);
        net.trace(packet, Stage::McpRecvFinish, u32::from(self.host.0), done);
        sched.nic_at(
            done,
            NicEvent::Cpu {
                host: self.host,
                work: CpuWork::RecvFinish { packet },
            },
        );
    }

    /// Paper Figure 5: "ITB packet pending & send free → Send ITB packet".
    fn maybe_start_pending_itb<S>(&mut self, now: SimTime, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        if net.host_tx_busy(self.host) {
            return;
        }
        let Some(packet) = self.itb_pending.pop_front() else {
            return;
        };
        self.stats.itb_pending_serviced += 1;
        let done = self.run_cpu(now, self.timing.itb_program_cycles);
        sched.nic_at(
            done,
            NicEvent::Cpu {
                host: self.host,
                work: CpuWork::ItbForward { packet },
            },
        );
    }

    // ------------------------------------------------------------------
    // NIC events
    // ------------------------------------------------------------------

    /// Handle a NIC event addressed to this host.
    pub fn handle<S>(&mut self, now: SimTime, ev: NicEvent, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        match ev {
            NicEvent::Cpu { work, .. } => self.on_cpu(work, now, net, sched),
            NicEvent::Dma { job, .. } => self.on_dma(job, now, net, sched),
        }
    }

    fn on_cpu<S>(&mut self, work: CpuWork, now: SimTime, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        match work {
            CpuWork::EarlyRecv { packet } => {
                net.note(packet, "nic.early_recv", u32::from(self.host.0), now);
                net.trace(packet, Stage::McpEarlyRecv, u32::from(self.host.0), now);
                let Some(st) = self.recv.get_mut(&packet.0) else {
                    return;
                };
                if st.kind != RecvKind::Unknown {
                    // The packet was flushed (e.g. by a crash) between the
                    // head event and this handler firing.
                    return;
                }
                let ty = net.packet_type(packet);
                if ty == Some(TYPE_ITB) {
                    self.stats.itb_detects += 1;
                    net.trace(packet, Stage::McpItbDetect, u32::from(self.host.0), now);
                    // Queue behind the send DMA *and* behind any in-transit
                    // packets already waiting on the pending flag — jumping
                    // ahead of them would reorder same-flow packets (the
                    // send DMA can be momentarily idle while a popped
                    // pending packet's reprogramming handler is still on
                    // the CPU).
                    if net.host_tx_busy(self.host) || !self.itb_pending.is_empty() {
                        st.kind = RecvKind::InTransit { injecting: false };
                        self.itb_pending.push_back(packet);
                    } else {
                        st.kind = RecvKind::InTransit { injecting: false };
                        // Program the send DMA right from the Recv machine,
                        // saving a dispatch cycle (paper Figure 4's dashed
                        // path).
                        let done = self.run_cpu(now, self.timing.itb_program_cycles);
                        sched.nic_at(
                            done,
                            NicEvent::Cpu {
                                host: self.host,
                                work: CpuWork::ItbForward { packet },
                            },
                        );
                    }
                } else {
                    debug_assert_eq!(ty, Some(TYPE_GM), "unexpected packet type {ty:?}");
                    st.kind = RecvKind::Normal;
                    // If the tail already arrived (very short packet), the
                    // deferred tail processing runs now.
                    if st.complete {
                        self.start_recv_finish(packet, now, net, sched);
                    }
                }
            }
            CpuWork::ItbForward { packet } => {
                let Some(st) = self.recv.get_mut(&packet.0) else {
                    return;
                };
                if !matches!(st.kind, RecvKind::InTransit { .. }) {
                    // Crash-flushed after the forward was programmed: the
                    // send DMA never runs for a dead firmware.
                    return;
                }
                st.kind = RecvKind::InTransit { injecting: true };
                // Strip ITB|Length, then hand to the send DMA after its
                // start latency. Bytes available so far: received − 3.
                net.strip_itb_group(packet);
                let avail = if st.complete {
                    u32::MAX // clamped to wire length inside
                } else {
                    st.received.saturating_sub(3)
                };
                // The DMA start latency is pure hardware after the handler
                // retires: hand the packet to the network at `start`.
                net.trace(packet, Stage::McpItbForward, u32::from(self.host.0), now);
                let start = now + self.timing.dma_start;
                net.reinject(self.host, packet, avail, start, sched);
            }
            CpuWork::SendProgram { token } => {
                // Launch the staged packet into the network.
                let Some(job) = self.send_queue.iter_mut().find(|j| j.token == token) else {
                    return;
                };
                // detlint::allow(S001, descriptors are programmed exactly once before send)
                let desc = job.desc.take().expect("programmed once");
                let wire = job.wire_len;
                let id = job.packet;
                let start = now + self.timing.dma_start;
                net.inject_allocated(id, self.host, desc, wire, start, sched);
            }
            CpuWork::RecvFinish { packet } => {
                // Start draining the packet to host memory.
                let Some(st) = self.recv.get_mut(&packet.0) else {
                    return;
                };
                debug_assert_eq!(st.kind, RecvKind::Normal);
                let total = st.received;
                let chunk = self.timing.dma_chunk;
                let mut off = 0;
                while off < total {
                    let bytes = chunk.min(total - off);
                    off += bytes;
                    let jobd = DmaJob::RdmaChunk {
                        packet,
                        bytes,
                        last: off == total,
                    };
                    if let Some((j, done)) = self.dma.submit(jobd, now, &self.timing) {
                        sched.nic_at(
                            done,
                            NicEvent::Dma {
                                host: self.host,
                                job: j,
                            },
                        );
                    }
                }
            }
            CpuWork::RecvDeliver { packet } => {
                net.note(packet, "nic.deliver", u32::from(self.host.0), now);
                net.trace(packet, Stage::NicDeliver, u32::from(self.host.0), now);
                // Hand the message up and recycle the buffer.
                // detlint::allow(S001, delivery events fire only for admitted packets)
                let st = self.recv.remove(&packet.0).expect("delivering a packet");
                self.on_buffer_freed(now, net, sched);
                let ps = net.retire(packet);
                debug_assert_eq!(ps.desc.header.packet_type(), Some(TYPE_GM));
                self.stats.recvs += 1;
                self.outputs.push(NicOutput::RecvComplete {
                    host: self.host,
                    packet,
                    desc: ps.desc,
                    received: st.received,
                });
            }
        }
    }

    fn on_dma<S>(&mut self, job: DmaJob, now: SimTime, net: &mut Network, sched: &mut S)
    where
        S: NicSched + NetSched,
    {
        let _ = net;
        // Start the next queued transfer.
        if let Some((next, done)) = self.dma.complete(now, &self.timing) {
            sched.nic_at(
                done,
                NicEvent::Dma {
                    host: self.host,
                    job: next,
                },
            );
        }
        match job {
            DmaJob::SdmaChunk { token, bytes, last } => {
                if let Some(j) = self.send_queue.iter_mut().find(|j| j.token == token) {
                    j.staged += bytes;
                    if last {
                        debug_assert_eq!(j.staged, j.wire_len);
                        // Packet fully in SRAM: the Send machine programs
                        // the send DMA.
                        let done = self.run_cpu(now, self.timing.send_program_cycles);
                        sched.nic_at(
                            done,
                            NicEvent::Cpu {
                                host: self.host,
                                work: CpuWork::SendProgram { token },
                            },
                        );
                    }
                }
            }
            DmaJob::RdmaChunk { packet, last, .. } => {
                if last {
                    let done = self.run_cpu(now, self.timing.recv_deliver_cycles);
                    sched.nic_at(
                        done,
                        NicEvent::Cpu {
                            host: self.host,
                            work: CpuWork::RecvDeliver { packet },
                        },
                    );
                }
            }
        }
    }
}

//! NIC-internal events and outputs to the host (GM) layer.

use itb_net::{PacketDesc, PacketId};
use itb_sim::SimTime;
use itb_topo::HostId;

/// Scheduling hook for NIC events, implemented by the integrating world.
pub trait NicSched {
    /// Schedule `ev` back into [`crate::Nic::handle`] at `t`. (Named
    /// distinctly from [`itb_net::NetSched::at`] so one sink type can
    /// implement both without ambiguity.)
    fn nic_at(&mut self, t: SimTime, ev: NicEvent);
}

impl NicSched for itb_sim::EventQueue<NicEvent> {
    fn nic_at(&mut self, t: SimTime, ev: NicEvent) {
        self.schedule(t, ev);
    }
}

/// A token identifying one host send request (assigned by the GM layer).
pub type SendToken = u64;

/// Work the MCP processor finishes at a `Cpu` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuWork {
    /// The Early-Recv handler examined the first four bytes (ITB firmware
    /// only).
    EarlyRecv {
        /// The packet whose head arrived.
        packet: PacketId,
    },
    /// The send DMA was reprogrammed to re-inject an in-transit packet.
    ItbForward {
        /// The in-transit packet.
        packet: PacketId,
    },
    /// The Send machine programmed the send DMA for a fresh packet.
    SendProgram {
        /// The host send token being launched.
        token: SendToken,
    },
    /// Receive-completion bookkeeping finished; RDMA may start.
    RecvFinish {
        /// The fully received packet.
        packet: PacketId,
    },
    /// Post-RDMA delivery processing finished; the host is notified.
    RecvDeliver {
        /// The delivered packet.
        packet: PacketId,
    },
}

/// A host-DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaJob {
    /// SDMA chunk: host memory → NIC SRAM send buffer.
    SdmaChunk {
        /// Send token being staged.
        token: SendToken,
        /// Bytes in this chunk.
        bytes: u32,
        /// Last chunk of the packet.
        last: bool,
    },
    /// RDMA chunk: NIC SRAM receive buffer → host memory.
    RdmaChunk {
        /// Packet being drained to the host.
        packet: PacketId,
        /// Bytes in this chunk.
        bytes: u32,
        /// Last chunk of the packet.
        last: bool,
    },
}

impl CpuWork {
    /// Fold this work item (variant tag + payload) into a model-checker
    /// digest.
    pub fn digest_into(&self, d: &mut itb_sim::Digest) {
        match *self {
            CpuWork::EarlyRecv { packet } => {
                d.u8(0);
                d.u64(packet.0);
            }
            CpuWork::ItbForward { packet } => {
                d.u8(1);
                d.u64(packet.0);
            }
            CpuWork::SendProgram { token } => {
                d.u8(2);
                d.u64(token);
            }
            CpuWork::RecvFinish { packet } => {
                d.u8(3);
                d.u64(packet.0);
            }
            CpuWork::RecvDeliver { packet } => {
                d.u8(4);
                d.u64(packet.0);
            }
        }
    }
}

impl DmaJob {
    /// Fold this transfer (variant tag + payload) into a model-checker
    /// digest.
    pub fn digest_into(&self, d: &mut itb_sim::Digest) {
        match *self {
            DmaJob::SdmaChunk { token, bytes, last } => {
                d.u8(0);
                d.u64(token);
                d.u32(bytes);
                d.bool(last);
            }
            DmaJob::RdmaChunk {
                packet,
                bytes,
                last,
            } => {
                d.u8(1);
                d.u64(packet.0);
                d.u32(bytes);
                d.bool(last);
            }
        }
    }
}

/// Events owned by one NIC (the `host` field routes them in the cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicEvent {
    /// The firmware CPU finished a handler.
    Cpu {
        /// NIC this event belongs to.
        host: HostId,
        /// What was being processed.
        work: CpuWork,
    },
    /// The host DMA engine finished a transfer.
    Dma {
        /// NIC this event belongs to.
        host: HostId,
        /// The finished transfer.
        job: DmaJob,
    },
}

impl NicEvent {
    /// Fold this event (variant tag + payload) into a model-checker digest.
    pub fn digest_into(&self, d: &mut itb_sim::Digest) {
        match *self {
            NicEvent::Cpu { host, work } => {
                d.u8(0);
                d.u16(host.0);
                work.digest_into(d);
            }
            NicEvent::Dma { host, job } => {
                d.u8(1);
                d.u16(host.0);
                job.digest_into(d);
            }
        }
    }
}

/// What the NIC reports up to the GM host layer. Drained by the cluster
/// after every NIC call.
#[derive(Debug, Clone)]
pub enum NicOutput {
    /// A host send request finished (packet fully on the wire, buffer
    /// recycled).
    SendComplete {
        /// Sending host.
        host: HostId,
        /// The request token.
        token: SendToken,
    },
    /// A packet was received, DMA'd to host memory and handed up.
    RecvComplete {
        /// Receiving host.
        host: HostId,
        /// The delivered packet's id (retired from the network; kept so the
        /// GM layer can record `host.deliver` against the same trace id).
        packet: PacketId,
        /// Final descriptor (header reduced to `Type`; tag intact).
        desc: PacketDesc,
        /// Wire bytes received.
        received: u32,
    },
    /// A packet was flushed because no receive buffer was free (the drop
    /// behaviour of the paper's proposed circular pool when full).
    Flushed {
        /// Host that dropped the packet.
        host: HostId,
        /// The packet.
        packet: PacketId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_copyable() {
        use std::mem::size_of;
        assert!(size_of::<NicEvent>() <= 32, "got {}", size_of::<NicEvent>());
        let e = NicEvent::Cpu {
            host: HostId(1),
            work: CpuWork::EarlyRecv {
                packet: PacketId(9),
            },
        };
        let f = e; // Copy
        assert_eq!(e, f);
    }
}

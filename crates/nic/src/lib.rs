//! # itb-nic — the LANai network interface and the MCP firmware model
//!
//! Models the part of the system the paper actually modified: the Myrinet
//! Control Program running on the LANai chip of each network adapter.
//!
//! The structural elements follow the paper's §3–4:
//!
//! * a single firmware **CPU** that runs one event handler at a time
//!   ([`timing::McpTiming`] prices each handler block in LANai cycles);
//! * a **host DMA engine** shared by the SDMA (host→SRAM) and RDMA
//!   (SRAM→host) state machines, serviced FIFO ([`dma`]);
//! * two **send buffers** and a configurable pool of **receive buffers** in
//!   NIC SRAM (the paper keeps the stock two of each; its §4 proposes the
//!   larger circular pool modelled by the `recv_buffers` knob);
//! * the four MCP state machines — SDMA, Send, Recv, RDMA — expressed as
//!   event handlers in [`mcp::Nic`];
//! * the paper's modifications, enabled by [`mcp::McpFlavor::Itb`]:
//!   the **Early Recv Packet** event raised when the first four bytes of a
//!   packet arrive, the ITB-type check, immediate send-DMA reprogramming for
//!   re-injection (virtual cut-through), and the *ITB packet pending* flag
//!   used when the send DMA is busy.
//!
//! The per-packet cost of merely *supporting* ITBs (the ~125 ns of Figure 7)
//! and the per-ITB forwarding delay (the ~1.3 µs of Figure 8) both emerge
//! from the cycle prices in [`timing::McpTiming`]; see DESIGN.md §5.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dma;
pub mod events;
pub mod mcp;
pub mod stats;
pub mod timing;

pub use events::{CpuWork, DmaJob, NicEvent, NicOutput, NicSched};
pub use mcp::{McpFlavor, Nic, NicBufferAudit};
pub use timing::McpTiming;

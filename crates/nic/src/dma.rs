//! The shared host-DMA engine.
//!
//! The LANai has one host-DMA engine; the SDMA and RDMA state machines
//! queue transfers on it and it services them FIFO. Each transfer costs a
//! setup plus the chunk bytes at PCI burst rate.

use crate::events::DmaJob;
use crate::timing::McpTiming;
use itb_sim::SimTime;
use std::collections::VecDeque;

/// FIFO host-DMA engine of one NIC.
#[derive(Debug, Default)]
pub struct HostDma {
    busy: bool,
    queue: VecDeque<DmaJob>,
}

impl HostDma {
    /// New idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a transfer is in progress.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Queue depth (excluding the in-progress transfer).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submit a transfer. Returns `Some((job, completion_time))` when the
    /// engine was idle and starts immediately; the caller schedules the
    /// completion event. Returns `None` when queued behind other work.
    pub fn submit(
        &mut self,
        job: DmaJob,
        now: SimTime,
        t: &McpTiming,
    ) -> Option<(DmaJob, SimTime)> {
        if self.busy {
            self.queue.push_back(job);
            None
        } else {
            self.busy = true;
            Some((job, now + Self::cost(job, t)))
        }
    }

    /// Called when the in-progress transfer completes. Returns the next
    /// transfer to start, if any, with its completion time.
    pub fn complete(&mut self, now: SimTime, t: &McpTiming) -> Option<(DmaJob, SimTime)> {
        debug_assert!(self.busy);
        match self.queue.pop_front() {
            Some(job) => Some((job, now + Self::cost(job, t))),
            None => {
                self.busy = false;
                None
            }
        }
    }

    /// Fold the engine's behavioral state — busy flag plus the queued
    /// transfers in FIFO order — into a model-checker digest.
    pub fn state_digest(&self, d: &mut itb_sim::Digest) {
        d.bool(self.busy);
        d.usize(self.queue.len());
        for job in &self.queue {
            job.digest_into(d);
        }
    }

    fn cost(job: DmaJob, t: &McpTiming) -> itb_sim::SimDuration {
        let bytes = match job {
            DmaJob::SdmaChunk { bytes, .. } | DmaJob::RdmaChunk { bytes, .. } => bytes,
        };
        t.dma_setup + t.pci_bw.transfer_time(u64::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdma(bytes: u32, last: bool) -> DmaJob {
        DmaJob::SdmaChunk {
            token: 1,
            bytes,
            last,
        }
    }

    #[test]
    fn idle_engine_starts_immediately() {
        let t = McpTiming::lanai7();
        let mut d = HostDma::new();
        let (job, done) = d.submit(sdma(1024, true), SimTime::ZERO, &t).unwrap();
        assert_eq!(job, sdma(1024, true));
        // 150ns setup + 1024 * 3.787ns ≈ 4.03us.
        assert!((done.as_us_f64() - 4.03).abs() < 0.05, "{done}");
        assert!(d.is_busy());
    }

    #[test]
    fn busy_engine_queues_fifo() {
        let t = McpTiming::lanai7();
        let mut d = HostDma::new();
        d.submit(sdma(512, false), SimTime::ZERO, &t).unwrap();
        assert!(d.submit(sdma(256, false), SimTime::ZERO, &t).is_none());
        assert!(d
            .submit(
                DmaJob::RdmaChunk {
                    packet: itb_net::PacketId(7),
                    bytes: 128,
                    last: true
                },
                SimTime::ZERO,
                &t
            )
            .is_none());
        assert_eq!(d.pending(), 2);
        // First completion starts the 256-byte SDMA.
        let (next, _) = d.complete(SimTime::from_us(2), &t).unwrap();
        assert_eq!(next, sdma(256, false));
        // Then the RDMA.
        let (next, _) = d.complete(SimTime::from_us(3), &t).unwrap();
        assert!(matches!(next, DmaJob::RdmaChunk { bytes: 128, .. }));
        // Then idle.
        assert!(d.complete(SimTime::from_us(4), &t).is_none());
        assert!(!d.is_busy());
    }

    #[test]
    fn setup_dominates_tiny_transfers() {
        let t = McpTiming::lanai7();
        let mut d = HostDma::new();
        let (_, done) = d.submit(sdma(4, true), SimTime::ZERO, &t).unwrap();
        assert!(done.as_ns_f64() < 200.0, "{done}");
    }
}

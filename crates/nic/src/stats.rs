//! Per-NIC counters.

use serde::{Deserialize, Serialize};

/// Counters maintained by one [`crate::Nic`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NicStats {
    /// Completed host sends.
    pub sends: u64,
    /// Messages delivered to the host.
    pub recvs: u64,
    /// Early Recv Packet events handled (ITB firmware only).
    pub early_recv_events: u64,
    /// In-transit packets detected.
    pub itb_detects: u64,
    /// In-transit forwards completed.
    pub itb_forwards: u64,
    /// In-transit forwards that had to wait on the ITB-pending flag.
    pub itb_pending_serviced: u64,
    /// Packets flushed for lack of a receive buffer.
    pub flushed: u64,
    /// Packets dropped because the trailing CRC check failed.
    pub crc_drops: u64,
    /// Times the NIC asserted receive flow control (no buffer free,
    /// backpressure mode).
    pub rx_stalls: u64,
    /// Packets lost to an injected NIC crash: in-transit packets flushed at
    /// the crash instant plus arrivals discarded while down.
    pub crash_flushes: u64,
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_zeroed() {
        let s = super::NicStats::default();
        assert_eq!(s.sends, 0);
        assert_eq!(s.recvs, 0);
        assert_eq!(s.early_recv_events, 0);
        assert_eq!(s.itb_detects, 0);
        assert_eq!(s.itb_forwards, 0);
        assert_eq!(s.itb_pending_serviced, 0);
        assert_eq!(s.flushed, 0);
        assert_eq!(s.crc_drops, 0);
        assert_eq!(s.rx_stalls, 0);
        assert_eq!(s.crash_flushes, 0);
    }
}

//! NIC + network integration: send path, receive path, and the ITB
//! ejection/re-injection path of the modified MCP.

use itb_net::{NetConfig, NetEvent, NetSched, Network, PacketDesc};
use itb_nic::{McpFlavor, McpTiming, Nic, NicEvent, NicOutput, NicSched};
use itb_routing::figures;
use itb_routing::wire::Header;
use itb_sim::{EventQueue, SimTime};
use itb_topo::builders::fig6_testbed;
use itb_topo::HostId;

/// Union event for this two-layer world.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
    Nic(NicEvent),
}

/// Queue adapter implementing both scheduling traits.
struct Sink<'a>(&'a mut EventQueue<Ev>);

impl NetSched for Sink<'_> {
    fn at(&mut self, t: SimTime, ev: NetEvent) {
        self.0.schedule(t, Ev::Net(ev));
    }
}
impl NicSched for Sink<'_> {
    fn nic_at(&mut self, t: SimTime, ev: NicEvent) {
        self.0.schedule(t, Ev::Nic(ev));
    }
}

struct World {
    net: Network,
    nics: Vec<Nic>,
    outputs: Vec<NicOutput>,
    output_times: Vec<SimTime>,
}

impl World {
    fn new(topo: itb_topo::Topology, flavor: McpFlavor) -> Self {
        let n = topo.num_hosts();
        let nics = (0..n as u16)
            .map(|h| Nic::new(HostId(h), flavor, McpTiming::lanai7()))
            .collect();
        World {
            net: Network::new(topo, NetConfig::default()),
            nics,
            outputs: Vec::new(),
            output_times: Vec::new(),
        }
    }

    fn drain_nic_outputs(&mut self, now: SimTime) {
        for nic in &mut self.nics {
            for o in nic.take_outputs() {
                self.outputs.push(o);
                self.output_times.push(now);
            }
        }
    }

    fn pump_indications(&mut self, now: SimTime, q: &mut EventQueue<Ev>) {
        // Indications may cascade (a NIC action produces more indications),
        // so loop to a fixed point.
        loop {
            let inds = self.net.take_indications();
            if inds.is_empty() {
                break;
            }
            for ind in inds {
                let host = match ind {
                    itb_net::HostIndication::HeadArrived { host, .. }
                    | itb_net::HostIndication::BytesArrived { host, .. }
                    | itb_net::HostIndication::PacketComplete { host, .. }
                    | itb_net::HostIndication::InjectionComplete { host, .. } => host,
                };
                let mut sink = Sink(q);
                self.nics[host.idx()].on_indication(ind, now, &mut self.net, &mut sink);
            }
        }
        self.drain_nic_outputs(now);
    }

    fn run(&mut self, q: &mut EventQueue<Ev>, limit: u64) {
        let mut n = 0;
        while let Some((t, ev)) = q.pop() {
            match ev {
                Ev::Net(e) => {
                    let mut sink = Sink(q);
                    self.net.handle(t, e, &mut sink);
                }
                Ev::Nic(e) => {
                    let host = match e {
                        NicEvent::Cpu { host, .. } | NicEvent::Dma { host, .. } => host,
                    };
                    let mut sink = Sink(q);
                    self.nics[host.idx()].handle(t, e, &mut self.net, &mut sink);
                }
            }
            self.pump_indications(t, q);
            n += 1;
            assert!(n < limit, "runaway simulation");
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &mut self,
        host: HostId,
        token: u64,
        route: &itb_routing::SourceRoute,
        payload: u32,
        tag: u64,
        now: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let desc = PacketDesc {
            header: Header::encode(route),
            payload_len: payload,
            tag,
            src: route.src,
        };
        let mut sink = Sink(q);
        self.nics[host.idx()].submit_send(token, desc, now, &mut self.net, &mut sink);
    }
}

fn recv_completes(w: &World) -> Vec<(HostId, u64, u32, SimTime)> {
    w.outputs
        .iter()
        .zip(&w.output_times)
        .filter_map(|(o, &t)| match o {
            NicOutput::RecvComplete {
                host,
                desc,
                received,
                ..
            } => Some((*host, desc.tag, *received, t)),
            _ => None,
        })
        .collect()
}

#[test]
fn plain_send_receive_original_mcp() {
    let tb = fig6_testbed();
    let mut w = World::new(tb.topo.clone(), McpFlavor::Original);
    let mut q = EventQueue::new();
    let route = figures::fig7_route(&tb);
    w.submit(tb.host1, 1, &route, 256, 0xFEED, SimTime::ZERO, &mut q);
    w.run(&mut q, 1_000_000);

    let recvs = recv_completes(&w);
    assert_eq!(recvs.len(), 1);
    let (host, tag, received, _) = recvs[0];
    assert_eq!(host, tb.host2);
    assert_eq!(tag, 0xFEED);
    // Wire: 4-byte header (2 route + 2 type) + 256 + CRC − 2 route bytes.
    assert_eq!(received, 4 + 256 + 1 - 2);
    // Send completion fired too.
    assert!(w
        .outputs
        .iter()
        .any(|o| matches!(o, NicOutput::SendComplete { token: 1, .. })));
    assert_eq!(w.net.in_flight(), 0, "packet retired");
}

#[test]
fn itb_mcp_delivers_plain_packets_identically_but_slower_by_support_overhead() {
    let tb = fig6_testbed();
    let route = figures::fig7_route(&tb);
    let run = |flavor: McpFlavor| {
        let mut w = World::new(tb.topo.clone(), flavor);
        let mut q = EventQueue::new();
        w.submit(tb.host1, 1, &route, 512, 7, SimTime::ZERO, &mut q);
        w.run(&mut q, 1_000_000);
        recv_completes(&w)[0].3
    };
    let orig = run(McpFlavor::Original);
    let itb = run(McpFlavor::Itb);
    assert!(itb > orig, "ITB support code must cost something");
    let overhead = (itb - orig).as_ns_f64();
    // Figure 7: ≈125 ns average, ≤300 ns.
    assert!(
        (50.0..=350.0).contains(&overhead),
        "support overhead {overhead} ns out of the paper's band"
    );
}

#[test]
fn itb_forward_path_works_end_to_end() {
    let tb = fig6_testbed();
    let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
    let mut q = EventQueue::new();
    let route = figures::fig8_itb_route(&tb);
    w.submit(tb.host1, 1, &route, 1024, 0xCAFE, SimTime::ZERO, &mut q);
    w.run(&mut q, 10_000_000);

    let recvs = recv_completes(&w);
    assert_eq!(recvs.len(), 1, "outputs: {:?}", w.outputs);
    let (host, tag, _, _) = recvs[0];
    assert_eq!(host, tb.host2, "final destination, not the in-transit host");
    assert_eq!(tag, 0xCAFE);
    // The in-transit NIC detected and forwarded exactly one ITB packet.
    let itb_nic = &w.nics[tb.itb_host.idx()];
    assert_eq!(itb_nic.stats().itb_detects, 1);
    assert_eq!(itb_nic.stats().itb_forwards, 1);
    assert_eq!(itb_nic.stats().early_recv_events, 1);
    assert_eq!(itb_nic.stats().recvs, 0, "nothing delivered to its host");
    // The destination NIC saw an early-recv event but no ITB.
    let dst = &w.nics[tb.host2.idx()];
    assert_eq!(dst.stats().itb_detects, 0);
    assert_eq!(dst.stats().recvs, 1);
    assert_eq!(w.net.stats().reinjected, 1);
    assert_eq!(w.net.in_flight(), 0);
}

#[test]
fn fig8_itb_overhead_is_about_1_3_us() {
    // End-to-end latency difference between the two 5-crossing paths —
    // the quantity Figure 8 plots (per direction).
    let tb = fig6_testbed();
    let run = |route: &itb_routing::SourceRoute, payload: u32| {
        let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
        let mut q = EventQueue::new();
        w.submit(tb.host1, 1, route, payload, 1, SimTime::ZERO, &mut q);
        w.run(&mut q, 10_000_000);
        recv_completes(&w)[0].3
    };
    for payload in [8u32, 128, 1024, 4096] {
        let ud = run(&figures::fig8_ud_route(&tb), payload);
        let itb = run(&figures::fig8_itb_route(&tb), payload);
        let overhead_us = (itb - ud).as_us_f64();
        assert!(
            (0.9..=1.7).contains(&overhead_us),
            "payload {payload}: per-ITB overhead {overhead_us} us (paper: ≈1.3)"
        );
    }
}

#[test]
fn itb_pending_flag_defers_forward_until_send_frees() {
    // Make the in-transit host's send DMA busy with its own large send when
    // the ITB packet arrives; the forward must wait and still complete.
    let tb = fig6_testbed();
    let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
    let mut q = EventQueue::new();
    // The in-transit host sends a big message to host2 first (occupying its
    // send DMA for a long time). Route it over cable B so it does not block
    // the incoming ITB packet (whose first segment uses cable A).
    let (_, h2_port) = tb.topo.host_attachment(tb.host2);
    let own_route = itb_routing::SourceRoute::direct(
        tb.itb_host,
        tb.host2,
        vec![
            itb_routing::Hop {
                switch: tb.sw0,
                out_port: tb.topo.out_port(tb.sw0, tb.cable_b),
            },
            itb_routing::Hop {
                switch: tb.sw1,
                out_port: h2_port,
            },
        ],
    );
    assert!(own_route.is_well_formed(&tb.topo));
    w.submit(tb.itb_host, 1, &own_route, 60_000, 1, SimTime::ZERO, &mut q);
    // host1's ITB-routed packet must arrive while that send is *streaming*
    // (injection starts only after SDMA staging, ≈ 240 us for 60 KB, and
    // lasts ≈ 375 us at link rate), so submit it at 300 us.
    let route = figures::fig8_itb_route(&tb);
    w.submit(tb.host1, 2, &route, 64, 2, SimTime::from_us(300), &mut q);
    w.run(&mut q, 50_000_000);

    let recvs = recv_completes(&w);
    assert_eq!(recvs.len(), 2, "both messages delivered");
    let itb_nic = &w.nics[tb.itb_host.idx()];
    assert_eq!(itb_nic.stats().itb_detects, 1);
    assert_eq!(itb_nic.stats().itb_forwards, 1);
    assert_eq!(
        itb_nic.stats().itb_pending_serviced,
        1,
        "forward must have gone through the pending flag"
    );
}

#[test]
fn recv_buffer_exhaustion_flushes() {
    // Give the receiving NIC 1 recv buffer and stall its drain by sending
    // two packets back to back; with the tiny buffer pool the second head
    // arriving while the first still drains must be flushed.
    let tb = fig6_testbed();
    let mut timing = McpTiming::lanai7();
    timing.recv_buffers = 1;
    timing.flush_on_overflow = true;
    let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
    w.nics[tb.host2.idx()] = Nic::new(tb.host2, McpFlavor::Itb, timing);
    let mut q = EventQueue::new();
    let route = figures::fig7_route(&tb);
    // Two sizeable packets back to back.
    w.submit(tb.host1, 1, &route, 4096, 1, SimTime::ZERO, &mut q);
    w.submit(tb.host1, 2, &route, 4096, 2, SimTime::ZERO, &mut q);
    w.run(&mut q, 50_000_000);

    let flushed = w
        .outputs
        .iter()
        .filter(|o| matches!(o, NicOutput::Flushed { .. }))
        .count();
    let recvd = recv_completes(&w).len();
    assert_eq!(flushed + recvd, 2, "every packet accounted for");
    assert!(flushed >= 1, "one packet should have been flushed");
    // Flushed packets must not leak registry entries... the flushing NIC
    // discards silently; the registry entry is retired on flush completion.
}

#[test]
fn two_buffer_pool_suffices_for_pingpong_spacing() {
    // With stock 2 buffers, the same two-packet burst is NOT flushed.
    let tb = fig6_testbed();
    let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
    let mut q = EventQueue::new();
    let route = figures::fig7_route(&tb);
    w.submit(tb.host1, 1, &route, 4096, 1, SimTime::ZERO, &mut q);
    w.submit(tb.host1, 2, &route, 4096, 2, SimTime::ZERO, &mut q);
    w.run(&mut q, 50_000_000);
    assert_eq!(recv_completes(&w).len(), 2);
    assert_eq!(w.nics[tb.host2.idx()].stats().flushed, 0);
}

#[test]
fn cut_through_forward_starts_before_full_reception() {
    // For a large packet, the ITB path's end-to-end latency must be far
    // below store-and-forward (which would add a full serialization).
    let tb = fig6_testbed();
    let payload = 16_384u32;
    let run = |route: &itb_routing::SourceRoute| {
        let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
        let mut q = EventQueue::new();
        w.submit(tb.host1, 1, route, payload, 1, SimTime::ZERO, &mut q);
        w.run(&mut q, 50_000_000);
        recv_completes(&w)[0].3
    };
    let ud = run(&figures::fig8_ud_route(&tb));
    let itb = run(&figures::fig8_itb_route(&tb));
    let extra = (itb - ud).as_us_f64();
    // Store-and-forward would add ≈ payload * 6.25 ns ≈ 102 us; virtual
    // cut-through keeps it near the constant ≈1.3 us.
    assert!(
        extra < 10.0,
        "forward not cut-through: {extra} us extra for 16 KiB"
    );
}

#[test]
fn trace_records_causal_order_of_itb_forward() {
    // Enable the shared lifecycle tracer and verify the paper's event
    // sequence at the in-transit host: Early Recv fires, the ITB is
    // detected, the send DMA is reprogrammed (re-injection), and no normal
    // recv-finish ever runs there for the forwarded packet.
    use itb_obs::Stage;
    let tb = fig6_testbed();
    let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
    w.net.tracer_mut().enable();
    let mut q = EventQueue::new();
    let route = figures::fig8_itb_route(&tb);
    w.submit(tb.host1, 1, &route, 512, 1, SimTime::ZERO, &mut q);
    w.run(&mut q, 10_000_000);

    let trace = w.net.tracer();
    let at_itb = |stage: Stage| {
        trace
            .events()
            .iter()
            .find(|e| e.stage == stage && e.node == u32::from(tb.itb_host.0))
            .copied()
    };
    let early = at_itb(Stage::McpEarlyRecv).expect("early recv traced");
    let detect = at_itb(Stage::McpItbDetect).expect("detect traced");
    let forward = at_itb(Stage::McpItbForward).expect("forward traced");
    let reinject = at_itb(Stage::NetReinject).expect("reinject traced");
    assert!(early.t <= detect.t, "early recv precedes detection");
    assert!(detect.t < forward.t, "detection precedes DMA reprogramming");
    assert!(
        forward.t < reinject.t,
        "reprogramming precedes re-injection"
    );
    // Detection-to-reinjection = program + dma_start.
    let t = McpTiming::lanai7();
    let gap = reinject.t.saturating_since(detect.t).as_ns_f64();
    let expect = t.cycles(t.itb_program_cycles).as_ns_f64() + t.dma_start.as_ns_f64();
    assert!(
        (gap - expect).abs() < 1.0,
        "forward gap {gap} ns vs calibrated {expect} ns"
    );
    assert!(
        at_itb(Stage::McpRecvFinish).is_none(),
        "forwarded packets must not take the normal receive path"
    );
    // The destination host, by contrast, does run the receive path.
    assert!(trace
        .events()
        .iter()
        .any(|e| e.stage == Stage::McpRecvFinish && e.node == u32::from(tb.host2.0)));
}

#[test]
fn trace_disabled_by_default_and_costs_nothing() {
    let tb = fig6_testbed();
    let mut w = World::new(tb.topo.clone(), McpFlavor::Itb);
    let mut q = EventQueue::new();
    w.submit(
        tb.host1,
        1,
        &figures::fig7_route(&tb),
        64,
        1,
        SimTime::ZERO,
        &mut q,
    );
    w.run(&mut q, 1_000_000);
    assert!(!w.net.tracer().is_enabled());
    assert!(w.net.tracer().events().is_empty());
    assert_eq!(w.net.tracer().dropped(), 0);
}

#[test]
fn sram_contention_slows_handlers_during_dma() {
    // With heavy SRAM contention modelled, the receive path (whose
    // completion handler runs while RDMA chunks move) slows measurably.
    let tb = fig6_testbed();
    // A single message's handlers never overlap its own DMA (the state
    // machines serialize them), so pipeline several messages: packet k's
    // completion handlers then run while packet k+1's chunks are moving.
    let run = |pct: u32| {
        let mut timing = McpTiming::lanai7();
        timing.sram_contention_pct = pct;
        let mut w = World::new(tb.topo.clone(), McpFlavor::Original);
        for h in 0..3u16 {
            w.nics[h as usize] = Nic::new(HostId(h), McpFlavor::Original, timing);
        }
        let mut q = EventQueue::new();
        for i in 0..4u64 {
            w.submit(
                tb.host1,
                i,
                &figures::fig7_route(&tb),
                4096,
                i,
                SimTime::ZERO,
                &mut q,
            );
        }
        w.run(&mut q, 10_000_000);
        let recvs = recv_completes(&w);
        assert_eq!(recvs.len(), 4);
        recvs.last().unwrap().3
    };
    let clean = run(0);
    let contended = run(400);
    assert!(
        contended > clean,
        "contention must add latency: {clean} vs {contended}"
    );
    // The effect is bounded: only handler cycles stretch, not DMA time.
    assert!((contended - clean).as_us_f64() < 20.0);
}

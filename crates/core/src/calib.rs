//! Calibration presets — every physical constant of the reproduction in one
//! place, with its provenance.

use itb_gm::GmConfig;
use itb_net::NetConfig;
use itb_nic::McpTiming;
use serde::{Deserialize, Serialize};

/// A complete timing calibration: physical layer, NIC firmware, host
/// software.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Calibration {
    /// Link / switch / flow-control constants.
    pub net: NetConfig,
    /// LANai / MCP constants.
    pub mcp: McpTiming,
    /// GM host-library constants.
    pub gm: GmConfig,
}

impl Calibration {
    /// The paper's testbed: 450 MHz PIII hosts, LANai-7 NICs on 64-bit PCI,
    /// M2FM-SW8 switches, GM-1.2pre16. See DESIGN.md §5 for the derivation
    /// of each constant and EXPERIMENTS.md for the resulting match against
    /// the paper's Figures 7 and 8.
    pub fn testbed_2001() -> Self {
        Calibration {
            net: NetConfig::default(),
            mcp: McpTiming::lanai7(),
            gm: GmConfig::default(),
        }
    }

    /// Calibration for large loaded-network sweeps: identical physics with
    /// coarser streaming granularity (16-byte flits) and the reliability
    /// layer off, trading event count for per-point wall time. Uses the
    /// paper's §4 circular receive pool (64 buffers — the simulation studies
    /// it builds on assume the NIC's 8 MB SRAM absorbs in-transit bursts)
    /// instead of the stock 2 buffers, which would flush in-transit packets
    /// long before the network itself saturates.
    pub fn loaded_sweep() -> Self {
        let mut mcp = McpTiming::lanai7();
        mcp.recv_buffers = 64;
        mcp.flush_on_overflow = true;
        Calibration {
            net: NetConfig::coarse(),
            mcp,
            gm: GmConfig {
                reliability: false,
                ..GmConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_constants_expose_paper_quantities() {
        let c = Calibration::testbed_2001();
        assert!((c.mcp.itb_support_overhead().as_ns_f64() - 121.2).abs() < 1.0);
        assert!(c.mcp.itb_forward_latency().as_us_f64() > 1.0);
        assert_eq!(c.net.link_bw.ps_per_byte(), 6250);
        assert!(c.gm.reliability);
    }

    #[test]
    fn loaded_sweep_is_coarser() {
        let c = Calibration::loaded_sweep();
        assert!(c.net.flit_bytes > Calibration::testbed_2001().net.flit_bytes);
        assert!(!c.gm.reliability);
    }
}

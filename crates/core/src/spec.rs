//! The cluster builder.

use crate::calib::Calibration;
use itb_gm::cluster::ClusterParams;
use itb_gm::{AppBehavior, Cluster};
use itb_nic::McpFlavor;
use itb_routing::{RoutingPolicy, SourceRoute};
use itb_topo::builders::{self, Fig6Testbed, IrregularSpec};
use itb_topo::Topology;

/// Declarative description of a cluster to simulate. Build one with the
/// constructors, adjust with the `with_*` methods, then run experiments
/// from [`crate::experiments`] (or instantiate directly via
/// [`ClusterSpec::build`]).
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    topo: Topology,
    /// The Figure 6 structure when built from the testbed constructor.
    pub testbed: Option<Fig6Testbed>,
    /// Timing calibration.
    pub calib: Calibration,
    /// Firmware flavour.
    pub flavor: McpFlavor,
    /// Routing policy.
    pub routing: RoutingPolicy,
    /// In-transit host selection for the ITB planner.
    pub itb_selection: itb_routing::planner::ItbHostSelection,
    /// Hand-built route overrides.
    pub overrides: Vec<SourceRoute>,
    /// Fault-injection plan ([`itb_net::FaultPlan::default`] = no faults).
    pub faults: itb_net::FaultPlan,
    /// Traffic seed.
    pub seed: u64,
}

impl ClusterSpec {
    /// A spec over an explicit topology.
    pub fn custom(topo: Topology) -> Self {
        ClusterSpec {
            topo,
            testbed: None,
            calib: Calibration::testbed_2001(),
            flavor: McpFlavor::Itb,
            routing: RoutingPolicy::UpDown,
            itb_selection: itb_routing::planner::ItbHostSelection::RoundRobin,
            overrides: Vec::new(),
            faults: itb_net::FaultPlan::default(),
            seed: 0,
        }
    }

    /// The paper's Figure 6 testbed (3 hosts, 2 switches).
    pub fn fig6_testbed() -> Self {
        let tb = builders::fig6_testbed();
        let mut s = Self::custom(tb.topo.clone());
        s.testbed = Some(tb);
        s
    }

    /// A random irregular network in the style of the motivation
    /// experiments (8-port switches, 4 hosts each).
    pub fn irregular(switches: usize, seed: u64) -> Self {
        let spec = IrregularSpec::evaluation_default(switches, seed);
        let mut s = Self::custom(builders::random_irregular(&spec));
        s.calib = Calibration::loaded_sweep();
        s.seed = seed;
        s
    }

    /// A chain of switches (used by the multi-ITB ablation).
    pub fn chain(switches: usize, hosts_per_switch: usize) -> Self {
        Self::custom(builders::chain(switches, hosts_per_switch))
    }

    /// Set the firmware flavour.
    pub fn with_mcp(mut self, flavor: McpFlavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Set the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Replace the calibration.
    pub fn with_calibration(mut self, calib: Calibration) -> Self {
        self.calib = calib;
        self
    }

    /// Install a hand-built route (overrides the mapper's table entry).
    pub fn with_route_override(mut self, route: SourceRoute) -> Self {
        self.overrides.push(route);
        self
    }

    /// Set the traffic seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the receive-buffer pool size (the paper's §4 circular-pool
    /// proposal; stock firmware has 2).
    pub fn with_recv_buffers(mut self, n: u8) -> Self {
        self.calib.mcp.recv_buffers = n;
        self
    }

    /// Set the planner's in-transit host selection policy.
    pub fn with_itb_selection(mut self, sel: itb_routing::planner::ItbHostSelection) -> Self {
        self.itb_selection = sel;
        self
    }

    /// Set the buffer-overflow policy: `true` = flush + retransmit (the
    /// paper's §4 circular-pool behaviour), `false` = receive flow control
    /// (stock GM).
    pub fn with_flush_on_overflow(mut self, flush: bool) -> Self {
        self.calib.mcp.flush_on_overflow = flush;
        self
    }

    /// Fault injection: corrupt the CRC of every `n`th injected packet.
    /// Receivers drop damaged packets at the tail check; GM retransmission
    /// recovers them.
    pub fn with_corruption_every(mut self, n: u64) -> Self {
        self.calib.net.corrupt_every = Some(n);
        self
    }

    /// Install a fault-injection plan (probabilistic link faults, link-down
    /// windows, NIC crashes). See [`itb_net::FaultPlan`].
    pub fn with_faults(mut self, plan: itb_net::FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The wired topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.topo.num_hosts()
    }

    /// Run this spec to `horizon` on up to `threads` shards (conservative
    /// parallel discrete-event simulation, one OS thread per shard) and
    /// return the aggregate report.
    ///
    /// The topology is partitioned deterministically from the traffic seed,
    /// one replica is built per shard and each replica simulates only its
    /// shard's hosts and switches; the aggregate event, delivery and
    /// injection totals equal the sequential run of the same spec. Requires
    /// a fault-free spec (no [`Self::with_faults`] /
    /// [`Self::with_corruption_every`]).
    pub fn run_parallel(
        &self,
        behaviors: Vec<AppBehavior>,
        threads: u32,
        horizon: itb_sim::SimTime,
    ) -> itb_gm::ParRunReport {
        let part = itb_topo::partition(&self.topo, threads as usize, self.seed);
        let replicas: Vec<Cluster> = (0..part.shards)
            .map(|_| self.build(behaviors.clone()))
            .collect();
        let (_worlds, report) = itb_gm::run_cluster_shards(replicas, &part, horizon);
        report
    }

    /// Instantiate a cluster with the given per-host behaviours.
    pub fn build(&self, behaviors: Vec<AppBehavior>) -> Cluster {
        Cluster::new(ClusterParams {
            topo: self.topo.clone(),
            net: self.calib.net,
            mcp: self.calib.mcp,
            flavor: self.flavor,
            routing: self.routing,
            itb_selection: self.itb_selection,
            gm: self.calib.gm,
            behaviors,
            route_overrides: self.overrides.clone(),
            faults: self.faults.clone(),
            seed: self.seed,
        })
    }

    /// Convenience used by the crate-root quickstart: run a ping-pong
    /// between two hosts and return the latency report.
    pub fn ping_pong(&self, src: u16, dst: u16, sizes: &[u32], iters: u32) -> crate::LatencyReport {
        crate::experiments::ping_pong(
            self,
            itb_topo::HostId(src),
            itb_topo::HostId(dst),
            sizes,
            iters,
            2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_chain() {
        let s = ClusterSpec::fig6_testbed()
            .with_mcp(McpFlavor::Original)
            .with_routing(RoutingPolicy::UpDown)
            .with_seed(9)
            .with_recv_buffers(8);
        assert_eq!(s.flavor, McpFlavor::Original);
        assert_eq!(s.seed, 9);
        assert_eq!(s.calib.mcp.recv_buffers, 8);
        assert_eq!(s.num_hosts(), 3);
        assert!(s.testbed.is_some());
    }

    #[test]
    fn irregular_uses_loaded_calibration() {
        let s = ClusterSpec::irregular(8, 1);
        assert!(!s.calib.gm.reliability);
        assert_eq!(s.num_hosts(), 32);
    }

    #[test]
    fn build_produces_runnable_cluster() {
        let s = ClusterSpec::chain(2, 1);
        let c = s.build(vec![AppBehavior::Sink, AppBehavior::Sink]);
        assert_eq!(c.delivered_count(), 0);
    }
}

//! # itb-core — the public façade of the ITB reproduction
//!
//! Everything a downstream user needs to reproduce the paper:
//!
//! * [`ClusterSpec`] — a builder over topology + firmware flavour + routing
//!   policy + calibrated timing, producing runnable clusters;
//! * [`experiments`] — the measurement drivers: `gm_allsize`-style latency
//!   sweeps ([`experiments::ping_pong`]), the Figure 7 and Figure 8
//!   reproductions, load sweeps for the motivation experiments, and the
//!   ITB-count / buffer-pool ablations;
//! * [`results`] — serde-serializable result records so every number in
//!   EXPERIMENTS.md can be regenerated and archived;
//! * [`calib`] — the calibration constants in one place.
//!
//! Parameter sweeps fan out over independent simulations with rayon: each
//! point builds its own [`itb_gm::Cluster`], so parallelism is trivially
//! safe and the per-point results stay bit-deterministic.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod calib;
pub mod experiments;
pub mod results;
pub mod spec;

pub use itb_nic::McpFlavor;
pub use itb_routing::RoutingPolicy;
pub use results::{Fig7Result, Fig8Result, LatencyPoint, LatencyReport, LoadPoint};
pub use spec::ClusterSpec;

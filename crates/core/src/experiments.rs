//! Experiment drivers: the measurement procedures of the paper's §5 plus
//! the motivation/ablation studies.

use crate::results::{Fig7Result, Fig8Result, LatencyPoint, LatencyReport, LoadPoint};
use crate::spec::ClusterSpec;
use itb_gm::{AppBehavior, Cluster};
use itb_nic::McpFlavor;
use itb_routing::{figures, RoutingPolicy, SourceRoute};
use itb_sim::stats::Accum;
use itb_sim::{narrow, run_until, run_while, EventQueue, SimDuration, SimTime};
use itb_topo::HostId;
use rayon::prelude::*;

/// Run a `gm_allsize`-style ping-pong between `src` and `dst` and report
/// half-round-trip latency per size (the measurement procedure of §5:
/// averaged iterations per message size).
pub fn ping_pong(
    spec: &ClusterSpec,
    src: HostId,
    dst: HostId,
    sizes: &[u32],
    iters: u32,
    warmup: u32,
) -> LatencyReport {
    let n = spec.num_hosts();
    let mut behaviors = vec![AppBehavior::Sink; n];
    behaviors[src.idx()] = AppBehavior::PingPong {
        peer: dst,
        sizes: sizes.to_vec(),
        iters,
        warmup,
    };
    behaviors[dst.idx()] = AppBehavior::Echo;
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    run_while(&mut cluster, &mut q, |c| !c.all_pingpongs_done());
    assert!(
        cluster.ping_state(src).done,
        "ping-pong did not finish; network stuck?"
    );
    let mut points: Vec<LatencyPoint> = sizes
        .iter()
        .map(|&s| LatencyPoint {
            size: s,
            half_rtt_ns: Accum::new(),
        })
        .collect();
    for &(size, rtt) in &cluster.ping_state(src).samples {
        let p = points
            .iter_mut()
            .find(|p| p.size == size)
            // detlint::allow(S001, the sweep builder sets a sample size on every spec)
            .expect("sample size was requested");
        // Half round trip, in nanoseconds.
        p.half_rtt_ns.add(rtt.as_ns_f64() / 2.0);
    }
    LatencyReport {
        label: format!("{:?}/{:?}", spec.flavor, spec.routing),
        points,
    }
}

/// The standard size ladder used by the figure reproductions (bytes).
pub fn allsize_ladder() -> Vec<u32> {
    vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
}

/// Reproduce **Figure 7**: half-round-trip latency of the original versus
/// ITB-enabled MCP between hosts 1 and 2 of the testbed, over the plain
/// up\*/down\* route. The two runs are independent simulations (as in the
/// paper, where the firmware was swapped).
pub fn fig7(iters: u32) -> Fig7Result {
    let sizes = allsize_ladder();
    let run = |flavor: McpFlavor| {
        let spec = ClusterSpec::fig6_testbed()
            .with_mcp(flavor)
            .with_routing(RoutingPolicy::UpDown);
        // detlint::allow(S001, fig7 specs always carry a testbed)
        let tb = spec.testbed.clone().expect("testbed spec");
        let mut report = ping_pong(&spec, tb.host1, tb.host2, &sizes, iters, 2);
        report.label = match flavor {
            McpFlavor::Original => "Original MCP code".into(),
            McpFlavor::Itb => "Modified MCP code".into(),
        };
        report
    };
    Fig7Result {
        original: run(McpFlavor::Original),
        modified: run(McpFlavor::Itb),
    }
}

/// Reproduce **Figure 8**: half-round-trip latency over the two 5-crossing
/// testbed paths — plain up\*/down\* (loop cable) versus one in-transit
/// buffer — both under the ITB-enabled MCP.
pub fn fig8(iters: u32) -> Fig8Result {
    let sizes = allsize_ladder();
    let run = |route: fn(&itb_topo::builders::Fig6Testbed) -> SourceRoute, label: &str| {
        let base = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
        // detlint::allow(S001, fig8 specs always carry a testbed)
        let tb = base.testbed.clone().expect("testbed spec");
        let spec = base
            .with_route_override(route(&tb))
            .with_route_override(figures::fig8_return_route(&tb));
        let mut report = ping_pong(&spec, tb.host1, tb.host2, &sizes, iters, 2);
        report.label = label.into();
        report
    };
    Fig8Result {
        ud: run(figures::fig8_ud_route, "UD"),
        itb: run(figures::fig8_itb_route, "UD-ITB"),
    }
}

/// Latency versus number of in-transit buffers (ablation A-ITBS): on a
/// chain of `k + 1` switch stages, route a message from the first host to
/// the last through `k` in-transit hosts, and compare with the direct
/// route. Returns `(k, mean half-RTT µs)` per requested `k`.
pub fn itb_count_sweep(ks: &[usize], size: u32, iters: u32) -> Vec<(usize, f64)> {
    // detlint::allow(S001, ks is a non-empty constant list)
    let max_k = *ks.iter().max().expect("non-empty ks");
    // Chain long enough for the largest k: one in-transit host per
    // intermediate switch.
    let switches = max_k + 2;
    ks.iter()
        .map(|&k| {
            let spec = ClusterSpec::chain(switches, 1).with_mcp(McpFlavor::Itb);
            let topo = spec.topology().clone();
            let src = HostId(0);
            let dst = HostId(narrow(switches - 1));
            // Build the multi-ITB route by hand: pass through hosts at
            // switches 1..=k.
            let mut segments = Vec::new();
            let mut from = src;
            let mut from_sw = 0u16;
            for i in 1..=k {
                let mid = HostId(narrow(i));
                segments.push(chain_segment(&topo, from, from_sw, mid, narrow(i)));
                from = mid;
                from_sw = narrow(i);
            }
            segments.push(chain_segment(
                &topo,
                from,
                from_sw,
                dst,
                narrow(switches - 1),
            ));
            let route = SourceRoute { src, dst, segments };
            assert!(route.is_well_formed(&topo));
            assert_eq!(route.itb_count(), k);
            let spec = spec.with_route_override(route);
            let report = ping_pong(&spec, src, dst, &[size], iters, 2);
            (k, report.points[0].half_rtt_ns.mean() / 1000.0)
        })
        .collect()
}

/// One up\*/down\*-legal chain segment from the host at `from_sw` to the
/// host at `to_sw` (chain wiring: port 0 = left, 1 = right, 2 = host).
fn chain_segment(
    topo: &itb_topo::Topology,
    from: HostId,
    from_sw: u16,
    to: HostId,
    to_sw: u16,
) -> itb_routing::Segment {
    use itb_routing::Hop;
    use itb_topo::SwitchId;
    assert!(from_sw < to_sw);
    let mut hops = Vec::new();
    for s in from_sw..to_sw {
        hops.push(Hop::new(SwitchId(s), 1));
    }
    hops.push(Hop::new(SwitchId(to_sw), 2));
    let _ = topo;
    itb_routing::Segment { from, to, hops }
}

/// One stage of a packet's end-to-end latency.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BreakdownStage {
    /// Stage label.
    pub stage: String,
    /// Duration of the stage, ns.
    pub ns: f64,
}

/// Decompose one message's end-to-end latency into stages using the
/// network's per-packet timeline instrumentation: host send processing,
/// SDMA staging + send programming, wire time to the head, streaming to the
/// tail, receive completion + RDMA, and host delivery processing.
pub fn latency_breakdown(
    spec: &ClusterSpec,
    src: HostId,
    dst: HostId,
    size: u32,
) -> Vec<BreakdownStage> {
    let mut spec = spec.clone();
    spec.calib.net.record_timelines = true;
    let n = spec.num_hosts();
    let mut behaviors = vec![AppBehavior::Sink; n];
    behaviors[src.idx()] = AppBehavior::Stream {
        dst,
        size,
        count: 1,
    };
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    run_while(&mut cluster, &mut q, |c| c.delivered_count() < 1);
    // detlint::allow(S001, the run injects exactly one message)
    let rec = *cluster.messages().values().next().expect("one message");
    let timelines = cluster.net.take_retired_timelines();
    // Find the data packet's timeline: it has a "head" entry at dst (ACKs
    // flow the other way).
    let dst_ix = u32::from(dst.0);
    let tl = timelines
        .iter()
        .map(|(_, tl)| tl)
        .find(|tl| tl.iter().any(|e| e.tag == "head" && e.value == dst_ix))
        // detlint::allow(S001, tracing is enabled for this run so the timeline exists)
        .expect("data packet timeline recorded");
    let find = |tag: &str| {
        tl.iter()
            .find(|e| e.tag == tag)
            // detlint::allow(S001, the fixed testbed path records every lifecycle tag)
            .unwrap_or_else(|| panic!("timeline entry {tag} missing: {tl:?}"))
            .t
    };
    let inject = find("inject");
    let head = find("head");
    let tail = find("tail");
    let recv_finish = find("nic.recv_finish");
    let deliver = find("nic.deliver");
    // detlint::allow(S001, the run completes only after delivery)
    let delivered = rec.delivered_at.expect("delivered");
    let stages = [
        (
            "host send + SDMA staging + send program",
            rec.sent_at,
            inject,
        ),
        ("wire: inject to head at destination", inject, head),
        ("wire: head to tail (streaming)", head, tail),
        ("recv finish (CPU)", tail, recv_finish),
        ("RDMA to host memory", recv_finish, deliver),
        ("host delivery processing", deliver, delivered),
    ];
    stages
        .iter()
        .map(|(label, a, b)| BreakdownStage {
            stage: (*label).to_string(),
            ns: b.saturating_since(*a).as_ns_f64(),
        })
        .collect()
}

/// One traced one-way message: the complete lifecycle event stream plus
/// which packet carried the payload, from [`traced_one_way`].
#[derive(Debug)]
pub struct TracedRun {
    /// Lifecycle events for every packet of the run (payload and protocol).
    pub tracer: itb_obs::PacketTracer,
    /// Id of the payload packet (host inject → host delivery).
    pub packet: u64,
    /// Closing metrics snapshot of the run's cluster.
    pub snapshot: itb_obs::Snapshot,
}

impl TracedRun {
    /// The payload packet's consecutive lifecycle spans.
    pub fn spans(&self) -> Vec<itb_obs::Span> {
        itb_obs::spans(&self.tracer.for_packet(self.packet))
    }

    /// The payload packet's half-RTT decomposed into the four attribution
    /// categories (always all four, zeros included).
    pub fn attribution(&self) -> Vec<(itb_obs::Attribution, f64)> {
        itb_obs::attribute(&self.spans())
    }
}

/// Send one `size`-byte message from the testbed's host 1 to host 2 with
/// the packet-lifecycle tracer enabled and return the full trace. With
/// `via_itb` the message takes the Figure 8 one-ITB route (and the trace
/// must show the in-transit hop); otherwise the plain up\*/down\* route of
/// Figure 7. Both runs use the ITB-enabled MCP, as in the paper.
pub fn traced_one_way(size: u32, via_itb: bool) -> TracedRun {
    let base = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
    // detlint::allow(S001, latency specs always carry a testbed)
    let tb = base.testbed.clone().expect("testbed spec");
    let spec = if via_itb {
        base.with_route_override(figures::fig8_itb_route(&tb))
            .with_route_override(figures::fig8_return_route(&tb))
    } else {
        base.with_routing(RoutingPolicy::UpDown)
    };
    let n = spec.num_hosts();
    let mut behaviors = vec![AppBehavior::Sink; n];
    behaviors[tb.host1.idx()] = AppBehavior::Stream {
        dst: tb.host2,
        size,
        count: 1,
    };
    let mut cluster = spec.build(behaviors);
    cluster.net.tracer_mut().enable();
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    run_while(&mut cluster, &mut q, |c| c.delivered_count() < 1);
    let snapshot = cluster.metrics_snapshot(q.now());
    let tracer = std::mem::take(cluster.net.tracer_mut());
    // The payload packet is the one that went host-to-host; protocol
    // packets never reach `host.deliver`.
    let packet = tracer
        .packets()
        .into_iter()
        .find(|&p| {
            let evs = tracer.for_packet(p);
            evs.iter().any(|e| e.stage == itb_obs::Stage::HostInject)
                && evs.iter().any(|e| e.stage == itb_obs::Stage::HostDeliver)
        })
        // detlint::allow(S001, the payload packet is traced end to end by construction)
        .expect("payload packet traced end to end");
    if via_itb {
        assert!(
            tracer
                .for_packet(packet)
                .iter()
                .any(|e| e.stage == itb_obs::Stage::McpItbDetect),
            "ITB route must show an in-transit hop in the trace"
        );
    }
    TracedRun {
        tracer,
        packet,
        snapshot,
    }
}

/// One point of a one-way streaming bandwidth sweep.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct BandwidthPoint {
    /// Message size in bytes.
    pub size: u32,
    /// Sustained one-way bandwidth, MB/s.
    pub mb_per_s: f64,
}

/// Measure sustained one-way bandwidth between two hosts per message size —
/// the bandwidth half of `gm_allsize`'s report. `count` back-to-back
/// messages per size; bandwidth = payload bytes / (last delivery − first
/// send).
pub fn stream_bandwidth(
    spec: &ClusterSpec,
    src: HostId,
    dst: HostId,
    sizes: &[u32],
    count: u32,
) -> Vec<BandwidthPoint> {
    sizes
        .iter()
        .map(|&size| {
            let n = spec.num_hosts();
            let mut behaviors = vec![AppBehavior::Sink; n];
            behaviors[src.idx()] = AppBehavior::Stream { dst, size, count };
            let mut cluster = spec.build(behaviors);
            let mut q = EventQueue::new();
            cluster.start(&mut q);
            run_while(&mut cluster, &mut q, |c| {
                c.delivered_count() < count as usize
            });
            assert_eq!(cluster.delivered_count(), count as usize);
            let first_send = cluster
                .messages()
                .values()
                .map(|r| r.sent_at)
                .min()
                // detlint::allow(S001, the run injects at least one message)
                .expect("messages exist");
            let last_delivery = cluster
                .messages()
                .values()
                .filter_map(|r| r.delivered_at)
                .max()
                // detlint::allow(S001, run_until drains the queue so every message is delivered)
                .expect("all delivered");
            let secs = (last_delivery - first_send).as_ps() as f64 / 1e12;
            BandwidthPoint {
                size,
                mb_per_s: (u64::from(size) * u64::from(count)) as f64 / 1e6 / secs,
            }
        })
        .collect()
}

/// Result of a total-exchange run.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct ExchangeResult {
    /// Wall (simulated) time from first send to last delivery, µs.
    pub makespan_us: f64,
    /// Mean per-message latency, µs.
    pub mean_latency_us: f64,
    /// Messages exchanged (n·(n−1)).
    pub messages: usize,
}

/// Run a total exchange — every host sends one `size`-byte message to every
/// other host — and measure the completion time. This models the paper's
/// stated next step: "analyzing the impact of using ITBs in the execution
/// time of distributed applications". Reliability is forced on so the
/// exchange always completes (drops are retransmitted).
pub fn total_exchange(spec: &ClusterSpec, size: u32, horizon_ms: u64) -> ExchangeResult {
    let mut spec = spec.clone();
    // Reliability on so drops cannot lose messages, but with a timeout far
    // above the congested exchange makespan — otherwise go-back-N fires
    // spuriously on merely-queued packets and floods the network.
    spec.calib.gm.reliability = true;
    spec.calib.gm.retrans_timeout = SimDuration::from_ms(horizon_ms / 4);
    let n = spec.num_hosts();
    let behaviors = vec![
        AppBehavior::AllToAll {
            size,
            gap: SimDuration::from_us(20),
        };
        n
    ];
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    let expected = n * (n - 1);
    let horizon = SimTime::ZERO + SimDuration::from_ms(horizon_ms);
    run_while(&mut cluster, &mut q, |c| c.delivered_count() < expected);
    assert!(
        q.now() <= horizon,
        "total exchange exceeded the {horizon_ms} ms horizon"
    );
    assert_eq!(
        cluster.delivered_count(),
        expected,
        "total exchange did not complete"
    );
    let mut makespan = SimTime::ZERO;
    let mut lat = Accum::new();
    for rec in cluster.messages().values() {
        // detlint::allow(S001, a drained run implies delivery)
        let d = rec.delivered_at.expect("all delivered");
        makespan = makespan.max(d);
        lat.add((d - rec.sent_at).as_us_f64());
    }
    ExchangeResult {
        makespan_us: makespan.as_us_f64(),
        mean_latency_us: lat.mean(),
        messages: expected,
    }
}

/// Run a permutation exchange: host *i* streams `count` messages of `size`
/// bytes to its transpose partner *(i + n/2) mod n*. Unlike the total
/// exchange (which is bound by the endpoint links), this pattern pushes all
/// traffic across the fabric core, so route quality dominates completion
/// time — the communication phase of a blocked matrix transpose.
pub fn permutation_exchange(
    spec: &ClusterSpec,
    size: u32,
    count: u32,
    horizon_ms: u64,
) -> ExchangeResult {
    let mut spec = spec.clone();
    spec.calib.gm.reliability = true;
    spec.calib.gm.retrans_timeout = SimDuration::from_ms(horizon_ms / 4);
    let n = spec.num_hosts();
    let behaviors: Vec<AppBehavior> = (0..n)
        .map(|i| AppBehavior::Stream {
            dst: HostId(narrow((i + n / 2) % n)),
            size,
            count,
        })
        .collect();
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    let expected = n * count as usize;
    run_while(&mut cluster, &mut q, |c| c.delivered_count() < expected);
    assert!(
        q.now() <= SimTime::ZERO + SimDuration::from_ms(horizon_ms),
        "permutation exchange exceeded the {horizon_ms} ms horizon"
    );
    assert_eq!(cluster.delivered_count(), expected);
    let mut makespan = SimTime::ZERO;
    let mut lat = Accum::new();
    for rec in cluster.messages().values() {
        // detlint::allow(S001, a drained run implies delivery)
        let d = rec.delivered_at.expect("all delivered");
        makespan = makespan.max(d);
        lat.add((d - rec.sent_at).as_us_f64());
    }
    ExchangeResult {
        makespan_us: makespan.as_us_f64(),
        mean_latency_us: lat.mean(),
        messages: expected,
    }
}

/// Parameters of a loaded-network sweep.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    /// Message size in bytes.
    pub size: u32,
    /// Offered load per host at each point, MB/s.
    pub offered_mb_s: Vec<f64>,
    /// Warm-up before the measurement window.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub window: SimDuration,
    /// Extra drain time after the window to let in-flight messages land.
    pub drain: SimDuration,
}

impl Default for LoadSweep {
    fn default() -> Self {
        LoadSweep {
            size: 512,
            offered_mb_s: vec![2.0, 5.0, 10.0, 20.0, 35.0, 50.0, 70.0, 90.0],
            warmup: SimDuration::from_ms(2),
            window: SimDuration::from_ms(8),
            drain: SimDuration::from_ms(4),
        }
    }
}

/// Run a loaded-network sweep: Poisson uniform traffic from every host at
/// each offered load, measuring accepted throughput and mean latency —
/// the experiment style behind the paper's motivation claims. Points run
/// in parallel with rayon (each builds an independent cluster).
pub fn load_sweep(spec: &ClusterSpec, sweep: &LoadSweep) -> Vec<LoadPoint> {
    sweep
        .offered_mb_s
        .par_iter()
        .map(|&offered| run_load_point(spec, sweep, offered))
        .collect()
}

fn run_load_point(spec: &ClusterSpec, sweep: &LoadSweep, offered_mb_s: f64) -> LoadPoint {
    let n = spec.num_hosts();
    // Mean inter-send gap: size B at offered MB/s → size/offered µs.
    let mean_gap = SimDuration::from_us_f64(sweep.size as f64 / offered_mb_s);
    let behaviors = vec![
        AppBehavior::Poisson {
            size: sweep.size,
            mean_gap,
            limit: 0,
        };
        n
    ];
    let mut cluster = spec.build(behaviors);
    let mut q = EventQueue::new();
    cluster.start(&mut q);
    let w_start = SimTime::ZERO + sweep.warmup;
    let w_end = w_start + sweep.window;
    let horizon = w_end + sweep.drain;
    run_until(&mut cluster, &mut q, horizon);
    summarize_window(&cluster, w_start, w_end, sweep.window, offered_mb_s)
}

/// Aggregate a measurement window from a finished cluster.
pub fn summarize_window(
    cluster: &Cluster,
    w_start: SimTime,
    w_end: SimTime,
    window: SimDuration,
    offered_mb_s: f64,
) -> LoadPoint {
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let mut bytes = 0u64;
    let mut lat = Accum::new();
    let mut p99 = itb_sim::stats::P2Quantile::new(0.99);
    // Deterministic sample order for the streaming estimator.
    let mut recs: Vec<_> = cluster.messages().iter().collect();
    recs.sort_by_key(|(&id, _)| id);
    for (_, rec) in recs {
        if rec.sent_at < w_start || rec.sent_at >= w_end {
            continue;
        }
        sent += 1;
        if let Some(d) = rec.delivered_at {
            delivered += 1;
            bytes += u64::from(rec.len);
            let us = (d - rec.sent_at).as_us_f64();
            lat.add(us);
            p99.add(us);
        }
    }
    let secs = window.as_ps() as f64 / 1e12;
    LoadPoint {
        offered_mb_s,
        accepted_mb_s: bytes as f64 / 1e6 / secs,
        avg_latency_us: lat.mean(),
        p99_latency_us: p99.estimate(),
        sent,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_reports_requested_sizes() {
        let spec = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Original);
        let tb = spec.testbed.clone().unwrap();
        let r = ping_pong(&spec, tb.host1, tb.host2, &[64, 512], 3, 1);
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.points[0].half_rtt_ns.count(), 3);
        assert!(r.points[1].half_rtt_ns.mean() > r.points[0].half_rtt_ns.mean());
    }

    #[test]
    fn fig7_shows_small_constant_overhead() {
        let f = fig7(4);
        let (avg, max) = f.summary();
        assert!(
            (50.0..=300.0).contains(&avg),
            "avg overhead {avg} ns (paper: ≈125 ns)"
        );
        assert!(max <= 350.0, "max overhead {max} ns (paper: ≤300 ns)");
    }

    #[test]
    fn fig8_shows_per_itb_cost() {
        let f = fig8(4);
        let s = f.summary();
        assert!(
            (0.9..=1.7).contains(&s.mean_overhead_us),
            "per-ITB {} us (paper ≈1.3)",
            s.mean_overhead_us
        );
        assert!(
            s.relative_large_pct < s.relative_small_pct,
            "relative overhead must shrink with size"
        );
    }

    #[test]
    fn itb_count_scales_linearly() {
        let pts = itb_count_sweep(&[0, 1, 2, 3], 64, 4);
        // Each extra ITB adds roughly the same increment.
        let d1 = pts[1].1 - pts[0].1;
        let d2 = pts[2].1 - pts[1].1;
        let d3 = pts[3].1 - pts[2].1;
        for d in [d1, d2, d3] {
            assert!(
                (0.4..=1.4).contains(&d),
                "per-ITB increment {d} us out of band: {pts:?}"
            );
        }
        assert!((d1 - d3).abs() < 0.3, "increments should be ≈constant");
    }

    #[test]
    fn breakdown_stages_sum_to_total() {
        let spec = ClusterSpec::fig6_testbed().with_mcp(McpFlavor::Itb);
        let tb = spec.testbed.clone().unwrap();
        let stages = latency_breakdown(&spec, tb.host1, tb.host2, 1024);
        assert_eq!(stages.len(), 6);
        for s in &stages {
            assert!(s.ns >= 0.0, "stage {} negative", s.stage);
        }
        let total: f64 = stages.iter().map(|s| s.ns).sum();
        // Total one-way latency for 1 KiB must sit near the Fig 7 curve
        // (≈ 23 µs half-RTT ⇒ ≈ 23 µs one way).
        assert!(
            (15_000.0..35_000.0).contains(&total),
            "one-way total {total} ns"
        );
        // The streaming stage dominates wire time for 1 KiB.
        assert!(stages[2].ns > stages[1].ns);
    }

    #[test]
    fn traced_attribution_sums_to_end_to_end() {
        let run = traced_one_way(256, true);
        let sp = run.spans();
        assert!(sp.len() >= 6, "expected a multi-stage lifecycle: {sp:?}");
        // Spans tile the packet's life: their sum IS the end-to-end latency.
        let e2e: f64 = sp.iter().map(|s| s.ns).sum();
        assert!(e2e > 0.0);
        let attr = run.attribution();
        assert_eq!(attr.len(), 4);
        let total: f64 = attr.iter().map(|&(_, ns)| ns).sum();
        assert!(
            (total - e2e).abs() < 1e-6,
            "attribution {total} ns != end-to-end {e2e} ns"
        );
        // The snapshot agrees a reinjection (= ITB forward) happened.
        assert!(run.snapshot.counter("net.reinjected") >= 1);
    }

    #[test]
    fn traced_itb_hop_cost_matches_paper_band() {
        let run = traced_one_way(64, true);
        let itb_us = run
            .attribution()
            .into_iter()
            .find(|&(a, _)| a == itb_obs::Attribution::ItbHop)
            .map(|(_, ns)| ns / 1000.0)
            .unwrap();
        assert!(
            (0.9..=1.7).contains(&itb_us),
            "ItbHop {itb_us} µs per hop (paper ≈1.3 µs)"
        );
        // A direct route spends nothing in ITB firmware.
        let direct = traced_one_way(64, false);
        let direct_itb = direct
            .attribution()
            .into_iter()
            .find(|&(a, _)| a == itb_obs::Attribution::ItbHop)
            .map(|(_, ns)| ns)
            .unwrap();
        assert_eq!(direct_itb, 0.0, "no ITB work on the plain UD route");
    }

    #[test]
    fn tiny_load_point_delivers() {
        let spec = ClusterSpec::irregular(4, 2).with_routing(RoutingPolicy::Itb);
        let sweep = LoadSweep {
            size: 256,
            offered_mb_s: vec![1.0],
            warmup: SimDuration::from_us(200),
            window: SimDuration::from_ms(1),
            drain: SimDuration::from_ms(1),
        };
        let pts = load_sweep(&spec, &sweep);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].sent > 0);
        assert!(pts[0].delivered > 0);
        assert!(pts[0].accepted_mb_s > 0.0);
        assert!(pts[0].avg_latency_us > 0.0);
    }
}

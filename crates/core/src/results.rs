//! Serializable experiment results.

use itb_sim::stats::{Accum, Series};
use serde::{Deserialize, Serialize};

/// One message size in a latency sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Message size in bytes.
    pub size: u32,
    /// Half-round-trip latency samples in nanoseconds.
    pub half_rtt_ns: Accum,
}

/// A full `gm_allsize`-style latency sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Configuration label ("Original MCP code", "UD-ITB", …).
    pub label: String,
    /// One point per size, in sweep order.
    pub points: Vec<LatencyPoint>,
}

impl LatencyReport {
    /// Mean half-round-trip latency versus size, as a plottable series
    /// (x = bytes, y = µs) — the curves of Figures 7 and 8.
    pub fn to_series(&self) -> Series {
        let mut s = Series::new(self.label.clone());
        for p in &self.points {
            s.push(f64::from(p.size), p.half_rtt_ns.mean() / 1000.0);
        }
        s
    }
}

/// The Figure 7 reproduction: original versus ITB-enabled MCP on the same
/// up\*/down\* path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Latency sweep under the stock MCP.
    pub original: LatencyReport,
    /// Latency sweep under the ITB-enabled MCP.
    pub modified: LatencyReport,
}

impl Fig7Result {
    /// Per-size overhead in nanoseconds (modified − original).
    pub fn overhead_ns(&self) -> Series {
        let a = self.modified.to_series();
        let b = self.original.to_series();
        let mut d = a.minus(&b, "ITB support overhead");
        for p in &mut d.points {
            p.1 *= 1000.0; // µs → ns
        }
        d
    }

    /// The paper's headline numbers: (average, maximum) overhead in ns.
    pub fn summary(&self) -> (f64, f64) {
        let d = self.overhead_ns();
        (d.mean_y(), d.max_y())
    }
}

/// The Figure 8 reproduction: 5-crossing up\*/down\* path versus 5-crossing
/// path through one in-transit buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Plain up\*/down\* path (the "UD" curve).
    pub ud: LatencyReport,
    /// Path with one in-transit buffer (the "UD-ITB" curve).
    pub itb: LatencyReport,
}

impl Fig8Result {
    /// Per-ITB overhead versus size, in µs. Only one direction carries the
    /// ITB, so — following the paper — the overhead is twice the
    /// half-round-trip difference.
    pub fn overhead_us(&self) -> Series {
        let a = self.itb.to_series();
        let b = self.ud.to_series();
        let mut d = a.minus(&b, "per-ITB overhead");
        for p in &mut d.points {
            p.1 *= 2.0;
        }
        d
    }

    /// Mean per-ITB overhead in µs and the relative overhead at the
    /// smallest and largest size (the paper's 10 % → 3 % claim).
    pub fn summary(&self) -> Fig8Summary {
        let over = self.overhead_us();
        let ud = self.ud.to_series();
        let rel = |ix: usize| {
            let (_, o) = over.points[ix];
            let (_, base) = ud.points[ix];
            o / (2.0 * base) * 100.0 // relative to one-way latency
        };
        Fig8Summary {
            mean_overhead_us: over.mean_y(),
            relative_small_pct: rel(0),
            relative_large_pct: rel(over.points.len() - 1),
        }
    }
}

/// Headline numbers of the Figure 8 reproduction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig8Summary {
    /// Mean per-ITB latency cost (paper: ≈1.3 µs).
    pub mean_overhead_us: f64,
    /// Relative overhead at the smallest size (paper: ≈10 %).
    pub relative_small_pct: f64,
    /// Relative overhead at the largest size (paper: ≈3 %).
    pub relative_large_pct: f64,
}

/// One offered-load point of a loaded-network sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered traffic per host, MB/s.
    pub offered_mb_s: f64,
    /// Accepted (delivered) network throughput, MB/s aggregate.
    pub accepted_mb_s: f64,
    /// Mean message latency among delivered messages, µs.
    pub avg_latency_us: f64,
    /// 99th-percentile message latency (P² streaming estimate), µs.
    pub p99_latency_us: f64,
    /// Messages sent during the measurement window.
    pub sent: u64,
    /// Of those, delivered before the horizon.
    pub delivered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(label: &str, ys_us: &[f64]) -> LatencyReport {
        LatencyReport {
            label: label.into(),
            points: ys_us
                .iter()
                .enumerate()
                .map(|(i, &y)| {
                    let mut a = Accum::new();
                    a.add(y * 1000.0);
                    LatencyPoint {
                        size: 1 << i,
                        half_rtt_ns: a,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn fig7_overhead_difference() {
        let f = Fig7Result {
            original: report("orig", &[10.0, 20.0]),
            modified: report("mod", &[10.125, 20.125]),
        };
        let (avg, max) = f.summary();
        assert!((avg - 125.0).abs() < 1e-6);
        assert!((max - 125.0).abs() < 1e-6);
    }

    #[test]
    fn fig8_overhead_is_doubled_difference() {
        let f = Fig8Result {
            ud: report("ud", &[10.0, 40.0]),
            itb: report("itb", &[10.65, 40.65]),
        };
        let s = f.summary();
        assert!((s.mean_overhead_us - 1.3).abs() < 1e-9);
        // relative at small: 1.3 / 20 = 6.5 %
        assert!((s.relative_small_pct - 6.5).abs() < 1e-9);
        assert!(s.relative_large_pct < s.relative_small_pct);
    }

    #[test]
    fn series_conversion_scales_units() {
        let r = report("x", &[12.5]);
        let s = r.to_series();
        assert_eq!(s.points[0], (1.0, 12.5));
    }
}

//! Differential proof that the 4-ary-heap [`EventQueue`] pops in exactly
//! the order of the original `BinaryHeap`-backed implementation.
//!
//! The queue's contract is stronger than "time-sorted": simultaneous events
//! pop in schedule order (FIFO), and firmware race resolution depends on it.
//! Because every entry carries a unique `(time, seq)` key, *any* correct
//! min-heap pops the same total order — this test pins that equivalence on
//! randomized workloads with heavy timestamp collisions and interleaved
//! schedule/pop phases.

use itb_sim::{EventQueue, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The previous implementation, kept verbatim as the reference model: a
/// `std::collections::BinaryHeap` of `Reverse<(time, seq, payload)>`.
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    seq: u64,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, payload)));
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|Reverse((t, _, p))| (t, p))
    }
}

/// Tiny deterministic xorshift so the workload is reproducible.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let x = &mut self.0;
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }
}

/// Drive both queues through an identical randomized schedule/pop
/// interleaving and assert identical pop sequences.
fn differential_run(seed: u64, rounds: usize, time_range: u64) {
    let mut rng = XorShift(seed);
    let mut dut: EventQueue<u64> = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    let mut payload = 0u64;
    // Track the reference clock so neither queue is scheduled into the past.
    let mut now = SimTime::ZERO;
    for round in 0..rounds {
        // Burst of schedules. A small time range forces many exact ties.
        let burst = (rng.next() % 8) as usize + 1;
        for _ in 0..burst {
            let at = now + itb_sim::SimDuration::from_ns(rng.next() % time_range);
            dut.schedule(at, payload);
            reference.schedule(at, payload);
            payload += 1;
        }
        // Pop a few (sometimes none, sometimes a drain).
        let pops = if round % 13 == 0 {
            usize::MAX // drain fully
        } else {
            (rng.next() % 4) as usize
        };
        for _ in 0..pops {
            let got = dut.pop();
            let want = reference.pop();
            assert_eq!(got, want, "divergence at round {round} (seed {seed})");
            match got {
                Some((t, _)) => now = t,
                None => break,
            }
        }
    }
    // Final drain: every remaining entry must match too.
    loop {
        let got = dut.pop();
        let want = reference.pop();
        assert_eq!(got, want, "divergence in final drain (seed {seed})");
        if got.is_none() {
            break;
        }
    }
}

#[test]
fn matches_binary_heap_order_on_collision_heavy_schedules() {
    // time_range 3: almost everything ties, exercising pure FIFO order.
    differential_run(0x9E37_79B9_7F4A_7C15, 400, 3);
}

#[test]
fn matches_binary_heap_order_on_sparse_schedules() {
    differential_run(0x2545_F491_4F6C_DD1D, 400, 10_000);
}

#[test]
fn matches_binary_heap_order_across_seeds() {
    for seed in 1..=32u64 {
        differential_run(seed, 120, 7);
        differential_run(seed.wrapping_mul(0xD134_2543_DE82_EF95), 120, 1_000);
    }
}

//! Canonical state digests for the model checker.
//!
//! [`Digest`] is a streaming FNV-1a (64-bit) hasher with fixed, documented
//! constants. The model checker (`itb-check`) folds every behavioral field
//! of a simulation world into one `u64` so a BFS over fault interleavings
//! can recognize states it has already explored. Requirements that rule out
//! `std`'s hashers:
//!
//! * **Process-independence** — `RandomState` seeds per process; two runs
//!   (or the CI double-run byte-compare) would disagree on every digest.
//!   detlint rule D001 bans it outright.
//! * **Stability** — digests appear in committed artifacts
//!   (`results/model_check.json`) and counterexample fixtures, so the
//!   function is part of the repo's determinism contract and must not drift
//!   with toolchain versions.
//!
//! FNV-1a is not collision-resistant in the cryptographic sense; the
//! checker's state spaces (≤ ~10^6 states) keep the birthday-collision
//! probability around 2·10^-8, and a collision is *conservative only in
//! cost* terms it would merge two distinct states. DESIGN.md §"Model
//! checking" discusses the trade-off.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming deterministic 64-bit hasher (FNV-1a over little-endian bytes).
///
/// Every `u*` method hashes the value's full-width little-endian byte
/// representation, so `u8(1)` and `u32(1)` produce *different* streams —
/// callers do not need to pad fields to keep composite digests unambiguous,
/// but they must keep the field *order* fixed (the digest is order
/// sensitive by design).
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Fold raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    /// Fold a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold a `usize` widened to 64 bits, so digests agree across pointer
    /// widths.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Fold a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a_vectors() {
        // Classic FNV-1a test vectors (64-bit).
        let mut d = Digest::new();
        assert_eq!(d.finish(), 0xcbf2_9ce4_8422_2325);
        d.bytes(b"a");
        assert_eq!(d.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut d = Digest::new();
        d.bytes(b"foobar");
        assert_eq!(d.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn width_disambiguates_equal_values() {
        let mut a = Digest::new();
        a.u8(1);
        let mut b = Digest::new();
        b.u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn order_sensitive() {
        let mut a = Digest::new();
        a.u32(1);
        a.u32(2);
        let mut b = Digest::new();
        b.u32(2);
        b.u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn usize_width_is_stable() {
        let mut a = Digest::new();
        a.usize(7);
        let mut b = Digest::new();
        b.u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}

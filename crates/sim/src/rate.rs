//! Quantised per-flow transfer rates for the hybrid flow-level engine.
//!
//! The flow engine's max-min fair solver works in floating point (water
//! filling over link capacities has no clean integer form), but everything
//! that touches the event queue must be integer picoseconds or determinism
//! dies by accumulated rounding. [`ByteInterval`] is the bridge: a solved
//! real-valued rate is quantised **exactly once** — through
//! [`SimDuration::from_ns_f64`], the workspace's only sanctioned float→time
//! crossing (detlint rule D003) — into an integer *picoseconds-per-byte*
//! interval, and every subsequent completion time and byte-count
//! computation is pure integer arithmetic on that interval.
//!
//! ## The rounding rule
//!
//! `from_rate(bytes_per_ns)` converts the rate to its reciprocal
//! (nanoseconds per byte), truncates it toward zero onto the picosecond
//! grid via [`SimDuration::from_ns_f64`], then clamps to at least 1 ps per
//! byte. Truncating the *interval* rounds the effective rate **up**, so a
//! quantised flow never finishes later than the real-valued solution says;
//! the clamp bounds the optimism at one byte per picosecond (10⁶ MB/s,
//! four orders of magnitude above a Myrinet link — unreachable in
//! practice). This exact rule is pinned by a detlint fixture pair: solving
//! in floats is fine, but the reciprocal must cross through
//! `from_ns_f64`, never through a bare `as u64` on a division result.

use crate::time::{Bandwidth, SimDuration};
use serde::{Deserialize, Serialize};

/// An integer per-byte service interval: the quantised form of a
/// flow-level rate allocation.
///
/// Semantically identical to [`Bandwidth`] (both are ps/byte) but kept as
/// a separate type because the two arrive from different worlds:
/// `Bandwidth` is configured hardware truth (always exact), a
/// `ByteInterval` is the *output of a float solver* and carries the
/// one-time quantisation documented at the module level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ByteInterval {
    ps_per_byte: u64,
}

impl ByteInterval {
    /// Quantise a solved rate in **bytes per nanosecond** (1 byte/ns =
    /// 1000 MB/s). This is the single float→integer crossing of the flow
    /// engine; see the module docs for the exact rounding rule.
    ///
    /// Non-positive, NaN and infinite rates quantise to the slowest
    /// representable interval (`u64::MAX` ps/byte — effectively stalled),
    /// so a degenerate solver output parks the flow instead of corrupting
    /// the clock.
    #[inline]
    pub fn from_rate(bytes_per_ns: f64) -> Self {
        if bytes_per_ns.is_nan() || bytes_per_ns <= 0.0 {
            return ByteInterval {
                ps_per_byte: u64::MAX,
            };
        }
        let ns_per_byte = 1.0 / bytes_per_ns;
        // from_ns_f64 truncates toward zero and saturates at u64::MAX for
        // overflowing reciprocals (tiny but positive rates).
        let quantised = SimDuration::from_ns_f64(ns_per_byte).as_ps();
        ByteInterval {
            ps_per_byte: quantised.max(1),
        }
    }

    /// An exact interval from configured hardware bandwidth (no rounding).
    #[inline]
    pub const fn from_bandwidth(bw: Bandwidth) -> Self {
        ByteInterval {
            ps_per_byte: bw.ps_per_byte(),
        }
    }

    /// Construct from raw picoseconds per byte (exact; clamped to ≥ 1).
    #[inline]
    pub const fn from_ps_per_byte(ps: u64) -> Self {
        ByteInterval {
            ps_per_byte: if ps == 0 { 1 } else { ps },
        }
    }

    /// The raw integer interval.
    #[inline]
    pub const fn ps_per_byte(self) -> u64 {
        self.ps_per_byte
    }

    /// True when the interval is the stalled sentinel (degenerate rate).
    #[inline]
    pub const fn is_stalled(self) -> bool {
        self.ps_per_byte == u64::MAX
    }

    /// Time to move `bytes` bytes at this rate — pure integer multiply,
    /// saturating so the stalled sentinel yields an unreachable deadline
    /// instead of wrapping.
    #[inline]
    pub const fn time_for(self, bytes: u64) -> SimDuration {
        SimDuration::from_ps(self.ps_per_byte.saturating_mul(bytes))
    }

    /// Whole bytes that complete within `window` at this rate — pure
    /// integer divide, truncating (a partially-served byte stays in
    /// flight for the next round).
    #[inline]
    pub const fn bytes_in(self, window: SimDuration) -> u64 {
        window.as_ps() / self.ps_per_byte
    }

    /// Effective rate in bytes per nanosecond, for reporting only.
    #[inline]
    pub fn rate_bytes_per_ns(self) -> f64 {
        1e3 / self.ps_per_byte as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_rounds_the_rate_up() {
        // 0.15 bytes/ns → 6.666… ns/byte → truncates to 6666 ps/byte,
        // which is a (very slightly) faster effective rate.
        let q = ByteInterval::from_rate(0.15);
        assert_eq!(q.ps_per_byte(), 6_666);
        assert!(q.rate_bytes_per_ns() >= 0.15);
    }

    #[test]
    fn exact_rates_stay_exact() {
        // The Myrinet link rate: 0.16 bytes/ns = 6250 ps/byte exactly.
        let q = ByteInterval::from_rate(0.16);
        assert_eq!(q.ps_per_byte(), 6_250);
        assert_eq!(
            q,
            ByteInterval::from_bandwidth(Bandwidth::from_mbytes_per_sec(160))
        );
    }

    #[test]
    fn degenerate_rates_stall_instead_of_corrupting() {
        for bad in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
            let q = ByteInterval::from_rate(bad);
            assert!(q.is_stalled(), "{bad} must stall");
            // An unreachable deadline, not a wrap.
            assert_eq!(q.time_for(2).as_ps(), u64::MAX);
            assert_eq!(q.bytes_in(SimDuration::from_ms(1)), 0);
        }
        // +inf rate clamps to the 1 ps/byte ceiling, not zero.
        assert_eq!(ByteInterval::from_rate(f64::INFINITY).ps_per_byte(), 1);
        assert_eq!(ByteInterval::from_ps_per_byte(0).ps_per_byte(), 1);
    }

    #[test]
    fn integer_arithmetic_after_the_crossing() {
        let q = ByteInterval::from_ps_per_byte(6_250);
        assert_eq!(q.time_for(512), SimDuration::from_ps(3_200_000));
        assert_eq!(q.bytes_in(SimDuration::from_ps(3_200_000)), 512);
        // Partial bytes truncate: one ps short of a byte is zero bytes.
        assert_eq!(q.bytes_in(SimDuration::from_ps(6_249)), 0);
        assert_eq!(q.bytes_in(SimDuration::from_ps(12_499)), 1);
    }

    #[test]
    fn quantisation_is_deterministic() {
        // Bit-identical inputs give bit-identical intervals — the property
        // the hybrid engine's determinism argument leans on.
        for i in 1..200u64 {
            let r = i as f64 * 1.7e-3;
            assert_eq!(ByteInterval::from_rate(r), ByteInterval::from_rate(r));
        }
    }

    #[test]
    fn ordering_follows_interval_not_rate() {
        // Bigger interval = slower flow; Ord is on the interval.
        let slow = ByteInterval::from_ps_per_byte(10_000);
        let fast = ByteInterval::from_ps_per_byte(5_000);
        assert!(slow > fast);
    }
}

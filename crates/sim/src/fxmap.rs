//! Deterministic fast hashing for simulation-internal maps.
//!
//! `std::collections::HashMap`'s default SipHash-1-3 with a per-process
//! random seed is the wrong trade for the simulator twice over: the hash is
//! a measurable cost on maps indexed once per event (packet registries,
//! per-NIC receive state), and the random seed makes iteration order differ
//! between processes — a reproducibility hazard anywhere iteration order
//! can leak into behaviour. This module provides the standard FxHash
//! multiply-xor mix (the rustc hasher) with a fixed seed: a few cycles per
//! lookup and bit-identical across runs.
//!
//! Keys here are small integers (packet ids, tokens, message ids) — FxHash
//! is a perfectly good mixer for those. Do not use it for attacker-chosen
//! keys; nothing in the simulator is.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash mixing constant (golden-ratio derived, as in rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-seed multiply-xor hasher for small integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7, "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&21), Some(&"v"));
        assert_eq!(m.remove(&21), Some("v"));
        assert_eq!(m.get(&21), None);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        // Same input, same hash — across hasher instances (fixed seed).
        assert_eq!(h(42), h(42));
        // Sequential keys land in distinct buckets of a small table.
        let buckets: FxHashSet<u64> = (0..64).map(|i| h(i) % 64).collect();
        assert!(buckets.len() > 32, "mixer spreads sequential keys");
    }

    #[test]
    fn byte_writes_match_between_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is longer than eight bytes");
        b.write(b"hello world, this is longer than eight bytes");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is longer than eight bytez");
        assert_ne!(a.finish(), c.finish());
    }
}

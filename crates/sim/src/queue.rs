//! Deterministic event calendar.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: fires at `time`; `seq` breaks ties FIFO.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    /// Reversed so that the `BinaryHeap` max-heap pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO ordering among
/// simultaneous events.
///
/// Determinism matters: the MCP firmware model resolves races (e.g. an
/// in-transit packet arriving in the same picosecond the send DMA finishes)
/// by event order, and reproducible experiments require that order to be a
/// pure function of the schedule calls, never of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (or t = 0 before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far (a cheap progress/perf metric).
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a model bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        q.schedule(SimTime::from_ns(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(9));
        assert_eq!(q.events_dispatched(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(4), 1u8);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(4)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo_per_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(50);
        q.schedule(t, 0);
        q.schedule(t, 1);
        q.schedule(SimTime::from_ns(1), 99);
        assert_eq!(q.pop().unwrap().1, 99);
        q.schedule(t, 2);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, vec![0, 1, 2]);
    }
}

//! Deterministic event calendar.

use crate::time::{SimDuration, SimTime};

/// One scheduled entry: fires at `time`; `(rank_time, rank)` breaks ties
/// among simultaneous events.
///
/// `rank_time` is the timestamp of the *scheduling* event (the queue clock
/// at the moment `schedule` was called). `rank` packs the scheduling shard
/// id (high [`SHARD_BITS`] bits, 0 in sequential runs) over the schedule
/// sequence number (low [`SEQ_BITS`] bits) — one word, but it compares
/// exactly like the tuple `(shard, seq)` because `seq` never reaches
/// 2^[`SEQ_BITS`] (asserted on every schedule). Both rank components exist
/// so the parallel engine can reproduce the sequential tie order: a
/// cross-shard handoff re-scheduled after a barrier carries its original
/// rank instead of the (later, nondeterministic) merge-time rank.
struct Entry<E> {
    time: SimTime,
    rank_time: SimTime,
    rank: u64,
    event: E,
}

impl<E> Entry<E> {
    /// Total order on `(time, rank_time, rank)`. Keys are unique (the `seq`
    /// low bits of `rank` increment on every schedule), so any heap
    /// discipline pops entries in exactly this order — the heap's arity
    /// cannot perturb determinism.
    ///
    /// In a sequential run this order equals the historical `(time, seq)`
    /// order: `rank_time` is the queue clock at schedule time, which never
    /// decreases as `seq` increases, and the shard bits are constantly 0 —
    /// so among entries with equal `time`, sorting by `(rank_time, rank)`
    /// sorts by `seq`.
    #[inline]
    fn key(&self) -> (SimTime, SimTime, u64) {
        (self.time, self.rank_time, self.rank)
    }
}

/// Low bits of an entry's `rank`: the per-queue schedule sequence number.
const SEQ_BITS: u32 = 48;
/// High bits of an entry's `rank`: the scheduling shard id.
const SHARD_BITS: u32 = 16;
/// Exclusive upper bound on sequence numbers (2^48 ≈ 2.8 × 10^14 schedules
/// — about a month of continuous scheduling at the engine's measured rate).
const SEQ_LIMIT: u64 = 1 << SEQ_BITS;

/// Heap arity. A 4-ary heap is ~half the depth of a binary heap: fewer
/// sift levels per push/pop and better cache behaviour on the fat union
/// event types the integrated cluster schedules (measured ~10-15% of the
/// whole-simulation profile moves out of the queue vs `BinaryHeap`).
const D: usize = 4;

/// A time-ordered event queue with deterministic FIFO ordering among
/// simultaneous events.
///
/// Determinism matters: the MCP firmware model resolves races (e.g. an
/// in-transit packet arriving in the same picosecond the send DMA finishes)
/// by event order, and reproducible experiments require that order to be a
/// pure function of the schedule calls, never of heap internals. The
/// `(time, seq)` key is unique per entry, so the d-ary heap used here pops
/// in exactly the order the previous `BinaryHeap` implementation did (see
/// `tests/queue_determinism.rs` for the differential proof).
pub struct EventQueue<E> {
    /// Min-heap on `(time, rank_time, rank)`, `D`-ary, rooted at index 0.
    heap: Vec<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
    /// Tie-break shard id stamped on locally scheduled entries, pre-shifted
    /// into the high [`SHARD_BITS`] of `rank`. 0 in sequential runs; the
    /// parallel engine sets each shard's own id so same-picosecond events
    /// from different shards merge in a fixed order.
    rank_base: u64,
    /// Key of the most recently popped entry (see
    /// [`EventQueue::cross_shard_ties`]).
    last_pop: Option<(SimTime, SimTime, u64)>,
    /// Count of pops whose `(time, rank_time)` equalled the previous pop's
    /// while the shard bits of `rank` differed.
    cross_shard_ties: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            rank_base: 0,
            last_pop: None,
            cross_shard_ties: 0,
        }
    }

    /// Set the shard id stamped on locally scheduled entries (see
    /// [`EventQueue::schedule_ranked`]). The parallel engine calls this once
    /// per shard queue; sequential code never needs it (the default 0 keeps
    /// the historical `(time, seq)` order exactly).
    ///
    /// # Panics
    /// Panics if `shard` does not fit in the [`SHARD_BITS`] rank field.
    pub fn set_shard_rank(&mut self, shard: u32) {
        assert!(shard < (1 << SHARD_BITS), "shard id {shard} out of range");
        self.rank_base = u64::from(shard) << SEQ_BITS;
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (or t = 0 before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far (a cheap progress/perf metric).
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a model bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq();
        self.heap.push(Entry {
            time: at,
            rank_time: self.now,
            rank: self.rank_base | seq,
            event,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedule `event` at `at` with an explicit tie-break rank, preserving
    /// the rank it was *originally* scheduled with on another shard.
    ///
    /// The parallel engine uses this when absorbing cross-shard handoffs: a
    /// remote event generated at time `rank_time` on shard `rank_src` must
    /// sort among same-picosecond events exactly as it would have in the
    /// sequential run, not by its (later) merge time. Sequential code should
    /// use [`EventQueue::schedule`], which stamps the rank automatically.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time or `rank_src` does not
    /// fit in the [`SHARD_BITS`] rank field.
    pub fn schedule_ranked(&mut self, at: SimTime, rank_time: SimTime, rank_src: u32, event: E) {
        assert!(
            at >= self.now,
            "scheduled into the past: at={at} now={}",
            self.now
        );
        assert!(
            rank_src < (1 << SHARD_BITS),
            "shard id {rank_src} out of range"
        );
        let seq = self.next_seq();
        self.heap.push(Entry {
            time: at,
            rank_time,
            rank: (u64::from(rank_src) << SEQ_BITS) | seq,
            event,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Allocate the next tie-break sequence number.
    #[inline]
    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        assert!(seq < SEQ_LIMIT, "event sequence number overflow");
        self.seq += 1;
        seq
    }

    /// Schedule `event` to fire `delta` after the current time — the common
    /// "follow-up event" pattern (`schedule(now + d, ev)` where `now` is the
    /// timestamp of the event being handled, which always equals
    /// [`EventQueue::now`] inside a handler).
    #[inline]
    pub fn schedule_after(&mut self, delta: SimDuration, event: E) {
        let at = self.now + delta;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        debug_assert!(entry.time >= self.now);
        // Entries sharing (time, rank_time) are contiguous in pop order, so
        // comparing each pop against only its predecessor sees every pair
        // of tied entries; differing shard bits flag a cross-shard tie.
        if let Some((t, rt, r)) = self.last_pop {
            if t == entry.time
                && rt == entry.rank_time
                && (r >> SEQ_BITS) != (entry.rank >> SEQ_BITS)
            {
                self.cross_shard_ties += 1;
            }
        }
        self.last_pop = Some((entry.time, entry.rank_time, entry.rank));
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Number of *cross-shard rank ties* dispatched so far: consecutive pops
    /// with identical `(time, rank_time)` whose ranks came from different
    /// shards.
    ///
    /// Such a pair is the one place where the parallel engine's tie-break
    /// (shard id) can differ from the sequential engine's (global schedule
    /// order), so `cross_shard_ties == 0` across every shard queue *proves*
    /// the run dispatched events in exactly the sequential order. Always 0
    /// in sequential runs (every rank carries shard 0).
    #[inline]
    pub fn cross_shard_ties(&self) -> u64 {
        self.cross_shard_ties
    }

    /// Visit every pending entry in pop order — `(time, rank_time, event)`
    /// sorted by the full `(time, rank_time, rank)` key — without disturbing
    /// the heap.
    ///
    /// This exists for the model checker's world digest: the heap's array
    /// layout depends on insertion history, but the *pop order* is the
    /// canonical meaning of the queue's contents. The raw `rank` is
    /// deliberately not exposed: its low bits are an ever-increasing
    /// schedule counter, so two worlds that will dispatch identical events
    /// at identical times would digest differently if the counter leaked
    /// in. Relative order among ties is conveyed by iteration position,
    /// which is all a digest needs (newly scheduled entries always receive
    /// larger sequence numbers than every pending entry, so position is a
    /// faithful stand-in for the counter).
    pub fn iter_ordered(&self) -> impl Iterator<Item = (SimTime, SimTime, &E)> {
        let mut ix: Vec<usize> = (0..self.heap.len()).collect();
        ix.sort_unstable_by_key(|&i| self.heap[i].key());
        ix.into_iter().map(move |i| {
            let e = &self.heap[i];
            (e.time, e.rank_time, &e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Whether any events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Drop every pending event. The clock, dispatch count and tie-break
    /// sequence are preserved: a cleared queue is "this world, with nothing
    /// scheduled", not a brand-new queue.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Pre-allocate room for `additional` more events (steady-state runs
    /// can reserve their working set once and never grow the heap again).
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Move the entry at `i` up until its parent is no bigger.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    /// Move the entry at `i` down until no child is smaller.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = i * D + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + D).min(len);
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            for c in first_child + 1..last_child {
                let k = self.heap[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if self.heap[i].key() <= best_key {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        q.schedule(SimTime::from_ns(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(9));
        assert_eq!(q.events_dispatched(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(4), 1u8);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(4)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo_per_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(50);
        q.schedule(t, 0);
        q.schedule(t, 1);
        q.schedule(SimTime::from_ns(1), 99);
        assert_eq!(q.pop().unwrap().1, 99);
        q.schedule(t, 2);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, vec![0, 1, 2]);
    }

    #[test]
    fn schedule_after_is_relative_to_the_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_ns(5), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15));
        assert_eq!(e, "second");
    }

    #[test]
    fn clear_keeps_clock_and_fifo_sequence() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 0);
        q.pop();
        q.schedule(SimTime::from_ns(20), 1);
        q.schedule(SimTime::from_ns(20), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(10), "clock survives clear");
        assert_eq!(q.events_dispatched(), 1);
        // Ties scheduled after the clear still pop FIFO.
        q.schedule(SimTime::from_ns(30), 7);
        q.schedule(SimTime::from_ns(30), 8);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 8);
    }

    #[test]
    fn reserve_does_not_disturb_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(2), "b");
        q.reserve(1024);
        q.schedule(SimTime::from_ns(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn sequential_runs_never_count_cross_shard_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..50 {
            q.schedule(t, i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.cross_shard_ties(), 0, "shard bits are uniformly 0");
    }

    #[test]
    fn cross_shard_rank_ties_are_detected() {
        let mut q = EventQueue::new();
        q.set_shard_rank(1);
        let t = SimTime::from_ns(10);
        let rt = SimTime::ZERO;
        // Local entry (shard 1) and an absorbed remote entry (shard 2) tied
        // on (time, rank_time): the pair the parallel tie-break can order
        // differently than the sequential run.
        q.schedule(t, "local");
        q.schedule_ranked(t, rt, 2, "remote");
        assert_eq!(q.pop().unwrap().1, "local");
        assert_eq!(q.pop().unwrap().1, "remote");
        assert_eq!(q.cross_shard_ties(), 1);
        // Different rank_time is not a tie: the order is forced either way.
        // ("a" is stamped rank_time = now = 10 ns here.)
        q.schedule(SimTime::from_ns(20), "a");
        q.schedule_ranked(SimTime::from_ns(20), SimTime::from_ns(5), 2, "b");
        while q.pop().is_some() {}
        assert_eq!(q.cross_shard_ties(), 1);
    }

    #[test]
    fn iter_ordered_matches_pop_order() {
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(SimTime::from_ns(x % 37), i);
        }
        let snapshot: Vec<(SimTime, u64)> = q.iter_ordered().map(|(t, _, &e)| (t, e)).collect();
        let popped: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(snapshot, popped);
    }

    #[test]
    fn large_random_schedule_pops_sorted() {
        // Exercise deep sift paths of the d-ary heap.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for i in 0..10_000u64 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(SimTime::from_ns(x % 997), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((t, seq_marker)) = q.pop() {
            if t == last.0 {
                assert!(seq_marker > last.1, "FIFO among ties");
            } else {
                assert!(t > last.0, "time-sorted");
            }
            last = (t, seq_marker);
            n += 1;
        }
        assert_eq!(n, 10_000);
    }
}

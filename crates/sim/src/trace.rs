//! Lightweight event tracing.
//!
//! A bounded ring buffer of `(time, tag, detail)` records that components can
//! write into when tracing is enabled. Used by tests to assert on causal
//! orderings (e.g. "Early Recv fired before the send DMA was programmed")
//! without coupling assertions to internal struct layouts.

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the traced action happened.
    pub time: SimTime,
    /// Short machine-matchable tag, e.g. `"mcp.early_recv"`.
    pub tag: &'static str,
    /// Free-form detail (packet id, port number, …).
    pub detail: String,
}

/// A bounded trace sink. Disabled by default: `record` is a no-op until
/// [`Trace::enable`] is called, so hot paths pay only a branch.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Trace {
    /// A disabled trace with room for `cap` records.
    pub fn new(cap: usize) -> Self {
        Trace {
            enabled: false,
            cap,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Start recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stop recording (records are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one entry; drops (and counts) once the buffer is full.
    #[inline]
    pub fn record(&mut self, time: SimTime, tag: &'static str, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord {
            time,
            tag,
            detail: detail(),
        });
    }

    /// All records so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records with a given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// First record with a given tag.
    pub fn first(&self, tag: &str) -> Option<&TraceRecord> {
        self.records.iter().find(|r| r.tag == tag)
    }

    /// Number of records dropped because the buffer filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear all records (keeps enable state).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::new(8);
        t.record(SimTime::from_ns(1), "x", || "never".into());
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_records_in_order() {
        let mut t = Trace::new(8);
        t.enable();
        t.record(SimTime::from_ns(1), "a", || "1".into());
        t.record(SimTime::from_ns(2), "b", || "2".into());
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.first("b").unwrap().time, SimTime::from_ns(2));
        assert_eq!(t.with_tag("a").count(), 1);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut t = Trace::new(2);
        t.enable();
        for i in 0..5 {
            t.record(SimTime::from_ns(i), "t", String::new);
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert!(t.records().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn clear_makes_room_again() {
        let mut t = Trace::new(1);
        t.enable();
        t.record(SimTime::from_ns(1), "a", || "1".into());
        t.record(SimTime::from_ns(2), "b", || "2".into());
        assert_eq!(t.dropped(), 1);
        t.clear();
        t.record(SimTime::from_ns(3), "c", || "3".into());
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.first("c").unwrap().detail, "3");
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = Trace::new(0);
        t.enable();
        t.record(SimTime::ZERO, "x", String::new);
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn detail_closure_runs_only_for_kept_records() {
        // The detail is built lazily so disabled traces and overflow drops
        // pay no formatting cost — the property that makes in-loop record
        // calls safe on hot paths.
        let mut calls = 0;
        let mut t = Trace::new(1);
        t.record(SimTime::ZERO, "off", || {
            calls += 1;
            String::new()
        });
        assert_eq!(calls, 0, "disabled: closure must not run");
        t.enable();
        t.record(SimTime::ZERO, "kept", || {
            calls += 1;
            String::new()
        });
        assert_eq!(calls, 1);
        t.record(SimTime::ZERO, "dropped", || {
            calls += 1;
            String::new()
        });
        assert_eq!(calls, 1, "overflow: closure must not run");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn disable_stops_recording_but_keeps_history() {
        let mut t = Trace::new(8);
        t.enable();
        t.record(SimTime::from_ns(1), "a", || "1".into());
        t.disable();
        t.record(SimTime::from_ns(2), "b", || "2".into());
        assert!(!t.is_enabled());
        assert_eq!(t.records().len(), 1);
        assert!(t.first("b").is_none());
    }
}

//! Conservative sharded parallel engine (epoch-synchronized PDES).
//!
//! The sequential engine ([`crate::engine`]) is the reference semantics;
//! this module executes the *same* event order across several OS threads.
//! The integrating crate partitions its model into shards (see
//! `itb_topo::partition`), each owning a private [`EventQueue`], and
//! implements [`ShardWorld`] so the driver here can:
//!
//! 1. find the global next event time `g` (a barrier + one atomic slot per
//!    shard),
//! 2. let every shard execute its local events in the bounded window
//!    `[g, g + lookahead)` in parallel — conservatively safe because any
//!    cross-shard effect produced at time `t` fires at `t + lookahead` or
//!    later (the lookahead is the minimum cross-shard cable latency, so the
//!    physics of the model guarantees the bound),
//! 3. exchange the cross-shard messages produced during the window through
//!    per-(src, dst) mailboxes, and
//! 4. absorb them in a *fixed merge order* — `(fire time, rank time, source
//!    shard, source sequence)` — before the next window.
//!
//! Determinism contract, precisely: a parallel run is always reproducible
//! (for a fixed shard count the engine never consults wall-clock time,
//! thread identity or map iteration order), and it dispatches events in
//! exactly the sequential order **except** in one narrow situation — two
//! events with identical `(fire time, rank time)` whose producers ran on
//! *different* shards. Sequentially that tie is broken by the global
//! schedule-call order of the two producers (which were themselves
//! simultaneous); in parallel it is broken by producer shard id, because
//! reconstructing the global schedule order of simultaneous remote
//! producers would need an unbounded rank chain back through every
//! same-picosecond ancestor. Every queue counts exactly these pairs
//! ([`EventQueue::cross_shard_ties`] — tied entries pop back-to-back, so
//! an adjacent-pop scan sees every pair), and the driver reports the sum
//! in [`ParReport::cross_shard_ties`]: **a run reporting 0 is proven
//! byte-identical to the sequential run** (digests, figure artifacts,
//! chaos audits). Ties do occur in realistic workloads — small
//! desynchronized loads (the 4/8-switch Poisson equivalence scenarios)
//! report 0, but the large benchmark loads tie at scale (hundreds to
//! thousands of pairs at 32–64 switches) — so a nonzero count does *not*
//! by itself mean divergence, only that byte-identity is no longer
//! guaranteed by construction. Whether the tied events commute in effect
//! is workload-dependent: the benchmark Poisson loads empirically match
//! sequential on every order-sensitive observable despite their ties
//! (re-verified on every change by `tests/par_equivalence.rs` and the CI
//! 1-vs-4 digest byte-compare), while fully symmetric workloads
//! (identical synchronized senders over uniform latencies) genuinely
//! reorder deliveries relative to sequential. Either way the run stays
//! deterministic and physically valid for a fixed shard count.
//!
//! Threads park on [`std::sync::Barrier`] between windows, so the engine is
//! correct (if pointless) even when oversubscribed on a single core.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A cross-shard message captured during a window, carrying everything the
/// destination needs to reproduce the sequential schedule order.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Absolute time the event must fire at on the destination shard.
    pub fire_at: SimTime,
    /// Clock of the *scheduling* event on the source shard (the rank the
    /// sequential run would have stamped).
    pub rank_time: SimTime,
    /// Source shard id (tie-break between same-picosecond messages from
    /// different shards).
    pub src_shard: u32,
    /// Source-local capture sequence (FIFO among messages from one shard).
    pub src_seq: u64,
    /// The model-specific payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// The fixed merge key: destination shards absorb mailbox contents
    /// sorted by this, which equals the sequential dispatch order except
    /// for cross-shard rank ties (see the module docs).
    #[inline]
    pub fn merge_key(&self) -> (SimTime, SimTime, u32, u64) {
        (self.fire_at, self.rank_time, self.src_shard, self.src_seq)
    }

    /// Schedule this envelope into a shard's queue, preserving its rank.
    #[inline]
    pub fn schedule_into<E>(self, q: &mut EventQueue<E>, into: impl FnOnce(M) -> E) {
        q.schedule_ranked(self.fire_at, self.rank_time, self.src_shard, into(self.msg));
    }
}

/// One shard of a partitioned simulation, as seen by the window driver.
///
/// Implementations own their shard's [`EventQueue`] plus the model state the
/// shard is responsible for. The driver only ever needs three things: the
/// next pending local time, bounded execution, and mailbox plumbing.
pub trait ShardWorld {
    /// Cross-shard message payload.
    type Msg: Send;

    /// Timestamp of the earliest pending local event (`None` when idle).
    fn next_time(&self) -> Option<SimTime>;

    /// Execute every local event with `time < limit`, in queue order,
    /// capturing cross-shard effects into internal per-destination outboxes
    /// instead of scheduling them locally.
    fn run_window(&mut self, limit: SimTime);

    /// Drain the outbox for destination shard `dst` (capture order must be
    /// the deterministic execution order of [`ShardWorld::run_window`]).
    fn take_outbox(&mut self, dst: u32) -> Vec<Envelope<Self::Msg>>;

    /// Accept one incoming envelope: adopt any carried state and schedule
    /// the event with [`EventQueue::schedule_ranked`]. The driver calls this
    /// in merge-key order.
    fn absorb(&mut self, env: Envelope<Self::Msg>);

    /// Cross-shard rank ties this shard's queue dispatched (see
    /// [`EventQueue::cross_shard_ties`]); the driver sums these into
    /// [`ParReport::cross_shard_ties`]. Implementations forward their
    /// queue's counter.
    fn cross_shard_ties(&self) -> u64 {
        0
    }

    /// Cumulative events this shard's queue has dispatched; the profiler
    /// differences it around each window to attribute event work to epoch
    /// windows. Implementations forward [`EventQueue::events_dispatched`];
    /// the default (always 0) merely zeroes the per-window `events` column.
    fn events_dispatched(&self) -> u64 {
        0
    }
}

/// Summary of one parallel run.
#[derive(Debug, Clone)]
pub struct ParReport {
    /// Worker threads used (= shard count).
    pub threads: u32,
    /// Synchronized execution windows (barrier epochs with work in them).
    pub windows: u64,
    /// Lookahead bound the windows were derived from.
    pub lookahead: SimDuration,
    /// Total cross-shard rank ties across every shard queue. 0 proves the
    /// run dispatched events in exactly the sequential order (see the
    /// module docs); nonzero means same-picosecond cross-shard arrivals
    /// were ordered by shard id instead of global schedule order.
    pub cross_shard_ties: u64,
}

/// One (shard, window) profiler record: what a shard did inside one epoch
/// window of the conservative protocol.
///
/// Sim-time fields (`g_ps`, `limit_ps`) and count fields are deterministic
/// for a fixed shard count; the `barrier_*_wait_ns` wall-clock fields are
/// *not* (they measure OS scheduling), so profiler artifacts must never be
/// byte-compared across runs — the determinism gates compare only the
/// sim-time artifacts.
#[derive(Debug, Clone, Serialize)]
pub struct WindowRecord {
    /// Shard this record belongs to.
    pub shard: u32,
    /// Window ordinal (0-based, counted per shard; all shards execute the
    /// same window sequence).
    pub window: u64,
    /// Window start: the global minimum next-event time g, picoseconds.
    pub g_ps: u64,
    /// Exclusive window end `min(g + lookahead, horizon + 1)`, picoseconds.
    pub limit_ps: u64,
    /// Events this shard dispatched inside the window.
    pub events: u64,
    /// Cross-shard envelopes absorbed at the start of this window.
    pub envelopes_in: u64,
    /// Cross-shard envelopes this shard deposited during the window.
    pub envelopes_out: u64,
    /// Cross-shard rank ties dispatched inside the window.
    pub ties: u64,
    /// Wall nanoseconds spent waiting on barrier A (next-time agreement).
    /// Nondeterministic; 0 when profiling is off or the run is single-shard.
    pub barrier_a_wait_ns: u64,
    /// Wall nanoseconds spent waiting on barrier B (window completion).
    /// Nondeterministic; 0 when profiling is off or the run is single-shard.
    pub barrier_b_wait_ns: u64,
}

/// The full per-(shard, window) profile of one parallel run, sorted by
/// `(shard, window)`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ParProfile {
    /// One record per shard per executed window.
    pub records: Vec<WindowRecord>,
}

/// Sentinel for "shard has nothing pending".
const IDLE: u64 = u64::MAX;

/// Run `f`, returning its result plus the wall nanoseconds it took — but
/// only when `profile` is set; otherwise the clock is never touched and the
/// reading is 0. Wall time here is observability sidecar data (barrier-wait
/// attribution); it never feeds back into simulation state, which is what
/// keeps profiled runs bit-reproducible in every sim-time artifact.
fn wall_ns<T>(profile: bool, f: impl FnOnce() -> T) -> (T, u64) {
    if !profile {
        return (f(), 0);
    }
    // detlint::allow(D002, profiler stopwatch: wall-ns lands only in WindowRecord sidecars, never in sim state)
    let t0 = std::time::Instant::now();
    let out = f();
    (out, crate::narrow(t0.elapsed().as_nanos()))
}

/// One window's cross-shard mail from one source shard to one destination.
type Mailbox<M> = Mutex<Vec<Envelope<M>>>;

/// Run `worlds` (one per shard) to `horizon` (inclusive, matching
/// [`crate::engine::run_until`]) on one OS thread per shard.
///
/// `lookahead` must be a *conservative* bound: an event executing at time
/// `t` on one shard may only produce cross-shard effects firing at
/// `t + lookahead` or later. The caller derives it from the partition's
/// minimum cut-link latency.
///
/// Returns the worlds (for stats extraction) and a [`ParReport`].
///
/// # Panics
/// Panics if `worlds` is empty or `lookahead` is zero — a conservative
/// engine cannot make progress without strictly positive lookahead.
pub fn run_shards<W>(
    worlds: Vec<W>,
    lookahead: SimDuration,
    horizon: SimTime,
) -> (Vec<W>, ParReport)
where
    W: ShardWorld + Send,
{
    let (worlds, report, _) = run_shards_impl(worlds, lookahead, horizon, false);
    (worlds, report)
}

/// [`run_shards`] with the per-(shard, window) profiler enabled: every epoch
/// window additionally produces a [`WindowRecord`] (events, envelope counts,
/// ties, barrier-wait wall-ns). Sim-time execution is identical to the
/// unprofiled run — the profiler only *reads* counters the engine maintains
/// anyway, plus a wall stopwatch around the barrier waits.
///
/// # Panics
/// Same contract as [`run_shards`].
pub fn run_shards_profiled<W>(
    worlds: Vec<W>,
    lookahead: SimDuration,
    horizon: SimTime,
) -> (Vec<W>, ParReport, ParProfile)
where
    W: ShardWorld + Send,
{
    run_shards_impl(worlds, lookahead, horizon, true)
}

fn run_shards_impl<W>(
    worlds: Vec<W>,
    lookahead: SimDuration,
    horizon: SimTime,
    profile: bool,
) -> (Vec<W>, ParReport, ParProfile)
where
    W: ShardWorld + Send,
{
    let n = worlds.len();
    assert!(n > 0, "run_shards needs at least one shard");
    assert!(
        lookahead > SimDuration::ZERO,
        "conservative engine needs positive lookahead"
    );

    // Single shard: no cross-shard traffic is possible; one unbounded
    // window to the horizon is the sequential engine.
    if n == 1 {
        let mut worlds = worlds;
        let events_before = worlds[0].events_dispatched();
        let ties_before = worlds[0].cross_shard_ties();
        let limit_ps = horizon.as_ps().saturating_add(1);
        worlds[0].run_window(SimTime::from_ps(limit_ps));
        let cross_shard_ties = worlds[0].cross_shard_ties();
        let profile_out = ParProfile {
            records: if profile {
                vec![WindowRecord {
                    shard: 0,
                    window: 0,
                    g_ps: 0,
                    limit_ps,
                    events: worlds[0].events_dispatched().saturating_sub(events_before),
                    envelopes_in: 0,
                    envelopes_out: 0,
                    ties: cross_shard_ties.saturating_sub(ties_before),
                    barrier_a_wait_ns: 0,
                    barrier_b_wait_ns: 0,
                }]
            } else {
                Vec::new()
            },
        };
        return (
            worlds,
            ParReport {
                threads: 1,
                windows: 1,
                lookahead,
                cross_shard_ties,
            },
            profile_out,
        );
    }

    // next_times[s]: earliest pending event on shard s (IDLE when empty),
    // published before barrier A, read after it.
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(IDLE)).collect();
    // mailboxes[src][dst]: envelopes captured by src for dst during the
    // current window. Written between barrier A and barrier B (by src
    // only), drained between barrier B and the next barrier A (by dst
    // only) — the barriers are what make the Mutex uncontended.
    let mailboxes: Vec<Vec<Mailbox<W::Msg>>> = (0..n)
        .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier_a = Barrier::new(n);
    let barrier_b = Barrier::new(n);
    let l_ps = lookahead.as_ps();
    let horizon_ps = horizon.as_ps();

    // detlint::allow(D002, the conservative PDES driver is the one sanctioned thread-spawn site; workers synchronize on barriers and never read wall-clock time)
    let results: Vec<(W, u64, Vec<WindowRecord>)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (me, mut world) in worlds.into_iter().enumerate() {
            let next_times = &next_times;
            let mailboxes = &mailboxes;
            let barrier_a = &barrier_a;
            let barrier_b = &barrier_b;
            // detlint::allow(D002, one worker per shard, joined before run_shards returns)
            handles.push(scope.spawn(move || {
                let mut windows: u64 = 0;
                let mut incoming: Vec<Envelope<W::Msg>> = Vec::new();
                let mut records: Vec<WindowRecord> = Vec::new();
                loop {
                    // Drain mailboxes addressed to this shard (deposited
                    // before the previous barrier B) and merge them in the
                    // fixed order the sequential run would dispatch them.
                    for (src, row) in mailboxes.iter().enumerate() {
                        if src != me {
                            // detlint::allow(S001, poisoning is unreachable: a worker panic aborts the scope before the lock is retaken)
                            let mut slot = row[me].lock().expect("poisoned");
                            incoming.append(&mut slot);
                        }
                    }
                    let envelopes_in = incoming.len() as u64;
                    incoming.sort_by_key(Envelope::merge_key);
                    for env in incoming.drain(..) {
                        world.absorb(env);
                    }

                    // Publish the earliest pending local time, then agree on
                    // the global minimum g.
                    let mine = world.next_time().map_or(IDLE, SimTime::as_ps);
                    next_times[me].store(mine, Ordering::SeqCst);
                    // detlint::allow(T001, barrier-wait stopwatch: the reading lands only in WindowRecord sidecars and never feeds back into sim state)
                    let ((), barrier_a_wait_ns) = wall_ns(profile, || {
                        barrier_a.wait();
                    });
                    let mut g = IDLE;
                    for slot in next_times.iter() {
                        g = g.min(slot.load(Ordering::SeqCst));
                    }
                    if g > horizon_ps {
                        // Every shard computes the same g from the same
                        // slots, so all workers break on the same epoch —
                        // with every mailbox provably drained above.
                        break;
                    }

                    // Execute the window [g, g + lookahead), clipped to the
                    // inclusive horizon, then deposit cross-shard effects.
                    let limit = g.saturating_add(l_ps).min(horizon_ps.saturating_add(1));
                    let events_before = world.events_dispatched();
                    let ties_before = world.cross_shard_ties();
                    world.run_window(SimTime::from_ps(limit));
                    let mut envelopes_out = 0u64;
                    for (dst, slot) in mailboxes[me].iter().enumerate() {
                        if dst != me {
                            let out = world.take_outbox(crate::narrow(dst));
                            if !out.is_empty() {
                                envelopes_out += out.len() as u64;
                                // detlint::allow(S001, poisoning is unreachable: a worker panic aborts the scope before the lock is retaken)
                                let mut slot = slot.lock().expect("poisoned");
                                slot.extend(out);
                            }
                        }
                    }
                    if profile {
                        records.push(WindowRecord {
                            shard: crate::narrow(me),
                            window: windows,
                            g_ps: g,
                            limit_ps: limit,
                            events: world.events_dispatched().saturating_sub(events_before),
                            envelopes_in,
                            envelopes_out,
                            ties: world.cross_shard_ties().saturating_sub(ties_before),
                            barrier_a_wait_ns,
                            barrier_b_wait_ns: 0,
                        });
                    }
                    windows += 1;
                    // detlint::allow(T001, barrier-wait stopwatch: the reading lands only in WindowRecord sidecars and never feeds back into sim state)
                    let ((), barrier_b_wait_ns) = wall_ns(profile, || {
                        barrier_b.wait();
                    });
                    if let Some(last) = records.last_mut() {
                        last.barrier_b_wait_ns = barrier_b_wait_ns;
                    }
                }
                (world, windows, records)
            }));
        }
        handles
            .into_iter()
            // detlint::allow(S001, a worker panic is a model bug; join propagates it to the caller)
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    let mut worlds = Vec::with_capacity(n);
    let mut windows = 0u64;
    let mut cross_shard_ties = 0u64;
    let mut records = Vec::new();
    for (w, wnd, rec) in results {
        windows = windows.max(wnd);
        cross_shard_ties += w.cross_shard_ties();
        records.extend(rec);
        worlds.push(w);
    }
    records.sort_by_key(|r| (r.shard, r.window));
    (
        worlds,
        ParReport {
            threads: crate::narrow(n),
            windows,
            lookahead,
            cross_shard_ties,
        },
        ParProfile { records },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sharded model: each shard owns one counter host; every event
    /// increments the local counter and with a fixed pattern sends a
    /// follow-up to the other shard at `now + delay` (delay ≥ lookahead).
    struct Toy {
        me: u32,
        q: EventQueue<u64>,
        count: u64,
        history: Vec<(SimTime, u64)>,
        outbox: Vec<Envelope<u64>>,
        out_seq: u64,
        hops: u64,
        delay: SimDuration,
    }

    impl Toy {
        fn handle(&mut self, now: SimTime, tag: u64) {
            self.count += 1;
            self.history.push((now, tag));
            if self.hops > 0 {
                self.hops -= 1;
                // Alternate: even tags stay local, odd tags hop shards.
                if tag.is_multiple_of(2) {
                    self.q.schedule(now + self.delay, tag + 1);
                } else {
                    self.out_seq += 1;
                    self.outbox.push(Envelope {
                        fire_at: now + self.delay,
                        rank_time: now,
                        src_shard: self.me,
                        src_seq: self.out_seq,
                        msg: tag + 1,
                    });
                }
            }
        }
    }

    impl ShardWorld for Toy {
        type Msg = u64;
        fn next_time(&self) -> Option<SimTime> {
            self.q.peek_time()
        }
        fn run_window(&mut self, limit: SimTime) {
            while self.q.peek_time().is_some_and(|t| t < limit) {
                // detlint::allow(S001, pop follows a successful peek)
                let (now, tag) = self.q.pop().expect("peeked entry vanished");
                self.handle(now, tag);
            }
        }
        fn take_outbox(&mut self, _dst: u32) -> Vec<Envelope<u64>> {
            std::mem::take(&mut self.outbox)
        }
        fn absorb(&mut self, env: Envelope<u64>) {
            env.schedule_into(&mut self.q, |m| m);
        }
        fn cross_shard_ties(&self) -> u64 {
            self.q.cross_shard_ties()
        }
    }

    fn toy(me: u32, shards: u32) -> Toy {
        let mut q = EventQueue::new();
        q.set_shard_rank(me);
        Toy {
            me,
            q,
            count: 0,
            history: Vec::new(),
            outbox: Vec::new(),
            out_seq: 0,
            hops: 200,
            delay: SimDuration::from_ns(30),
        }
        .tap_seed(shards)
    }

    impl Toy {
        fn tap_seed(mut self, shards: u32) -> Toy {
            // Every shard starts one chain; stagger the kick-offs so ties
            // and near-ties occur across shards.
            let t0 = SimTime::from_ns(u64::from(self.me % shards) + 1);
            self.q.schedule(t0, u64::from(self.me) * 1000);
            self
        }
    }

    #[test]
    fn two_shards_match_sequential_history() {
        let horizon = SimTime::from_us(100);
        let lookahead = SimDuration::from_ns(30);

        // Parallel run.
        let worlds = vec![toy(0, 2), toy(1, 2)];
        let (par, report) = run_shards(worlds, lookahead, horizon);
        assert_eq!(report.threads, 2);
        assert!(report.windows > 1, "expected multiple windows");

        // Sequential reference: same model, one queue, events tagged by
        // owner; cross-shard sends become plain schedules.
        let mut seq: Vec<Vec<(SimTime, u64)>> = vec![Vec::new(), Vec::new()];
        let mut q = EventQueue::<(u32, u64)>::new();
        q.schedule(SimTime::from_ns(1), (0, 0));
        q.schedule(SimTime::from_ns(2), (1, 1000));
        let mut hops = [200u64, 200u64];
        let delay = SimDuration::from_ns(30);
        while let Some(t) = q.peek_time() {
            if t > horizon {
                break;
            }
            // detlint::allow(S001, pop follows a successful peek)
            let (now, (owner, tag)) = q.pop().expect("peeked entry vanished");
            seq[owner as usize].push((now, tag));
            if hops[owner as usize] > 0 {
                hops[owner as usize] -= 1;
                let nxt = if tag % 2 == 0 { owner } else { 1 - owner };
                q.schedule(now + delay, (nxt, tag + 1));
            }
        }

        for s in 0..2 {
            assert_eq!(par[s].history, seq[s], "shard {s} history diverged");
        }
        // Staggered kick-offs never produce same-(time, rank_time) events
        // on different shards, so the equality above is the *proven* case.
        assert_eq!(report.cross_shard_ties, 0);
    }

    /// Fully symmetric chains: every shard kicks off two chains at the same
    /// instant, so absorbed envelopes collide with local events on equal
    /// `(fire time, rank time)` — the one tie the parallel engine breaks by
    /// shard id instead of sequential schedule order. The detector must see
    /// those pairs, and the run must still be reproducible.
    #[test]
    fn symmetric_workload_reports_cross_shard_ties() {
        let sym = |me: u32| {
            let mut q = EventQueue::new();
            q.set_shard_rank(me);
            let t0 = SimTime::from_ns(1);
            // One chain hops immediately (odd tag), one hops next step.
            q.schedule(t0, u64::from(me) * 1000 + 1);
            q.schedule(t0, u64::from(me) * 1000 + 2);
            Toy {
                me,
                q,
                count: 0,
                history: Vec::new(),
                outbox: Vec::new(),
                out_seq: 0,
                hops: 200,
                delay: SimDuration::from_ns(30),
            }
        };
        let run = || {
            let (w, report) = run_shards(
                vec![sym(0), sym(1)],
                SimDuration::from_ns(30),
                SimTime::from_us(50),
            );
            (
                w.into_iter().map(|t| t.history).collect::<Vec<_>>(),
                report.cross_shard_ties,
            )
        };
        let (hist_a, ties_a) = run();
        let (hist_b, ties_b) = run();
        assert!(ties_a > 0, "symmetric chains must collide cross-shard");
        assert_eq!(ties_a, ties_b, "tie count is deterministic");
        assert_eq!(hist_a, hist_b, "tied runs still reproduce exactly");
    }

    #[test]
    fn single_shard_runs_to_horizon() {
        let (worlds, report) = run_shards(
            vec![toy(0, 1)],
            SimDuration::from_ns(30),
            SimTime::from_us(100),
        );
        assert_eq!(report.threads, 1);
        assert_eq!(report.windows, 1);
        assert!(worlds[0].count > 0);
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let run = || {
            let (w, _) = run_shards(
                vec![toy(0, 4), toy(1, 4), toy(2, 4), toy(3, 4)],
                SimDuration::from_ns(30),
                SimTime::from_us(50),
            );
            w.into_iter().map(|t| t.history).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_rejected() {
        let _ = run_shards(vec![toy(0, 1)], SimDuration::ZERO, SimTime::from_us(1));
    }
}

//! Simulation clock types.
//!
//! The clock is an integer count of **picoseconds**. All the physical rates
//! in the modelled hardware divide evenly into picoseconds closely enough
//! that cumulative rounding never exceeds one picosecond per event:
//!
//! * Myrinet link: 160 MB/s → 6 250 ps per byte (exact),
//! * LANai 7 clock: 66 MHz → 15 151 ps per cycle (15.151 ns, < 0.01 % error),
//! * PCI 64/33 burst: 264 MB/s → 3 787 ps per byte.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in picoseconds since t = 0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (floating point; for reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Value in microseconds (floating point; for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Quantise a real-valued nanosecond span onto the integer clock.
    ///
    /// This is the *only* sanctioned crossing from the float domain into
    /// simulated time (detlint rule D003): traffic generators draw
    /// real-valued gaps (e.g. exponential inter-arrival samples) and must
    /// round exactly once, here, truncating toward zero. Negative or NaN
    /// inputs saturate to zero per Rust's float→int cast semantics.
    #[inline]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration((ns * 1e3) as u64)
    }

    /// Quantise a real-valued microsecond span onto the integer clock.
    ///
    /// See [`SimDuration::from_ns_f64`]; same single-quantisation contract.
    #[inline]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * 1e6) as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (floating point; for reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Value in microseconds (floating point; for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{:.1}ns", self.as_ns_f64())
        } else {
            write!(f, "{:.3}us", self.as_us_f64())
        }
    }
}

/// A transfer rate expressed as picoseconds per byte.
///
/// Keeping the rate in time-per-byte (rather than bytes-per-time) makes
/// transfer-completion arithmetic a single multiply with no division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bandwidth {
    ps_per_byte: u64,
}

impl Bandwidth {
    /// Construct from picoseconds per byte.
    #[inline]
    pub const fn from_ps_per_byte(ps: u64) -> Self {
        Bandwidth { ps_per_byte: ps }
    }

    /// Construct from a rate in megabytes per second (10^6 bytes/s).
    ///
    /// `Bandwidth::from_mbytes_per_sec(160)` is the Myrinet link rate used in
    /// the paper's testbed.
    #[inline]
    pub const fn from_mbytes_per_sec(mb: u64) -> Self {
        // 1 byte at X MB/s takes 10^12 / (X * 10^6) ps.
        Bandwidth {
            ps_per_byte: 1_000_000 / mb,
        }
    }

    /// Picoseconds needed to move one byte.
    #[inline]
    pub const fn ps_per_byte(self) -> u64 {
        self.ps_per_byte
    }

    /// Time to transfer `bytes` bytes at this rate.
    #[inline]
    pub const fn transfer_time(self, bytes: u64) -> SimDuration {
        SimDuration::from_ps(self.ps_per_byte * bytes)
    }

    /// Rate in megabytes per second, for reporting.
    #[inline]
    pub fn mbytes_per_sec(self) -> f64 {
        1e6 / self.ps_per_byte as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_us(3).as_ns_f64(), 3_000.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(40);
        assert_eq!((t + d) - t, d);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, SimTime::from_ns(140));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(30);
        assert_eq!(b.saturating_since(a), SimDuration::from_ns(20));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_ns(7);
        assert_eq!(d * 3, SimDuration::from_ns(21));
        assert_eq!((d * 4) / 2, SimDuration::from_ns(14));
    }

    #[test]
    fn myrinet_link_rate_is_exact() {
        let link = Bandwidth::from_mbytes_per_sec(160);
        assert_eq!(link.ps_per_byte(), 6_250);
        assert_eq!(link.transfer_time(4), SimDuration::from_ps(25_000));
        assert!((link.mbytes_per_sec() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn pci_rate() {
        let pci = Bandwidth::from_mbytes_per_sec(264);
        assert_eq!(pci.ps_per_byte(), 3_787);
        // 4 KB page at PCI burst rate ≈ 15.5 us.
        let t = pci.transfer_time(4096);
        assert!((t.as_us_f64() - 15.51).abs() < 0.1, "{t}");
    }

    #[test]
    fn float_quantisation_truncates_once() {
        assert_eq!(SimDuration::from_ns_f64(1.75).as_ps(), 1_750);
        assert_eq!(SimDuration::from_ns_f64(0.0004).as_ps(), 0);
        assert_eq!(SimDuration::from_us_f64(1.5).as_ps(), 1_500_000);
        // Saturating float→int casts: negatives and NaN clamp to zero.
        assert_eq!(SimDuration::from_ns_f64(-3.0).as_ps(), 0);
        assert_eq!(SimDuration::from_ns_f64(f64::NAN).as_ps(), 0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_ns(5).max(SimDuration::from_ns(9)),
            SimDuration::from_ns(9)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_ns(125)), "125.0ns");
        assert_eq!(format!("{}", SimDuration::from_us(3)), "3.000us");
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
    }
}

//! The event-loop contract.
//!
//! The engine is intentionally minimal: a [`World`] owns all mutable model
//! state and interprets events; the loop here pops events in time order and
//! hands them to the world together with the queue so handlers can schedule
//! follow-ups. Layer crates (`itb-net`, `itb-nic`, …) define their own event
//! types and the integrating crate (`itb-gm`) wraps them in one union enum.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation world: all model state plus the event interpreter.
pub trait World {
    /// The union event type dispatched by this world.
    type Event;

    /// Interpret one event. `now` is the event's timestamp; follow-up events
    /// go back into `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Run until the queue drains or the next event would fire after `until`.
///
/// Returns the number of events dispatched by this call. Events stamped
/// exactly at `until` are still dispatched.
pub fn run_until<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>, until: SimTime) -> u64 {
    let mut dispatched = 0;
    while let Some(t) = queue.peek_time() {
        if t > until {
            break;
        }
        // detlint::allow(S001, pop follows a successful peek under the same borrow)
        let (now, ev) = queue.pop().expect("peeked entry vanished");
        world.handle(now, ev, queue);
        dispatched += 1;
    }
    dispatched
}

/// Run for `span` past the current queue time. Convenience over [`run_until`].
pub fn run_for<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    span: crate::time::SimDuration,
) -> u64 {
    let until = queue.now() + span;
    run_until(world, queue, until)
}

/// Run while `keep_going(world)` holds and events remain.
///
/// The predicate is checked *before* each dispatch, so the world is never
/// advanced past the first state where the predicate fails. Returns the
/// number of events dispatched.
pub fn run_while<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    mut keep_going: impl FnMut(&W) -> bool,
) -> u64 {
    let mut dispatched = 0;
    while keep_going(world) {
        let Some((now, ev)) = queue.pop() else { break };
        world.handle(now, ev, queue);
        dispatched += 1;
    }
    dispatched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A toy world: each event is a delay to re-schedule itself with, and the
    /// world counts dispatches.
    struct Ticker {
        fired: Vec<SimTime>,
        stop_after: usize,
    }

    impl World for Ticker {
        type Event = SimDuration;
        fn handle(&mut self, now: SimTime, ev: SimDuration, q: &mut EventQueue<SimDuration>) {
            self.fired.push(now);
            if self.fired.len() < self.stop_after {
                q.schedule(now + ev, ev);
            }
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut w = Ticker {
            fired: vec![],
            stop_after: usize::MAX,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), SimDuration::from_ns(10));
        let n = run_until(&mut w, &mut q, SimTime::from_ns(45));
        // Fires at 10, 20, 30, 40; event at 50 remains queued.
        assert_eq!(n, 4);
        assert_eq!(w.fired.last(), Some(&SimTime::from_ns(40)));
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(50)));
    }

    #[test]
    fn run_until_inclusive_at_horizon() {
        let mut w = Ticker {
            fired: vec![],
            stop_after: 1,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), SimDuration::from_ns(1));
        let n = run_until(&mut w, &mut q, SimTime::from_ns(30));
        assert_eq!(n, 1);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut w = Ticker {
            fired: vec![],
            stop_after: usize::MAX,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), SimDuration::from_ns(1));
        run_while(&mut w, &mut q, |w| w.fired.len() < 7);
        assert_eq!(w.fired.len(), 7);
    }

    #[test]
    fn run_for_advances_relative_to_queue_clock() {
        let mut w = Ticker {
            fired: vec![],
            stop_after: usize::MAX,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), SimDuration::from_ns(5));
        run_until(&mut w, &mut q, SimTime::from_ns(5));
        let n = run_for(&mut w, &mut q, SimDuration::from_ns(10));
        // queue.now()==5; runs events at 10 and 15.
        assert_eq!(n, 2);
    }

    #[test]
    fn drained_queue_terminates() {
        let mut w = Ticker {
            fired: vec![],
            stop_after: 3,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), SimDuration::from_ns(2));
        let n = run_until(&mut w, &mut q, SimTime::MAX);
        assert_eq!(n, 3);
        assert!(q.is_empty());
    }
}

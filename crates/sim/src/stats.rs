//! Streaming statistics for experiment harnesses.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Number of log-histogram sub-buckets per octave (power of two). Four per
/// octave gives bucket edges ~19% apart, i.e. quantiles good to ~±9%.
const ACCUM_SUB_BUCKETS: usize = 4;
/// Total log-histogram buckets. Bucket 0 holds all samples `< 1`; the top
/// bucket absorbs everything beyond `2^(256/4) = 2^64`.
const ACCUM_BUCKETS: usize = 256;

/// Welford-style streaming accumulator: count, mean, variance, min, max —
/// plus approximate quantiles from a fixed-size log-linear histogram
/// (lazy-allocated on the first sample, so empty accumulators stay tiny).
///
/// Serializes to a JSON summary object
/// `{n, mean, stddev, min, max, p50, p95, p99}` rather than raw buckets.
#[derive(Debug, Clone)]
pub struct Accum {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Accum {
    fn default() -> Self {
        Self::new()
    }
}

impl Accum {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accum {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }

    /// Log-histogram bucket index for a sample.
    // The floor()ed index is clamped into [0, ACCUM_BUCKETS) before the
    // final cast, so neither conversion can truncate meaningfully.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn bucket_of(x: f64) -> usize {
        if x.is_nan() || x < 1.0 {
            // Sub-unit, zero, negative and NaN samples all land in bucket 0;
            // quantile() clamps to the true min/max so they stay honest.
            return 0;
        }
        let idx = (x.log2() * ACCUM_SUB_BUCKETS as f64).floor() as i64;
        idx.clamp(0, ACCUM_BUCKETS as i64 - 1) as usize
    }

    /// Representative value for a bucket (its geometric midpoint).
    fn bucket_value(idx: usize) -> f64 {
        ((idx as f64 + 0.5) / ACCUM_SUB_BUCKETS as f64).exp2()
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if self.buckets.is_empty() {
            self.buckets = vec![0; ACCUM_BUCKETS];
        }
        self.buckets[Self::bucket_of(x)] += 1;
    }

    /// Record a duration sample in nanoseconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_ns_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Unbiased sample standard deviation (0 for < 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }
    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the log-linear histogram:
    /// geometric bucket midpoints, ~±9% relative error, clamped to the exact
    /// observed `[min, max]`. NaN if empty.
    // ceil(q * n) with q in [0, 1] stays within the sample count.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.n == 0 {
            return f64::NAN;
        }
        let target = ((q * self.n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (NaN if empty).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }
    /// 95th-percentile estimate (NaN if empty).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }
    /// 99th-percentile estimate (NaN if empty).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Accum) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if !other.buckets.is_empty() {
            if self.buckets.is_empty() {
                self.buckets = vec![0; ACCUM_BUCKETS];
            }
            for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
                *b += o;
            }
        }
    }
}

impl Serialize for Accum {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        Value::Object(vec![
            ("n".to_string(), Value::UInt(self.n)),
            ("mean".to_string(), Value::Float(self.mean())),
            ("stddev".to_string(), Value::Float(self.stddev())),
            ("min".to_string(), Value::Float(self.min())),
            ("max".to_string(), Value::Float(self.max())),
            ("p50".to_string(), Value::Float(self.p50())),
            ("p95".to_string(), Value::Float(self.p95())),
            ("p99".to_string(), Value::Float(self.p99())),
        ])
    }
}

impl Deserialize for Accum {}

/// Fixed-width-bin histogram with overflow bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// `nbins` bins of `width` starting at `lo`.
    pub fn new(lo: f64, width: f64, nbins: usize) -> Self {
        assert!(width > 0.0 && nbins > 0);
        Histogram {
            lo,
            width,
            bins: vec![0; nbins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Record a sample.
    // The bucket index is range-checked against bins.len() right after the cast.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }
    /// Samples below range / above range / total.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.underflow, self.overflow, self.total)
    }

    /// Approximate quantile (`q` in `[0,1]`) from bin midpoints.
    // ceil(q * total) with q in [0, 1] stays within the sample count.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return f64::NAN;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return self.lo;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.lo + (i as f64 + 0.5) * self.width;
            }
        }
        self.lo + self.width * self.bins.len() as f64
    }
}

/// A named (x, y) series — the unit of figure reproduction. Each paper curve
/// ("Original MCP code", "UD-ITB", …) becomes one `Series`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Curve label as it would appear in the figure legend.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a legend label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// y value at x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Pointwise difference `self − other` at shared x values.
    pub fn minus(&self, other: &Series, label: impl Into<String>) -> Series {
        let mut out = Series::new(label);
        for &(x, y) in &self.points {
            if let Some(oy) = other.y_at(x) {
                out.push(x, y - oy);
            }
        }
        out
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum of the y values.
    pub fn max_y(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Streaming quantile estimator — the P² (piecewise-parabolic) algorithm of
/// Jain & Chlamtac. Tracks one quantile in O(1) memory without storing
/// samples; used for tail latencies (p99) in the loaded-network sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Record a sample.
    // count is capped at 5 before any cast to an index.
    #[allow(clippy::cast_possible_truncation)]
    pub fn add(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    // detlint::allow(S001, latency samples come from integer picoseconds and are never NaN)
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            }
            return;
        }
        self.count += 1;
        // Find the cell k containing x and adjust extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (1..=4)
                .find(|&i| x < self.heights[i])
                // detlint::allow(S001, binary search keeps x between the recorded extremes)
                .expect("x within extremes")
                - 1
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust interior markers with the parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let h = self.parabolic(i, d);
                let h = if self.heights[i - 1] < h && h < self.heights[i + 1] {
                    h
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (pm, p, pp) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (pp - pm)
            * ((p - pm + d) * (hp - h) / (pp - p) + (pp - p - d) * (h - hm) / (p - pm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (exact for < 5 samples; NaN if empty).
    // n < 5 in the small-sample arm, so every cast is a tiny index.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            n if n < 5 => {
                let mut v: Vec<f64> = self.heights[..n as usize].to_vec();
                // detlint::allow(S001, latency samples come from integer picoseconds and are never NaN)
                v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
                let ix = ((self.q * n as f64).ceil() as usize).clamp(1, n as usize) - 1;
                v[ix]
            }
            _ => self.heights[2],
        }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Throughput meter: counts payload bytes delivered over a window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateMeter {
    bytes: u64,
    messages: u64,
}

impl RateMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }
    /// Record one delivered message of `bytes` payload bytes.
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.messages += 1;
    }
    /// Total payload bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }
    /// Rate in bytes per second over `window`.
    pub fn bytes_per_sec(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.bytes as f64 / (window.as_ps() as f64 / 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_basic_moments() {
        let mut a = Accum::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.stddev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn accum_empty_is_safe() {
        let a = Accum::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.stddev(), 0.0);
        assert!(a.min().is_nan());
    }

    #[test]
    fn accum_quantiles_track_uniform_stream() {
        let mut a = Accum::new();
        for i in 1..=10_000 {
            a.add(f64::from(i));
        }
        // Log-bucket quantiles carry ~±9% relative error.
        assert!((a.p50() / 5000.0 - 1.0).abs() < 0.10, "p50={}", a.p50());
        assert!((a.p95() / 9500.0 - 1.0).abs() < 0.10, "p95={}", a.p95());
        assert!((a.p99() / 9900.0 - 1.0).abs() < 0.10, "p99={}", a.p99());
        // Quantiles never escape the observed range.
        assert!(a.quantile(0.0) >= 1.0);
        assert!(a.quantile(1.0) <= 10_000.0);
    }

    #[test]
    fn accum_quantiles_handle_edge_samples() {
        let empty = Accum::new();
        assert!(empty.p50().is_nan());
        let mut a = Accum::new();
        a.add(0.0);
        a.add(-3.0);
        a.add(0.25);
        // Sub-unit samples collapse into bucket 0; clamped to observed range.
        assert!(a.p50() >= -3.0 && a.p50() <= 0.25, "p50={}", a.p50());
        let mut one = Accum::new();
        one.add(42.0);
        assert!((one.p50() / 42.0 - 1.0).abs() < 0.10, "p50={}", one.p50());
        assert_eq!(one.quantile(1.0), 42.0);
    }

    #[test]
    fn accum_merge_combines_quantiles() {
        let mut left = Accum::new();
        let mut right = Accum::new();
        for i in 1..=500 {
            left.add(f64::from(i));
        }
        for i in 501..=1000 {
            right.add(f64::from(i));
        }
        left.merge(&right);
        assert!(
            (left.p50() / 500.0 - 1.0).abs() < 0.10,
            "p50={}",
            left.p50()
        );
        // Merging into an empty accumulator clones buckets too.
        let mut fresh = Accum::new();
        fresh.merge(&left);
        assert!(
            (fresh.p95() / 950.0 - 1.0).abs() < 0.10,
            "p95={}",
            fresh.p95()
        );
    }

    #[test]
    fn accum_serializes_to_summary_object() {
        let mut a = Accum::new();
        for x in [10.0, 20.0, 30.0] {
            a.add(x);
        }
        let v = serde::Serialize::to_value(&a);
        let serde::Value::Object(fields) = v else {
            panic!("expected object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["n", "mean", "stddev", "min", "max", "p50", "p95", "p99"]
        );
    }

    #[test]
    fn accum_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accum::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accum::new();
        let mut right = Accum::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            h.add(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.bin(0), 10);
        let (u, o, t) = h.counts();
        assert_eq!((u, o, t), (0, 0, 100));
        let med = h.quantile(0.5);
        assert!((med - 4.5).abs() <= 0.5, "median={med}");
        h.add(-1.0);
        h.add(100.0);
        let (u, o, _) = h.counts();
        assert_eq!((u, o), (1, 1));
    }

    #[test]
    fn series_difference() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        for x in 0..5 {
            a.push(x as f64, 2.0 * x as f64 + 1.0);
            b.push(x as f64, 2.0 * x as f64);
        }
        let d = a.minus(&b, "a-b");
        assert_eq!(d.points.len(), 5);
        assert!(d.points.iter().all(|&(_, y)| (y - 1.0).abs() < 1e-12));
        assert!((d.mean_y() - 1.0).abs() < 1e-12);
        assert!((a.max_y() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert!(q.estimate().is_nan());
        q.add(10.0);
        assert_eq!(q.estimate(), 10.0);
        q.add(2.0);
        q.add(7.0);
        // Median of {2, 7, 10} = 7.
        assert_eq!(q.estimate(), 7.0);
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        // Deterministic pseudo-uniform stream over (0, 100).
        let mut x = 37.0;
        for _ in 0..50_000 {
            x = (x * 7.13 + 11.7) % 100.0;
            q.add(x);
        }
        let est = q.estimate();
        assert!((est - 50.0).abs() < 3.0, "median estimate {est}");
    }

    #[test]
    fn p2_p99_of_skewed_stream() {
        let mut q = P2Quantile::new(0.99);
        // 99% small values, 1% = 1000.
        for i in 0..100_000u32 {
            if i % 100 == 0 {
                q.add(1000.0);
            } else {
                q.add((i % 97) as f64 / 10.0);
            }
        }
        let est = q.estimate();
        assert!(est > 9.0, "p99 must sit near the tail boundary: {est}");
        assert!(est <= 1000.0);
    }

    #[test]
    fn p2_monotone_under_sorted_input() {
        let mut q = P2Quantile::new(0.9);
        for i in 0..10_000 {
            q.add(f64::from(i));
        }
        let est = q.estimate();
        assert!((est - 9000.0).abs() < 250.0, "p90 of 0..10000: {est}");
    }

    #[test]
    fn rate_meter() {
        let mut m = RateMeter::new();
        m.record(1000);
        m.record(1000);
        assert_eq!(m.bytes(), 2000);
        assert_eq!(m.messages(), 2);
        let bps = m.bytes_per_sec(SimDuration::from_us(1));
        assert!((bps - 2e9).abs() < 1.0, "bps={bps}");
        assert_eq!(m.bytes_per_sec(SimDuration::ZERO), 0.0);
    }
}

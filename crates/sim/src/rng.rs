//! Deterministic pseudo-random numbers.
//!
//! The simulator's reproducibility guarantee is "same seed, same run". We
//! implement xoshiro256** directly (it is ~20 lines) instead of relying on
//! `rand`'s `SmallRng`, whose algorithm is explicitly not stable across
//! versions. `rand` distributions can still be layered on top through the
//! [`rand::RngCore`] implementation.

use rand::RngCore;

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed (expanded via splitmix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator, e.g. one per traffic source.
    ///
    /// Children of distinct `stream` values are decorrelated even for the
    /// same parent seed.
    pub fn child(&self, stream: u64) -> SimRng {
        // Mix the parent state with the stream id through splitmix64.
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (bias is negligible at these bounds and determinism is what matters).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64_raw() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times in the traffic generators).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    // below(i + 1) returns a value in [0, i], which always fits back in usize.
    #[allow(clippy::cast_possible_truncation)]
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    // below(len) is a valid index by definition.
    #[allow(clippy::cast_possible_truncation)]
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        crate::narrow(self.next_u64_raw() >> 32)
    }
    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn children_are_decorrelated() {
        let parent = SimRng::new(7);
        let mut c0 = parent.child(0);
        let mut c1 = parent.child(1);
        let same = (0..64)
            .filter(|_| c0.next_u64_raw() == c1.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
        // All residues reachable.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SimRng::new(13);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

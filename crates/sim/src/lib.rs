//! # itb-sim — deterministic discrete-event simulation engine
//!
//! Foundation crate for the reproduction of *"A First Implementation of
//! In-Transit Buffers on Myrinet GM Software"* (IPPS 2001). Every other crate
//! in the workspace models a physical or firmware component of a Myrinet
//! cluster; this crate provides the machinery they share:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond simulation clock.
//!   Picoseconds keep link byte-times (6.25 ns at 160 MB/s) and LANai cycle
//!   times (15.15 ns at 66 MHz) exact, with headroom for multi-second runs.
//! * [`EventQueue`] — a 4-ary-heap calendar with a deterministic FIFO
//!   tie-break for simultaneous events, so identical seeds yield identical
//!   runs bit for bit.
//! * [`fxmap`] — deterministic fixed-seed hashing for the hot per-packet
//!   maps (no SipHash cost, no per-process iteration-order randomness).
//! * [`World`] / [`run_until`] — the minimal event-loop contract used by the
//!   integrated cluster simulator in `itb-gm`.
//! * [`stats`] — streaming accumulators, histograms and (x, y) series used by
//!   the experiment harness.
//! * [`rng`] — a small deterministic PRNG (xoshiro256**) so simulation
//!   reproducibility does not depend on the `rand` crate's internals.

#![warn(missing_docs)]

pub mod engine;
pub mod fxmap;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{run_for, run_until, run_while, World};
pub use fxmap::{FxHashMap, FxHashSet};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{Bandwidth, SimDuration, SimTime};

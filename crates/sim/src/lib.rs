//! # itb-sim — deterministic discrete-event simulation engine
//!
//! Foundation crate for the reproduction of *"A First Implementation of
//! In-Transit Buffers on Myrinet GM Software"* (IPPS 2001). Every other crate
//! in the workspace models a physical or firmware component of a Myrinet
//! cluster; this crate provides the machinery they share:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond simulation clock.
//!   Picoseconds keep link byte-times (6.25 ns at 160 MB/s) and LANai cycle
//!   times (15.15 ns at 66 MHz) exact, with headroom for multi-second runs.
//! * [`EventQueue`] — a 4-ary-heap calendar with a deterministic FIFO
//!   tie-break for simultaneous events, so identical seeds yield identical
//!   runs bit for bit.
//! * [`fxmap`] — deterministic fixed-seed hashing for the hot per-packet
//!   maps (no SipHash cost, no per-process iteration-order randomness).
//! * [`World`] / [`run_until`] — the minimal event-loop contract used by the
//!   integrated cluster simulator in `itb-gm`.
//! * [`stats`] — streaming accumulators, histograms and (x, y) series used by
//!   the experiment harness.
//! * [`rng`] — a small deterministic PRNG (xoshiro256**) so simulation
//!   reproducibility does not depend on the `rand` crate's internals.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod digest;
pub mod engine;
pub mod fxmap;
pub mod par;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use digest::Digest;
pub use engine::{run_for, run_until, run_while, World};
pub use fxmap::{FxHashMap, FxHashSet};
pub use par::{run_shards, Envelope, ParReport, ShardWorld};
pub use queue::EventQueue;
pub use rate::ByteInterval;
pub use rng::SimRng;
pub use time::{Bandwidth, SimDuration, SimTime};

/// Checked narrowing conversion for ids, ports, sequence numbers and counts.
///
/// `x as u16` silently wraps out-of-range values — on a packet id or a
/// sequence number that is a correctness bug that manifests as a *different
/// simulation*, not a crash. This helper is the sanctioned spelling: it
/// panics loudly (with the offending value and the caller's location) the
/// moment an invariant is wrong instead of simulating on garbage. detlint
/// rule S002 points here.
#[track_caller]
#[inline]
pub fn narrow<Dst, Src>(v: Src) -> Dst
where
    Dst: TryFrom<Src>,
    Src: Copy + std::fmt::Display,
{
    match Dst::try_from(v) {
        Ok(d) => d,
        // detlint::allow(S001, the audited failure point every narrow() call site shares)
        Err(_) => panic!(
            "narrowing conversion out of range: {v} does not fit in {}",
            std::any::type_name::<Dst>()
        ),
    }
}

#[cfg(test)]
mod narrow_tests {
    use super::narrow;

    #[test]
    fn in_range_values_pass_through() {
        let p: u8 = narrow(255u64);
        let h: u16 = narrow(1024usize);
        assert_eq!(p, 255);
        assert_eq!(h, 1024);
    }

    #[test]
    #[should_panic(expected = "narrowing conversion out of range")]
    fn out_of_range_panics_loudly() {
        let _: u8 = narrow(256u64);
    }
}

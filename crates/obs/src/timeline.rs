//! Sim-time timeline sampling: a periodic series of [`Snapshot`] deltas.
//!
//! The sampler is *passive*: it never reads a clock and never schedules
//! anything itself. The integrating world (see `itb_gm::Cluster`) schedules
//! a sampling event on its own sim-time event queue at a fixed interval and
//! feeds the resulting [`Snapshot`] to [`TimelineSampler::record`]; the
//! sampler diffs it against the previous one and keeps the per-interval
//! change. Driving the cadence through scheduled events (never wall-clock)
//! is what keeps runs deterministic — detlint rule D002 machine-enforces
//! that no wall-clock source creeps into this path.
//!
//! The artifact is JSONL: one [`IntervalSample`] object per line, so a
//! timeline can be streamed, tailed and diffed without a JSON parser. A
//! same-seed run reproduces the file byte for byte (the CI timeline gate
//! compares two runs with `cmp`).

use crate::frame::{LinkVals, MetricsFrame, MetricsSchema};
use crate::metrics::{LinkLoad, QuantileSummary, Snapshot};
use serde::Serialize;
use std::io;
use std::sync::Arc;

/// One sampling interval's worth of change.
///
/// `delta` holds counter-wise and link-wise differences over the interval
/// (see [`Snapshot::delta`]); its `blocking` quantiles are the cumulative
/// distribution at `t_ns` (summaries cannot be subtracted).
#[derive(Debug, Clone, Serialize)]
pub struct IntervalSample {
    /// Absolute sim time at the *end* of the interval, nanoseconds.
    pub t_ns: u64,
    /// Interval span in nanoseconds (time since the previous sample, or
    /// since t = 0 for the first sample).
    pub interval_ns: u64,
    /// Per-interval counter/link deltas; cumulative blocking quantiles.
    pub delta: Snapshot,
}

/// One interval recorded through the allocation-free frame path: the same
/// information as an [`IntervalSample`], with names factored out into the
/// bound [`MetricsSchema`]. Two small `Vec`s per sample instead of a
/// `String` per counter per sample.
#[derive(Debug, Clone)]
struct FrameSample {
    t_ns: u64,
    interval_ns: u64,
    /// Per-interval counter deltas, positional against the schema.
    counters: Vec<u64>,
    /// Per-interval link deltas, positional against the schema.
    links: Vec<LinkVals>,
    /// Cumulative blocking quantiles at `t_ns`.
    blocking: QuantileSummary,
}

impl FrameSample {
    /// Re-join with the schema into the classic artifact row. The delta
    /// snapshot's `at_ns` is the interval span, exactly as
    /// [`Snapshot::delta`] produces.
    fn materialize(&self, schema: &MetricsSchema) -> IntervalSample {
        let mut delta = Snapshot::new();
        delta.at_ns = self.interval_ns;
        for (k, &v) in schema.counter_keys.iter().zip(&self.counters) {
            delta.counters.insert(k.clone(), v);
        }
        delta.links = schema
            .link_names
            .iter()
            .zip(&self.links)
            .map(
                |(name, &[fwd_bytes, rev_bytes, fwd_blocked_ns, rev_blocked_ns])| LinkLoad {
                    link: name.clone(),
                    fwd_bytes,
                    rev_bytes,
                    fwd_blocked_ns,
                    rev_blocked_ns,
                },
            )
            .collect();
        delta.blocking = self.blocking;
        IntervalSample {
            t_ns: self.t_ns,
            interval_ns: self.interval_ns,
            delta,
        }
    }
}

/// Collects periodic [`Snapshot`]s and turns them into an interval series.
///
/// Two recording paths share one artifact format:
///
/// * [`Self::record`] — legacy, takes a full [`Snapshot`] per sample
///   (string-keyed; allocates proportionally to the counter count);
/// * [`Self::bind_schema`] + [`Self::record_frame`] — hot-path, takes a
///   positional [`MetricsFrame`] per sample and stores compact delta
///   vectors (two small allocations per sample). Names are re-joined only
///   when the artifact is written.
///
/// A sampler is driven through one path or the other for its whole life;
/// [`Self::write_jsonl`] and [`Self::rows`] merge both stores in recording
/// order, so mixed use is not wrong — merely unordered across the two
/// stores.
#[derive(Debug, Clone)]
pub struct TimelineSampler {
    interval_ns: u64,
    base: Snapshot,
    samples: Vec<IntervalSample>,
    schema: Option<Arc<MetricsSchema>>,
    base_frame: Option<MetricsFrame>,
    frame_samples: Vec<FrameSample>,
}

impl TimelineSampler {
    /// A sampler for a nominal cadence of `interval_ns` sim nanoseconds.
    ///
    /// The cadence is informational (it is echoed into the artifact via
    /// `interval_ns` on each row); the actual spacing is whatever the
    /// integrating world's sampling events produce.
    ///
    /// # Panics
    /// Panics on a zero interval — a zero-period sampler would ask the
    /// integrating world to schedule events that never advance time.
    pub fn new(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "timeline interval must be positive");
        TimelineSampler {
            interval_ns,
            base: Snapshot::new(),
            samples: Vec::new(),
            schema: None,
            base_frame: None,
            frame_samples: Vec::new(),
        }
    }

    /// Switch this sampler to the allocation-free frame path: subsequent
    /// samples arrive via [`Self::record_frame`] as positional
    /// [`MetricsFrame`]s against `schema`. The first frame diffs against a
    /// zeroed time-zero frame, mirroring the legacy path's empty base
    /// snapshot.
    pub fn bind_schema(&mut self, schema: Arc<MetricsSchema>) {
        self.base_frame = Some(MetricsFrame::for_schema(&schema));
        self.schema = Some(schema);
    }

    /// Nominal sampling cadence in sim nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Record one absolute snapshot; the stored sample is its delta against
    /// the previously recorded snapshot (or the empty time-zero snapshot
    /// for the first call).
    pub fn record(&mut self, snap: Snapshot) {
        let delta = snap.delta(&self.base);
        self.samples.push(IntervalSample {
            t_ns: snap.at_ns,
            interval_ns: snap.at_ns.saturating_sub(self.base.at_ns),
            delta,
        });
        self.base = snap;
    }

    /// Record one frame through the allocation-free path; the stored
    /// sample is its positional delta against the previously recorded
    /// frame. Steady-state cost: two small `Vec` allocations for the delta
    /// plus an in-place copy of the base.
    ///
    /// # Panics
    /// Panics when no schema is bound (see [`Self::bind_schema`]).
    pub fn record_frame(&mut self, frame: &MetricsFrame) {
        let base = self
            .base_frame
            .as_mut()
            // detlint::allow(S001, bind_schema is a precondition of record_frame)
            .expect("record_frame requires bind_schema");
        let counters: Vec<u64> = frame
            .counters
            .iter()
            .zip(&base.counters)
            .map(|(&v, &b)| v.saturating_sub(b))
            .collect();
        let links: Vec<LinkVals> = frame
            .links
            .iter()
            .zip(&base.links)
            .map(|(v, b)| {
                [
                    v[0].saturating_sub(b[0]),
                    v[1].saturating_sub(b[1]),
                    v[2].saturating_sub(b[2]),
                    v[3].saturating_sub(b[3]),
                ]
            })
            .collect();
        self.frame_samples.push(FrameSample {
            t_ns: frame.at_ns,
            interval_ns: frame.at_ns.saturating_sub(base.at_ns),
            counters,
            links,
            blocking: frame.blocking,
        });
        base.copy_from(frame);
    }

    /// The legacy-path interval series recorded so far (frame-path samples
    /// are compact and name-free; materialize them via [`Self::rows`]).
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Every recorded interval as artifact rows, both paths merged in
    /// recording order (legacy first). Frame-path samples are re-joined
    /// with the bound schema here; this is the accessor tests and
    /// post-processing should use.
    pub fn rows(&self) -> Vec<IntervalSample> {
        let mut out = self.samples.clone();
        if let Some(schema) = &self.schema {
            out.extend(self.frame_samples.iter().map(|s| s.materialize(schema)));
        }
        out
    }

    /// Number of samples recorded (both paths).
    pub fn len(&self) -> usize {
        self.samples.len() + self.frame_samples.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() && self.frame_samples.is_empty()
    }

    /// Stream the series as JSONL (one compact object per line) into `w`.
    /// Callers wrap file sinks in a `BufWriter` (see `itb_bench`'s
    /// `dump_stream`); each line is one small write. Frame-path samples
    /// serialize through the same [`IntervalSample`] serde shape as legacy
    /// ones, so the artifact is byte-identical regardless of which
    /// recording path produced it.
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        for s in &self.samples {
            // detlint::allow(S001, interval samples serialize by construction)
            let line = serde_json::to_string(s).expect("interval sample serializes");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        if let Some(schema) = &self.schema {
            for fs in &self.frame_samples {
                let s = fs.materialize(schema);
                // detlint::allow(S001, interval samples serialize by construction)
                let line = serde_json::to_string(&s).expect("interval sample serializes");
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
            }
        }
        Ok(())
    }

    /// The JSONL series as a string (delegates to [`Self::write_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::new();
        // detlint::allow(S001, writing into a Vec cannot fail)
        self.write_jsonl(&mut buf).expect("Vec sink never errors");
        // detlint::allow(S001, JSON output is ASCII)
        String::from_utf8(buf).expect("JSONL is valid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LinkLoad;

    fn snap(at_ns: u64, injected: u64, fwd: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.at_ns = at_ns;
        s.counters.insert("net.injected".into(), injected);
        s.links.push(LinkLoad {
            link: "h0-s0".into(),
            fwd_bytes: fwd,
            rev_bytes: 0,
            fwd_blocked_ns: 0,
            rev_blocked_ns: 0,
        });
        s
    }

    #[test]
    fn records_interval_deltas_not_cumulatives() {
        let mut t = TimelineSampler::new(1000);
        t.record(snap(1000, 10, 512));
        t.record(snap(2000, 25, 2048));
        assert_eq!(t.len(), 2);
        // First interval diffs against the empty t=0 snapshot.
        assert_eq!(t.samples()[0].delta.counter("net.injected"), 10);
        assert_eq!(t.samples()[0].interval_ns, 1000);
        // Second interval carries only its own change.
        assert_eq!(t.samples()[1].delta.counter("net.injected"), 15);
        assert_eq!(t.samples()[1].delta.links[0].fwd_bytes, 1536);
        assert_eq!(t.samples()[1].t_ns, 2000);
    }

    #[test]
    fn jsonl_is_one_line_per_sample() {
        let mut t = TimelineSampler::new(500);
        t.record(snap(500, 1, 64));
        t.record(snap(1000, 2, 128));
        let out = t.to_jsonl();
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().next().is_some_and(|l| l.contains("\"t_ns\"")));
        assert!(out.ends_with('\n'));
        assert_eq!(TimelineSampler::new(1).to_jsonl(), "");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = TimelineSampler::new(0);
    }

    #[test]
    fn frame_path_reproduces_legacy_jsonl_byte_for_byte() {
        use crate::frame::{MetricsFrame, MetricsSchema};

        // Legacy path.
        let mut legacy = TimelineSampler::new(1000);
        legacy.record(snap(1000, 10, 512));
        legacy.record(snap(2500, 25, 2048));

        // Frame path over the same series. Fill order deliberately differs
        // from sorted order to prove sorting happens at materialization.
        let schema = MetricsSchema::new(vec!["net.injected".into()], vec!["h0-s0".into()]);
        let mut framed = TimelineSampler::new(1000);
        framed.bind_schema(schema.clone());
        let mut f = MetricsFrame::for_schema(&schema);
        f.at_ns = 1000;
        f.counters[0] = 10;
        f.links[0] = [512, 0, 0, 0];
        framed.record_frame(&f);
        f.at_ns = 2500;
        f.counters[0] = 25;
        f.links[0] = [2048, 0, 0, 0];
        framed.record_frame(&f);

        assert_eq!(framed.len(), 2);
        assert_eq!(framed.to_jsonl(), legacy.to_jsonl());
        // rows() materializes the same deltas the legacy store holds.
        let rows = framed.rows();
        assert_eq!(rows[1].delta.counter("net.injected"), 15);
        assert_eq!(rows[1].interval_ns, 1500);
        assert_eq!(rows[1].delta.links[0].fwd_bytes, 1536);
    }

    #[test]
    #[should_panic(expected = "requires bind_schema")]
    fn record_frame_without_schema_rejected() {
        use crate::frame::{MetricsFrame, MetricsSchema};
        let schema = MetricsSchema::new(vec![], vec![]);
        let mut t = TimelineSampler::new(1);
        t.record_frame(&MetricsFrame::for_schema(&schema));
    }
}

//! Sim-time timeline sampling: a periodic series of [`Snapshot`] deltas.
//!
//! The sampler is *passive*: it never reads a clock and never schedules
//! anything itself. The integrating world (see `itb_gm::Cluster`) schedules
//! a sampling event on its own sim-time event queue at a fixed interval and
//! feeds the resulting [`Snapshot`] to [`TimelineSampler::record`]; the
//! sampler diffs it against the previous one and keeps the per-interval
//! change. Driving the cadence through scheduled events (never wall-clock)
//! is what keeps runs deterministic — detlint rule D002 machine-enforces
//! that no wall-clock source creeps into this path.
//!
//! The artifact is JSONL: one [`IntervalSample`] object per line, so a
//! timeline can be streamed, tailed and diffed without a JSON parser. A
//! same-seed run reproduces the file byte for byte (the CI timeline gate
//! compares two runs with `cmp`).

use crate::metrics::Snapshot;
use serde::Serialize;
use std::io;

/// One sampling interval's worth of change.
///
/// `delta` holds counter-wise and link-wise differences over the interval
/// (see [`Snapshot::delta`]); its `blocking` quantiles are the cumulative
/// distribution at `t_ns` (summaries cannot be subtracted).
#[derive(Debug, Clone, Serialize)]
pub struct IntervalSample {
    /// Absolute sim time at the *end* of the interval, nanoseconds.
    pub t_ns: u64,
    /// Interval span in nanoseconds (time since the previous sample, or
    /// since t = 0 for the first sample).
    pub interval_ns: u64,
    /// Per-interval counter/link deltas; cumulative blocking quantiles.
    pub delta: Snapshot,
}

/// Collects periodic [`Snapshot`]s and turns them into an interval series.
#[derive(Debug, Clone)]
pub struct TimelineSampler {
    interval_ns: u64,
    base: Snapshot,
    samples: Vec<IntervalSample>,
}

impl TimelineSampler {
    /// A sampler for a nominal cadence of `interval_ns` sim nanoseconds.
    ///
    /// The cadence is informational (it is echoed into the artifact via
    /// `interval_ns` on each row); the actual spacing is whatever the
    /// integrating world's sampling events produce.
    ///
    /// # Panics
    /// Panics on a zero interval — a zero-period sampler would ask the
    /// integrating world to schedule events that never advance time.
    pub fn new(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "timeline interval must be positive");
        TimelineSampler {
            interval_ns,
            base: Snapshot::new(),
            samples: Vec::new(),
        }
    }

    /// Nominal sampling cadence in sim nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Record one absolute snapshot; the stored sample is its delta against
    /// the previously recorded snapshot (or the empty time-zero snapshot
    /// for the first call).
    pub fn record(&mut self, snap: Snapshot) {
        let delta = snap.delta(&self.base);
        self.samples.push(IntervalSample {
            t_ns: snap.at_ns,
            interval_ns: snap.at_ns.saturating_sub(self.base.at_ns),
            delta,
        });
        self.base = snap;
    }

    /// The interval series recorded so far.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Stream the series as JSONL (one compact object per line) into `w`.
    /// Callers wrap file sinks in a `BufWriter` (see `itb_bench`'s
    /// `dump_stream`); each line is one small write.
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        for s in &self.samples {
            // detlint::allow(S001, interval samples serialize by construction)
            let line = serde_json::to_string(s).expect("interval sample serializes");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// The JSONL series as a string (delegates to [`Self::write_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::new();
        // detlint::allow(S001, writing into a Vec cannot fail)
        self.write_jsonl(&mut buf).expect("Vec sink never errors");
        // detlint::allow(S001, JSON output is ASCII)
        String::from_utf8(buf).expect("JSONL is valid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LinkLoad;

    fn snap(at_ns: u64, injected: u64, fwd: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.at_ns = at_ns;
        s.counters.insert("net.injected".into(), injected);
        s.links.push(LinkLoad {
            link: "h0-s0".into(),
            fwd_bytes: fwd,
            rev_bytes: 0,
            fwd_blocked_ns: 0,
            rev_blocked_ns: 0,
        });
        s
    }

    #[test]
    fn records_interval_deltas_not_cumulatives() {
        let mut t = TimelineSampler::new(1000);
        t.record(snap(1000, 10, 512));
        t.record(snap(2000, 25, 2048));
        assert_eq!(t.len(), 2);
        // First interval diffs against the empty t=0 snapshot.
        assert_eq!(t.samples()[0].delta.counter("net.injected"), 10);
        assert_eq!(t.samples()[0].interval_ns, 1000);
        // Second interval carries only its own change.
        assert_eq!(t.samples()[1].delta.counter("net.injected"), 15);
        assert_eq!(t.samples()[1].delta.links[0].fwd_bytes, 1536);
        assert_eq!(t.samples()[1].t_ns, 2000);
    }

    #[test]
    fn jsonl_is_one_line_per_sample() {
        let mut t = TimelineSampler::new(500);
        t.record(snap(500, 1, 64));
        t.record(snap(1000, 2, 128));
        let out = t.to_jsonl();
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().next().is_some_and(|l| l.contains("\"t_ns\"")));
        assert!(out.ends_with('\n'));
        assert_eq!(TimelineSampler::new(1).to_jsonl(), "");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = TimelineSampler::new(0);
    }
}

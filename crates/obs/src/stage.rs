//! Typed packet-lifecycle stages.

use serde::{Deserialize, Serialize};

/// One stage in a packet's life, recorded by the layer that owns the moment.
///
/// The dot-notation names mirror the layering: `host.*` is the GM software,
/// `mcp.*` the LANai firmware, `net.*` the wormhole fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Host software hands a packet to its NIC (`host.inject`). The packet's
    /// stable id is allocated here.
    HostInject,
    /// First byte enters the wire at the source (`net.inject`).
    NetInject,
    /// A switch output channel was granted to this packet
    /// (`net.link_acquire`); node = switch index.
    NetLinkAcquire,
    /// The packet's head is routed but the requested output channel is held
    /// by another worm (`net.link_block`); node = switch index.
    NetLinkBlock,
    /// A switch consumed the packet's route byte (`net.route`).
    NetRoute,
    /// The head reached a host (`net.head`); node = host index.
    NetHead,
    /// The tail reached a host (`net.tail`); node = host index.
    NetTail,
    /// The firmware's Early-Recv handler examined the first four bytes
    /// (`mcp.early_recv`).
    McpEarlyRecv,
    /// Early-Recv identified an in-transit packet (`mcp.itb_detect`).
    McpItbDetect,
    /// The send DMA was reprogrammed for the in-transit forward
    /// (`mcp.itb_forward`).
    McpItbForward,
    /// Re-injection began at an in-transit host (`net.reinject`).
    NetReinject,
    /// Receive-completion bookkeeping finished (`mcp.recv_finish`).
    McpRecvFinish,
    /// The NIC handed the packet to host memory (`nic.deliver`).
    NicDeliver,
    /// The application received the reassembled message this packet
    /// completed (`host.deliver`).
    HostDeliver,
}

impl Stage {
    /// The stable dot-notation name used in exported artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::HostInject => "host.inject",
            Stage::NetInject => "net.inject",
            Stage::NetLinkAcquire => "net.link_acquire",
            Stage::NetLinkBlock => "net.link_block",
            Stage::NetRoute => "net.route",
            Stage::NetHead => "net.head",
            Stage::NetTail => "net.tail",
            Stage::McpEarlyRecv => "mcp.early_recv",
            Stage::McpItbDetect => "mcp.itb_detect",
            Stage::McpItbForward => "mcp.itb_forward",
            Stage::NetReinject => "net.reinject",
            Stage::McpRecvFinish => "mcp.recv_finish",
            Stage::NicDeliver => "nic.deliver",
            Stage::HostDeliver => "host.deliver",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_dot_scoped_and_unique() {
        let all = [
            Stage::HostInject,
            Stage::NetInject,
            Stage::NetLinkAcquire,
            Stage::NetLinkBlock,
            Stage::NetRoute,
            Stage::NetHead,
            Stage::NetTail,
            Stage::McpEarlyRecv,
            Stage::McpItbDetect,
            Stage::McpItbForward,
            Stage::NetReinject,
            Stage::McpRecvFinish,
            Stage::NicDeliver,
            Stage::HostDeliver,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|s| s.as_str()).collect();
        assert_eq!(names.len(), all.len(), "names collide");
        for n in names {
            assert!(n.contains('.'), "{n} lacks a layer scope");
        }
        assert_eq!(Stage::McpEarlyRecv.to_string(), "mcp.early_recv");
    }
}

//! Flat, allocation-free metric frames for hot sampling paths.
//!
//! [`Snapshot`] is the right *artifact* shape — a sorted string-keyed map
//! serializes stably and diffs trivially — but it is the wrong *sampling*
//! shape: materializing one allocates a `String` per counter and per link,
//! every interval. On the 32-switch load gauntlet that string churn alone
//! dragged throughput from 4.85 to 1.19 Mev/s.
//!
//! The frame path splits the snapshot into two halves with disjoint
//! lifetimes:
//!
//! * [`MetricsSchema`] — the *names*, built once per run. Counter keys and
//!   link names in the integrating world's natural fill order (the order
//!   its fill routine visits them, not sorted).
//! * [`MetricsFrame`] — the *values*, refilled every sample into reusable
//!   `Vec<u64>` / `Vec<[u64; 4]>` buffers. Index `i` of a frame always
//!   means schema entry `i`; the pairing is positional by contract.
//!
//! [`MetricsFrame::to_snapshot`] re-joins the halves into a classic
//! [`Snapshot`] (keys land in a `BTreeMap`, so sorting happens exactly once
//! at materialization), which is how the timeline sampler reproduces the
//! byte-identical JSONL artifact from compact per-interval delta vectors.

use crate::metrics::{LinkLoad, QuantileSummary, Snapshot};
use std::sync::Arc;

/// Per-link value layout inside a frame: `fwd_bytes`, `rev_bytes`,
/// `fwd_blocked_ns`, `rev_blocked_ns` — the field order of [`LinkLoad`].
pub type LinkVals = [u64; 4];

/// The name half of a metrics frame: counter keys and link names in the
/// integrating world's natural fill order. Built once per run and shared
/// (via [`Arc`]) between the world, the timeline sampler and the health
/// monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSchema {
    /// Counter keys (`"net.injected"`, `"nic.3.itb_detects"`, …) in fill
    /// order.
    pub counter_keys: Vec<String>,
    /// Link names (`"h0-s0"`, `"s0-s1"`, …) in fill order.
    pub link_names: Vec<String>,
}

impl MetricsSchema {
    /// A schema over the given key/name lists.
    pub fn new(counter_keys: Vec<String>, link_names: Vec<String>) -> Arc<Self> {
        Arc::new(MetricsSchema {
            counter_keys,
            link_names,
        })
    }

    /// Position of a counter key, if present.
    pub fn counter_index(&self, key: &str) -> Option<usize> {
        self.counter_keys.iter().position(|k| k == key)
    }
}

/// The value half of a metrics frame: one `u64` per schema counter, one
/// [`LinkVals`] per schema link, plus the cumulative blocking summary.
/// Designed to be refilled in place every sample — steady state performs
/// zero allocations.
#[derive(Debug, Clone)]
pub struct MetricsFrame {
    /// Sim time the frame was filled at, nanoseconds.
    pub at_ns: u64,
    /// Counter values, positionally matching `schema.counter_keys`.
    pub counters: Vec<u64>,
    /// Link values, positionally matching `schema.link_names`.
    pub links: Vec<LinkVals>,
    /// Cumulative blocking-time quantiles at `at_ns`.
    pub blocking: QuantileSummary,
}

impl MetricsFrame {
    /// A zeroed frame sized for `schema`.
    pub fn for_schema(schema: &MetricsSchema) -> Self {
        MetricsFrame {
            at_ns: 0,
            counters: vec![0; schema.counter_keys.len()],
            links: vec![[0; 4]; schema.link_names.len()],
            blocking: QuantileSummary::empty(),
        }
    }

    /// Clear values for refilling (keeps the buffers).
    pub fn reset(&mut self) {
        self.at_ns = 0;
        self.counters.clear();
        self.links.clear();
        self.blocking = QuantileSummary::empty();
    }

    /// Copy `src`'s values into self, reusing existing buffers.
    pub fn copy_from(&mut self, src: &MetricsFrame) {
        self.at_ns = src.at_ns;
        self.counters.clone_from(&src.counters);
        self.links.clone_from(&src.links);
        self.blocking = src.blocking;
    }

    /// Materialize a classic [`Snapshot`] by joining values with `schema`
    /// names. Keys land in the snapshot's `BTreeMap`, so the result is
    /// byte-for-byte what a direct snapshot build would have produced.
    ///
    /// # Panics
    /// Panics when the frame and schema lengths disagree — that is a fill
    /// routine drifting out of lockstep with its schema builder.
    pub fn to_snapshot(&self, schema: &MetricsSchema) -> Snapshot {
        assert_eq!(
            self.counters.len(),
            schema.counter_keys.len(),
            "frame/schema counter length mismatch"
        );
        assert_eq!(
            self.links.len(),
            schema.link_names.len(),
            "frame/schema link length mismatch"
        );
        let mut s = Snapshot::new();
        s.at_ns = self.at_ns;
        for (k, &v) in schema.counter_keys.iter().zip(&self.counters) {
            s.counters.insert(k.clone(), v);
        }
        s.links = schema
            .link_names
            .iter()
            .zip(&self.links)
            .map(
                |(name, &[fwd_bytes, rev_bytes, fwd_blocked_ns, rev_blocked_ns])| LinkLoad {
                    link: name.clone(),
                    fwd_bytes,
                    rev_bytes,
                    fwd_blocked_ns,
                    rev_blocked_ns,
                },
            )
            .collect();
        s.blocking = self.blocking;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<MetricsSchema> {
        MetricsSchema::new(
            vec!["net.injected".into(), "net.delivered".into()],
            vec!["h0-s0".into()],
        )
    }

    #[test]
    fn frame_materializes_the_same_snapshot_as_a_direct_build() {
        let schema = schema();
        let mut f = MetricsFrame::for_schema(&schema);
        f.at_ns = 1000;
        f.counters[0] = 10;
        f.counters[1] = 7;
        f.links[0] = [512, 64, 100, 0];
        let s = f.to_snapshot(&schema);

        let mut direct = Snapshot::new();
        direct.at_ns = 1000;
        direct.counters.insert("net.injected".into(), 10);
        direct.counters.insert("net.delivered".into(), 7);
        direct.links.push(LinkLoad {
            link: "h0-s0".into(),
            fwd_bytes: 512,
            rev_bytes: 64,
            fwd_blocked_ns: 100,
            rev_blocked_ns: 0,
        });
        assert_eq!(s.to_json(), direct.to_json());
    }

    #[test]
    fn copy_from_reuses_buffers() {
        let schema = schema();
        let mut a = MetricsFrame::for_schema(&schema);
        a.at_ns = 5;
        a.counters[0] = 1;
        let mut b = MetricsFrame::for_schema(&schema);
        b.copy_from(&a);
        assert_eq!(b.at_ns, 5);
        assert_eq!(b.counters, a.counters);
    }

    #[test]
    #[should_panic(expected = "counter length mismatch")]
    fn schema_drift_is_caught() {
        let schema = schema();
        let mut f = MetricsFrame::for_schema(&schema);
        f.counters.pop();
        let _ = f.to_snapshot(&schema);
    }

    #[test]
    fn counter_index_finds_keys() {
        let s = schema();
        assert_eq!(s.counter_index("net.delivered"), Some(1));
        assert_eq!(s.counter_index("absent"), None);
    }
}

//! The packet-lifecycle tracer.

use crate::stage::Stage;
use itb_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One recorded lifecycle moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageEvent {
    /// The network's stable packet id.
    pub packet: u64,
    /// What happened.
    pub stage: Stage,
    /// Where (host or switch index, layer-dependent; 0 when unused).
    pub node: u32,
    /// When.
    pub t: SimTime,
}

/// A bounded recorder of [`StageEvent`]s, disabled by default.
///
/// This is the typed successor of `itb_sim::trace::Trace`: the same
/// cheap-when-disabled branch, capacity bound and dropped-record accounting,
/// but with machine-readable stages and packet ids instead of free-form
/// strings, shared by every layer of the stack rather than owned per-NIC.
#[derive(Debug, Clone)]
pub struct PacketTracer {
    enabled: bool,
    cap: usize,
    events: Vec<StageEvent>,
    dropped: u64,
}

impl Default for PacketTracer {
    fn default() -> Self {
        Self::new(65_536)
    }
}

impl PacketTracer {
    /// A disabled tracer with room for `cap` events.
    pub fn new(cap: usize) -> Self {
        PacketTracer {
            enabled: false,
            cap,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Start recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stop recording (events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one stage; drops (and counts) once the buffer is full.
    #[inline]
    pub fn record(&mut self, packet: u64, stage: Stage, node: u32, t: SimTime) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(StageEvent {
            packet,
            stage,
            node,
            t,
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[StageEvent] {
        &self.events
    }

    /// Events of one packet, in recording order.
    pub fn for_packet(&self, packet: u64) -> Vec<StageEvent> {
        self.events
            .iter()
            .filter(|e| e.packet == packet)
            .copied()
            .collect()
    }

    /// Events with a given stage.
    pub fn with_stage(&self, stage: Stage) -> impl Iterator<Item = &StageEvent> + '_ {
        self.events.iter().filter(move |e| e.stage == stage)
    }

    /// First event with a given stage.
    pub fn first(&self, stage: Stage) -> Option<&StageEvent> {
        self.events.iter().find(|e| e.stage == stage)
    }

    /// Distinct packet ids seen, in first-appearance order.
    pub fn packets(&self) -> Vec<u64> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if seen.insert(e.packet) {
                out.push(e.packet);
            }
        }
        out
    }

    /// Number of events dropped because the buffer filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear all events and the dropped count (keeps the enable state).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        let mut t = PacketTracer::new(8);
        assert!(!t.is_enabled());
        t.record(1, Stage::HostInject, 0, SimTime::from_ns(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_records_in_order_and_queries_work() {
        let mut t = PacketTracer::new(8);
        t.enable();
        t.record(7, Stage::HostInject, 0, SimTime::from_ns(1));
        t.record(7, Stage::NetInject, 0, SimTime::from_ns(2));
        t.record(9, Stage::HostInject, 1, SimTime::from_ns(3));
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.for_packet(7).len(), 2);
        assert_eq!(t.with_stage(Stage::HostInject).count(), 2);
        assert_eq!(t.first(Stage::NetInject).unwrap().t, SimTime::from_ns(2));
        assert_eq!(t.packets(), vec![7, 9]);
    }

    #[test]
    fn overflow_enforces_cap_and_counts_drops() {
        let mut t = PacketTracer::new(2);
        t.enable();
        for i in 0..5 {
            t.record(i, Stage::NetHead, 0, SimTime::from_ns(i));
        }
        assert_eq!(t.events().len(), 2, "cap enforced");
        assert_eq!(t.dropped(), 3);
        // Clearing resets both; the enable state survives.
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
        t.record(9, Stage::NetTail, 0, SimTime::from_ns(9));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn disabling_mid_run_stops_recording_but_keeps_events() {
        let mut t = PacketTracer::new(8);
        t.enable();
        t.record(1, Stage::NetHead, 0, SimTime::from_ns(1));
        t.disable();
        t.record(1, Stage::NetTail, 0, SimTime::from_ns(2));
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 0, "disabled records are not drops");
    }
}

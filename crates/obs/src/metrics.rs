//! The unified metrics registry: one snapshot type for every counter the
//! stack exposes, with per-link load and wormhole blocking-time quantiles.

use itb_sim::stats::Accum;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary quantiles of a distribution, extracted from an [`Accum`].
///
/// All values are in the unit the underlying samples were recorded in
/// (nanoseconds everywhere in this workspace). NaN fields serialize as JSON
/// `null`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    /// Sample count.
    pub n: u64,
    /// Sample mean (0 if empty).
    pub mean: f64,
    /// Smallest sample (NaN if empty).
    pub min: f64,
    /// Largest sample (NaN if empty).
    pub max: f64,
    /// Median estimate (~±9% relative error; NaN if empty).
    pub p50: f64,
    /// 95th percentile estimate (NaN if empty).
    pub p95: f64,
    /// 99th percentile estimate (NaN if empty).
    pub p99: f64,
}

impl QuantileSummary {
    /// An all-empty summary.
    pub fn empty() -> Self {
        QuantileSummary {
            n: 0,
            mean: 0.0,
            min: f64::NAN,
            max: f64::NAN,
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
        }
    }
}

impl From<&Accum> for QuantileSummary {
    fn from(a: &Accum) -> Self {
        QuantileSummary {
            n: a.count(),
            mean: a.mean(),
            min: a.min(),
            max: a.max(),
            p50: a.p50(),
            p95: a.p95(),
            p99: a.p99(),
        }
    }
}

/// Traffic and contention on one physical link (host↔switch or
/// switch↔switch), both directions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkLoad {
    /// Stable link name, e.g. `"h0-s0"` or `"s0-s1"`.
    pub link: String,
    /// Bytes sent in the forward direction (first endpoint → second).
    pub fwd_bytes: u64,
    /// Bytes sent in the reverse direction.
    pub rev_bytes: u64,
    /// Nanoseconds the forward direction spent STOP-paused.
    pub fwd_blocked_ns: u64,
    /// Nanoseconds the reverse direction spent STOP-paused.
    pub rev_blocked_ns: u64,
}

/// A point-in-time view of every metric the stack exposes.
///
/// Counters from all layers live in one flat namespace
/// (`"net.injected"`, `"nic.3.itb_detects"`, …) so exporters and the
/// [`Snapshot::delta`] API need no per-layer knowledge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Simulation time the snapshot was taken at, in nanoseconds.
    pub at_ns: u64,
    /// Monotonic counters, keyed by `layer.name` (sorted for stable output).
    pub counters: BTreeMap<String, u64>,
    /// Per-link byte counts and blocking time.
    pub links: Vec<LinkLoad>,
    /// Distribution of per-interval wormhole blocking times (STOP-pause
    /// durations observed on any channel), in nanoseconds.
    pub blocking: QuantileSummary,
}

impl Snapshot {
    /// An empty snapshot at time zero.
    pub fn new() -> Self {
        Snapshot {
            at_ns: 0,
            counters: BTreeMap::new(),
            links: Vec::new(),
            blocking: QuantileSummary::empty(),
        }
    }

    /// The change since `base`: counter-wise and link-wise saturating
    /// subtraction. The `blocking` distribution cannot be subtracted (it is
    /// a summary, not raw samples), so the later snapshot's summary is kept
    /// as-is.
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let b = base.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(b))
            })
            .collect();
        let links = self
            .links
            .iter()
            .map(|l| {
                let b = base.links.iter().find(|bl| bl.link == l.link);
                match b {
                    Some(b) => LinkLoad {
                        link: l.link.clone(),
                        fwd_bytes: l.fwd_bytes.saturating_sub(b.fwd_bytes),
                        rev_bytes: l.rev_bytes.saturating_sub(b.rev_bytes),
                        fwd_blocked_ns: l.fwd_blocked_ns.saturating_sub(b.fwd_blocked_ns),
                        rev_blocked_ns: l.rev_blocked_ns.saturating_sub(b.rev_blocked_ns),
                    },
                    None => l.clone(),
                }
            })
            .collect();
        Snapshot {
            at_ns: self.at_ns.saturating_sub(base.at_ns),
            counters,
            links,
            blocking: self.blocking,
        }
    }

    /// A counter value, defaulting to 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Monotonicity audit: every counter or link-load value that went
    /// *backwards* since `base`, described one string per regression (in
    /// sorted counter order, then link order). Counters present only in
    /// `base` count as regressions to zero. [`Snapshot::delta`] saturates
    /// such regressions away; this is the companion that *flags* them, so
    /// health monitors can surface wrap/reset bugs instead of hiding them.
    pub fn regressions(&self, base: &Snapshot) -> Vec<String> {
        let mut out = Vec::new();
        for (k, &b) in &base.counters {
            let v = self.counter(k);
            if v < b {
                out.push(format!("counter {k} regressed: {b} -> {v}"));
            }
        }
        for bl in &base.links {
            if let Some(l) = self.links.iter().find(|l| l.link == bl.link) {
                for (field, b, v) in [
                    ("fwd_bytes", bl.fwd_bytes, l.fwd_bytes),
                    ("rev_bytes", bl.rev_bytes, l.rev_bytes),
                    ("fwd_blocked_ns", bl.fwd_blocked_ns, l.fwd_blocked_ns),
                    ("rev_blocked_ns", bl.rev_blocked_ns, l.rev_blocked_ns),
                ] {
                    if v < b {
                        out.push(format!("link {} {field} regressed: {b} -> {v}", l.link));
                    }
                }
            }
        }
        out
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // detlint::allow(S001, snapshot types always serialize; a failure is a programming error)
            panic!("snapshot serialization cannot fail: {e}");
        })
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(scale: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.at_ns = 1000 * scale;
        s.counters.insert("net.injected".into(), 10 * scale);
        s.counters.insert("nic.0.itb_detects".into(), 3 * scale);
        s.links.push(LinkLoad {
            link: "h0-s0".into(),
            fwd_bytes: 512 * scale,
            rev_bytes: 64 * scale,
            fwd_blocked_ns: 100 * scale,
            rev_blocked_ns: 0,
        });
        s
    }

    #[test]
    fn delta_subtracts_counters_and_links() {
        let base = sample_snapshot(1);
        let later = sample_snapshot(3);
        let d = later.delta(&base);
        assert_eq!(d.at_ns, 2000);
        assert_eq!(d.counter("net.injected"), 20);
        assert_eq!(d.counter("nic.0.itb_detects"), 6);
        assert_eq!(d.counter("absent"), 0);
        assert_eq!(d.links[0].fwd_bytes, 1024);
        assert_eq!(d.links[0].fwd_blocked_ns, 200);
    }

    #[test]
    fn delta_saturates_and_keeps_unmatched_links() {
        let mut base = sample_snapshot(2);
        base.counters.insert("only.in.base".into(), 5);
        let mut later = sample_snapshot(1);
        later.links.push(LinkLoad {
            link: "s0-s1".into(),
            fwd_bytes: 7,
            rev_bytes: 0,
            fwd_blocked_ns: 0,
            rev_blocked_ns: 0,
        });
        let d = later.delta(&base);
        // later < base saturates to zero instead of wrapping.
        assert_eq!(d.counter("net.injected"), 0);
        // Links absent from the base pass through unchanged.
        assert_eq!(d.links[1].fwd_bytes, 7);
    }

    #[test]
    fn delta_on_regressed_counter_saturates_and_regressions_flags_it() {
        // A counter going backwards (engine bug / reset) must never wrap in
        // delta() — and must be *visible* through regressions().
        let mut base = sample_snapshot(1);
        base.counters.insert("net.injected".into(), 100);
        base.links[0].fwd_bytes = 10_000;
        let mut later = sample_snapshot(1);
        later.counters.insert("net.injected".into(), 90);
        later.links[0].fwd_bytes = 9_000;
        let d = later.delta(&base);
        assert_eq!(d.counter("net.injected"), 0, "saturate, never wrap");
        assert_eq!(d.links[0].fwd_bytes, 0, "saturate, never wrap");
        let regs = later.regressions(&base);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs[0].contains("net.injected regressed: 100 -> 90"));
        assert!(regs[1].contains("h0-s0 fwd_bytes regressed"));
        // A counter that vanished entirely regresses to zero.
        let mut gone = sample_snapshot(1);
        gone.counters.remove("net.injected");
        let regs = gone.regressions(&base);
        assert!(regs.iter().any(|r| r.contains("100 -> 0")), "{regs:?}");
        // Monotonic growth reports nothing.
        assert!(sample_snapshot(2)
            .regressions(&sample_snapshot(1))
            .is_empty());
    }

    #[test]
    fn quantile_summary_from_empty_and_single_sample_accums() {
        // Empty: count 0, mean 0, every order statistic NaN (serializes as
        // JSON null, keeping artifacts valid).
        let q = QuantileSummary::from(&Accum::new());
        assert_eq!(q.n, 0);
        assert_eq!(q.mean, 0.0);
        for v in [q.min, q.max, q.p50, q.p95, q.p99] {
            assert!(v.is_nan(), "empty accum statistic must be NaN");
        }
        // Single sample: every statistic collapses onto it (quantiles are
        // clamped to the observed [min, max], so they are exact here).
        let mut a = Accum::new();
        a.add(42.0);
        let q = QuantileSummary::from(&a);
        assert_eq!(q.n, 1);
        assert_eq!(q.mean, 42.0);
        assert_eq!(q.min, 42.0);
        assert_eq!(q.max, 42.0);
        assert_eq!(q.p50, 42.0);
        assert_eq!(q.p95, 42.0);
        assert_eq!(q.p99, 42.0);
    }

    #[test]
    fn quantile_summary_from_accum() {
        let mut a = Accum::new();
        for i in 1..=100 {
            a.add(f64::from(i));
        }
        let q = QuantileSummary::from(&a);
        assert_eq!(q.n, 100);
        assert!((q.mean - 50.5).abs() < 1e-9);
        assert!((q.p50 / 50.0 - 1.0).abs() < 0.15, "p50={}", q.p50);
        let empty = QuantileSummary::empty();
        assert!(empty.p99.is_nan());
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let s = sample_snapshot(1);
        let json = s.to_json();
        assert!(json.contains("\"net.injected\": 10"));
        assert!(json.contains("\"h0-s0\""));
        // NaN quantiles render as null, keeping the JSON valid.
        assert!(json.contains("\"p99\": null"));
    }
}

//! # itb-obs — observability for the ITB/Myrinet reproduction
//!
//! One crate unifies what used to be three ad-hoc mechanisms (the NIC's
//! private `sim::trace::Trace` ring, the network's per-packet timeline notes
//! and the scattered `NetStats`/`NicStats` counters):
//!
//! * [`PacketTracer`] — a bounded, disabled-by-default recorder of typed
//!   packet-lifecycle [`Stage`] events (`host.inject`, `mcp.early_recv`,
//!   `mcp.itb_detect`, `mcp.itb_forward`, `net.link_acquire`,
//!   `net.link_block`, `host.deliver`, …), keyed by the network's stable
//!   packet id. Hot paths pay a single branch while tracing is off.
//! * [`Snapshot`] — a unified metrics view (counters, per-link load,
//!   wormhole blocking-time quantiles) with a [`Snapshot::delta`] API, all
//!   serializable to JSON.
//! * [`export`] — artifact writers: JSONL event dumps, Chrome
//!   `trace_event` JSON (openable in Perfetto / `chrome://tracing`), a
//!   per-stage latency attribution that decomposes an end-to-end packet
//!   latency into injection / wormhole transit / ITB-hop / delivery, and a
//!   per-shard PDES window-utilization gantt built from
//!   `itb_sim::par` profiler records.
//! * [`timeline`] — a sim-time timeline sampler: periodic [`Snapshot`]
//!   deltas (driven by scheduled sim events, never wall-clock) streamed as
//!   a JSONL series of per-interval injected/delivered/link-load change.
//! * [`health`] — runtime health monitors: a sim-time no-progress stall
//!   watchdog, an end-of-run buffer-leak audit and a monotonic-counter
//!   conservation check, reported as a structured [`HealthReport`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod export;
pub mod frame;
pub mod health;
pub mod metrics;
pub mod stage;
pub mod timeline;
pub mod tracer;

pub use export::{attribute, spans, Attribution, ParTraceMeta, Span};
pub use frame::{LinkVals, MetricsFrame, MetricsSchema};
pub use health::{BufferAudit, HealthConfig, HealthMonitor, HealthReport, Violation};
pub use metrics::{LinkLoad, QuantileSummary, Snapshot};
pub use stage::Stage;
pub use timeline::{IntervalSample, TimelineSampler};
pub use tracer::{PacketTracer, StageEvent};

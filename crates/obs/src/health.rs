//! Runtime health monitors: stall watchdog, buffer-leak audit, counter
//! conservation.
//!
//! The source paper's in-transit buffers exist to break routing deadlock;
//! the observable signature of that failure mode in this simulator is
//! *no-progress* — traffic exists (packets in flight or messages
//! undelivered) yet neither a delivery nor a link advance happens for a
//! long stretch of sim time. [`HealthMonitor`] detects exactly that, plus
//! two bookkeeping invariants every healthy run must satisfy:
//!
//! * **buffer conservation** — at end of run every NIC SRAM receive buffer
//!   is either free or owned by a live reception (the `owns_buffer`
//!   accounting), so firmware paths cannot leak buffers;
//! * **counter conservation** — the flat counter namespace of
//!   [`Snapshot`] is monotonic; a counter or link-load value going
//!   *backwards* between samples means an engine bug (or a wrapping
//!   subtraction somewhere).
//!
//! Like the timeline sampler, the monitor is passive and sim-time-only: the
//! integrating world feeds it snapshots from its own scheduled sampling
//! events (detlint D002 enforces the no-wall-clock contract). Violations
//! land in a structured [`HealthReport`] that bench binaries write to
//! `results/health_report.json`; strict-mode runs exit nonzero when the
//! report is unhealthy.

use crate::frame::{MetricsFrame, MetricsSchema};
use crate::metrics::Snapshot;
use serde::Serialize;
use std::io;

/// Watchdog configuration.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Sim nanoseconds of no-progress (no delivery, no link byte advance)
    /// while traffic is pending before the stall watchdog fires.
    pub stall_budget_ns: u64,
}

/// One detected health violation.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Which monitor fired: `stall_watchdog`, `buffer_leak` or
    /// `counter_conservation`.
    pub check: String,
    /// Sim time of detection, nanoseconds (end of run for the leak audit).
    pub at_ns: u64,
    /// Human-readable description of the violation.
    pub detail: String,
    /// The blocked set at detection time: parked packets (with their
    /// network location) and undelivered messages. Empty for non-stall
    /// violations.
    pub blocked: Vec<String>,
}

/// End-of-run accounting for one buffer pool of one node.
#[derive(Debug, Clone, Serialize)]
pub struct BufferAudit {
    /// Node (host/NIC index) the pool belongs to.
    pub node: u32,
    /// Pool name, e.g. `"recv"`.
    pub pool: String,
    /// Pool capacity.
    pub total: u64,
    /// Buffers currently free.
    pub free: u64,
    /// Buffers owned by live receptions.
    pub in_use: u64,
}

impl BufferAudit {
    /// Whether every buffer is accounted for (`free + in_use == total`).
    pub fn conserved(&self) -> bool {
        self.free.saturating_add(self.in_use) == self.total
    }
}

/// The structured end-of-run health verdict.
#[derive(Debug, Clone, Serialize)]
pub struct HealthReport {
    /// True iff no monitor fired.
    pub healthy: bool,
    /// Snapshots observed.
    pub samples: u64,
    /// Configured stall budget, sim nanoseconds.
    pub stall_budget_ns: u64,
    /// Sim time of the last observed progress, nanoseconds.
    pub last_progress_ns: u64,
    /// Sim time the report was finalized at, nanoseconds.
    pub end_ns: u64,
    /// Total buffers covered by the end-of-run leak audit.
    pub buffers_audited: u64,
    /// Every violation, in detection order.
    pub violations: Vec<Violation>,
}

impl HealthReport {
    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // detlint::allow(S001, report types always serialize; a failure is a programming error)
            panic!("health report serialization cannot fail: {e}");
        })
    }

    /// Write the pretty-JSON report (with a trailing newline) into `w`.
    /// Callers wrap file sinks in a `BufWriter` (see `itb_bench`'s
    /// `dump_stream`).
    pub fn write_json<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_json().as_bytes())?;
        w.write_all(b"\n")
    }
}

/// Accumulates snapshots and violations over a run.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    prev: Option<Snapshot>,
    prev_frame: Option<MetricsFrame>,
    last_progress_ns: u64,
    in_stall: bool,
    samples: u64,
    buffers_audited: u64,
    violations: Vec<Violation>,
}

/// Total bytes moved over every link, both directions.
fn link_bytes(s: &Snapshot) -> u64 {
    s.links
        .iter()
        .map(|l| l.fwd_bytes.saturating_add(l.rev_bytes))
        .fold(0u64, u64::saturating_add)
}

/// Frame-path twin of [`link_bytes`].
fn frame_link_bytes(f: &MetricsFrame) -> u64 {
    f.links
        .iter()
        .map(|l| l[0].saturating_add(l[1]))
        .fold(0u64, u64::saturating_add)
}

impl HealthMonitor {
    /// A monitor with the given watchdog budget.
    ///
    /// # Panics
    /// Panics on a zero stall budget — the watchdog would fire on the very
    /// first idle sample.
    pub fn new(cfg: HealthConfig) -> Self {
        assert!(cfg.stall_budget_ns > 0, "stall budget must be positive");
        HealthMonitor {
            cfg,
            prev: None,
            prev_frame: None,
            last_progress_ns: 0,
            in_stall: false,
            samples: 0,
            buffers_audited: 0,
            violations: Vec::new(),
        }
    }

    /// Feed one absolute snapshot. `pending` says whether traffic exists
    /// that still wants to make progress (packets in flight or messages
    /// undelivered) — the watchdog only arms while something is pending.
    ///
    /// Returns `true` exactly when the stall watchdog fires for a new stall
    /// episode; the caller then gathers the blocked set (parked packets,
    /// undelivered messages) and reports it via [`Self::flag_stall`]. The
    /// two-phase shape keeps this crate free of network/GM knowledge.
    pub fn observe(&mut self, snap: &Snapshot, pending: bool) -> bool {
        self.samples += 1;
        let at = snap.at_ns;
        if let Some(prev) = &self.prev {
            for detail in snap.regressions(prev) {
                self.violations.push(Violation {
                    check: "counter_conservation".into(),
                    at_ns: at,
                    detail,
                    blocked: Vec::new(),
                });
            }
            let progressed = snap.counter("net.delivered") != prev.counter("net.delivered")
                || link_bytes(snap) != link_bytes(prev);
            if progressed {
                self.last_progress_ns = at;
                self.in_stall = false;
            }
        }
        self.prev = Some(snap.clone());
        if pending
            && !self.in_stall
            && at.saturating_sub(self.last_progress_ns) >= self.cfg.stall_budget_ns
        {
            self.in_stall = true;
            return true;
        }
        false
    }

    /// Allocation-free twin of [`Self::observe`] for the frame sampling
    /// path: counter and link comparison is positional (index `i` against
    /// index `i`), so the monitor never builds a string unless a value
    /// actually regressed. The previous frame is retained by in-place copy
    /// — steady state performs zero allocations.
    ///
    /// The violation message format is identical to the snapshot path
    /// (pinned by tests), so health reports do not depend on which path
    /// fed the monitor.
    pub fn observe_frame(
        &mut self,
        frame: &MetricsFrame,
        schema: &MetricsSchema,
        pending: bool,
    ) -> bool {
        debug_assert_eq!(frame.counters.len(), schema.counter_keys.len());
        debug_assert_eq!(frame.links.len(), schema.link_names.len());
        self.samples += 1;
        let at = frame.at_ns;
        if let Some(prev) = &self.prev_frame {
            for (i, (&v, &b)) in frame.counters.iter().zip(&prev.counters).enumerate() {
                if v < b {
                    let k = &schema.counter_keys[i];
                    self.violations.push(Violation {
                        check: "counter_conservation".into(),
                        at_ns: at,
                        detail: format!("counter {k} regressed: {b} -> {v}"),
                        blocked: Vec::new(),
                    });
                }
            }
            for (i, (l, bl)) in frame.links.iter().zip(&prev.links).enumerate() {
                for (field, b, v) in [
                    ("fwd_bytes", bl[0], l[0]),
                    ("rev_bytes", bl[1], l[1]),
                    ("fwd_blocked_ns", bl[2], l[2]),
                    ("rev_blocked_ns", bl[3], l[3]),
                ] {
                    if v < b {
                        let name = &schema.link_names[i];
                        self.violations.push(Violation {
                            check: "counter_conservation".into(),
                            at_ns: at,
                            detail: format!("link {name} {field} regressed: {b} -> {v}"),
                            blocked: Vec::new(),
                        });
                    }
                }
            }
            let delivered = schema.counter_index("net.delivered");
            let progressed = delivered.is_some_and(|i| frame.counters[i] != prev.counters[i])
                || frame_link_bytes(frame) != frame_link_bytes(prev);
            if progressed {
                self.last_progress_ns = at;
                self.in_stall = false;
            }
        }
        match &mut self.prev_frame {
            Some(p) => p.copy_from(frame),
            None => self.prev_frame = Some(frame.clone()),
        }
        if pending
            && !self.in_stall
            && at.saturating_sub(self.last_progress_ns) >= self.cfg.stall_budget_ns
        {
            self.in_stall = true;
            return true;
        }
        false
    }

    /// Record a stall the watchdog detected (one violation per episode;
    /// [`Self::observe`] suppresses re-fires until progress resumes).
    pub fn flag_stall(&mut self, at_ns: u64, blocked: Vec<String>) {
        let idle = at_ns.saturating_sub(self.last_progress_ns);
        self.violations.push(Violation {
            check: "stall_watchdog".into(),
            at_ns,
            detail: format!(
                "no delivery or link advance for {idle} ns (budget {} ns) with {} blocked item(s); last progress at {} ns",
                self.cfg.stall_budget_ns,
                blocked.len(),
                self.last_progress_ns
            ),
            blocked,
        });
    }

    /// Feed one end-of-run buffer-pool audit; a non-conserved pool is a
    /// `buffer_leak` violation.
    pub fn audit_buffer(&mut self, end_ns: u64, a: &BufferAudit) {
        self.buffers_audited += a.total;
        if !a.conserved() {
            self.violations.push(Violation {
                check: "buffer_leak".into(),
                at_ns: end_ns,
                detail: format!(
                    "node {} {} pool: total {} != free {} + in_use {}",
                    a.node, a.pool, a.total, a.free, a.in_use
                ),
                blocked: Vec::new(),
            });
        }
    }

    /// Whether the watchdog is currently inside a flagged stall episode
    /// (set when [`Self::observe`] fires, cleared by progress). Integrating
    /// worlds use this to keep their sampling clock alive while a stall is
    /// still being hunted, and to stop once it has been diagnosed.
    pub fn in_stall(&self) -> bool {
        self.in_stall
    }

    /// Violations recorded so far (the report is the durable form).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Finalize into a [`HealthReport`] at sim time `end_ns`.
    pub fn finish(self, end_ns: u64) -> HealthReport {
        HealthReport {
            healthy: self.violations.is_empty(),
            samples: self.samples,
            stall_budget_ns: self.cfg.stall_budget_ns,
            last_progress_ns: self.last_progress_ns,
            end_ns,
            buffers_audited: self.buffers_audited,
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LinkLoad;

    fn snap(at_ns: u64, delivered: u64, fwd: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.at_ns = at_ns;
        s.counters.insert("net.delivered".into(), delivered);
        s.links.push(LinkLoad {
            link: "h0-s0".into(),
            fwd_bytes: fwd,
            rev_bytes: 0,
            fwd_blocked_ns: 0,
            rev_blocked_ns: 0,
        });
        s
    }

    #[test]
    fn watchdog_fires_once_per_episode_and_rearms_on_progress() {
        let mut m = HealthMonitor::new(HealthConfig {
            stall_budget_ns: 1000,
        });
        // Active phase: link bytes advance each sample.
        assert!(!m.observe(&snap(100, 0, 64), true));
        assert!(!m.observe(&snap(600, 0, 128), true));
        // Quiet with pending traffic: budget exceeded at 1600 (last progress
        // 600), fires exactly once.
        assert!(!m.observe(&snap(1100, 0, 128), true));
        assert!(m.observe(&snap(1700, 0, 128), true));
        m.flag_stall(1700, vec!["msg 0: h1->h2 undelivered".into()]);
        assert!(!m.observe(&snap(2300, 0, 128), true), "no duplicate fire");
        // Progress clears the episode; a later quiet stretch re-fires.
        assert!(!m.observe(&snap(2400, 1, 256), true));
        assert!(m.observe(&snap(3500, 1, 256), true));
        m.flag_stall(3500, Vec::new());
        let r = m.finish(4000);
        assert!(!r.healthy);
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.violations[0].check, "stall_watchdog");
        assert_eq!(r.violations[0].blocked.len(), 1);
        assert_eq!(r.last_progress_ns, 2400);
    }

    #[test]
    fn watchdog_stays_quiet_without_pending_traffic() {
        let mut m = HealthMonitor::new(HealthConfig {
            stall_budget_ns: 1000,
        });
        assert!(!m.observe(&snap(100, 1, 64), false));
        // A long idle tail with nothing pending is a finished run, not a
        // stall.
        assert!(!m.observe(&snap(50_000, 1, 64), false));
        assert!(m.finish(50_000).healthy);
    }

    #[test]
    fn counter_regression_is_a_conservation_violation() {
        let mut m = HealthMonitor::new(HealthConfig {
            stall_budget_ns: 1_000_000,
        });
        m.observe(&snap(100, 5, 64), true);
        m.observe(&snap(200, 3, 64), true); // delivered went backwards
        let r = m.finish(200);
        assert!(!r.healthy);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].check, "counter_conservation");
        assert!(r.violations[0].detail.contains("net.delivered"));
    }

    #[test]
    fn buffer_audit_flags_leaks_only() {
        let mut m = HealthMonitor::new(HealthConfig { stall_budget_ns: 1 });
        m.audit_buffer(
            900,
            &BufferAudit {
                node: 0,
                pool: "recv".into(),
                total: 4,
                free: 3,
                in_use: 1,
            },
        );
        m.audit_buffer(
            900,
            &BufferAudit {
                node: 1,
                pool: "recv".into(),
                total: 4,
                free: 2,
                in_use: 1, // one buffer vanished
            },
        );
        let r = m.finish(900);
        assert_eq!(r.buffers_audited, 8);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].check, "buffer_leak");
        assert!(r.violations[0].detail.contains("node 1"));
    }

    #[test]
    fn frame_observe_matches_snapshot_observe() {
        use crate::frame::{MetricsFrame, MetricsSchema};
        let schema = MetricsSchema::new(vec!["net.delivered".into()], vec!["h0-s0".into()]);
        let mut frame = MetricsFrame::for_schema(&schema);
        let feed = |f: &mut MetricsFrame, at: u64, delivered: u64, fwd: u64| {
            f.at_ns = at;
            f.counters[0] = delivered;
            f.links[0] = [fwd, 0, 0, 0];
        };

        // Same series through both paths: progress, stall, regression.
        let series: [(u64, u64, u64); 5] = [
            (100, 0, 64),
            (600, 0, 128),
            (1700, 0, 128),
            (2400, 1, 256),
            (2500, 0, 256),
        ];
        let mut via_snap = HealthMonitor::new(HealthConfig {
            stall_budget_ns: 1000,
        });
        let mut via_frame = HealthMonitor::new(HealthConfig {
            stall_budget_ns: 1000,
        });
        for (at, delivered, fwd) in series {
            let fired_a = via_snap.observe(&snap(at, delivered, fwd), true);
            feed(&mut frame, at, delivered, fwd);
            let fired_b = via_frame.observe_frame(&frame, &schema, true);
            assert_eq!(fired_a, fired_b, "at {at}");
            if fired_a {
                via_snap.flag_stall(at, Vec::new());
                via_frame.flag_stall(at, Vec::new());
            }
        }
        let (a, b) = (via_snap.finish(3000), via_frame.finish(3000));
        assert_eq!(a.to_json(), b.to_json());
        assert!(!a.healthy);
        // The last sample regressed net.delivered: both paths flag it with
        // the identical message.
        assert!(a
            .violations
            .iter()
            .any(|v| v.detail == "counter net.delivered regressed: 1 -> 0"));
    }

    #[test]
    fn report_serializes_with_violations() {
        let mut m = HealthMonitor::new(HealthConfig {
            stall_budget_ns: 10,
        });
        // No progress since t = 0 and the budget is tiny, so the very first
        // pending sample already exceeds it.
        assert!(m.observe(&snap(100, 0, 0), true));
        m.flag_stall(100, vec!["packet 7: parked at s0 port 1".into()]);
        let json = m.finish(200).to_json();
        assert!(json.contains("\"healthy\": false"));
        assert!(json.contains("stall_watchdog"));
        assert!(json.contains("packet 7"));
        let mut buf = Vec::new();
        let mut m2 = HealthMonitor::new(HealthConfig { stall_budget_ns: 1 });
        m2.observe(&snap(1, 0, 0), false);
        m2.finish(1).write_json(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().ends_with("}\n"));
    }
}
